//! `gdf` — the command-line front door of the ATPG system.
//!
//! ```text
//! gdf run <CIRCUIT> [-o run.json] [--patterns p.json] [options]
//! gdf resume <RUN.json> [-o done.json] [--patterns p.json]
//! gdf grade <PATTERNS.json> [--circuit CIRCUIT] [--seed N]
//! gdf campaign [CIRCUIT...] [--suite] [--dir DIR] [--resume] [options]
//! gdf campaign ... --fleet H1:P1,H2:P2 [--units N] [--dir DIR]
//! gdf fleet status [--dir DIR]
//! gdf report <RUN.json>... [--diff]
//! gdf suite [--universe <full|stems>]
//! gdf serve --addr HOST:PORT --dir DIR [--workers N]
//! gdf submit <CIRCUIT> --addr HOST:PORT [--wait|--follow] [options]
//! gdf status [<JOB>] --addr HOST:PORT [--follow]
//! gdf fetch <JOB> --addr HOST:PORT [-o run.json] [--patterns p.json]
//! gdf cancel <JOB> --addr HOST:PORT
//! ```
//!
//! `CIRCUIT` is a path to an ISCAS'89 `.bench` file or `suite:<name>`
//! (e.g. `suite:s27`, `suite:s42`). Runs persist as self-contained JSON
//! artifacts (`gdf_core::artifact::RunArtifact`): `gdf run` checkpoints
//! while it works, an interrupted run resumes **byte-identically** with
//! `gdf resume`, and `gdf report --diff` proves it. `--abort-after N`
//! deliberately interrupts after N fault outcomes (exercised by CI to
//! test the resume path end to end).
//!
//! The `serve`/`submit`/`status`/`fetch`/`cancel` commands speak the
//! `gdf_serve` HTTP job API: `serve` hosts the engine behind
//! `POST /jobs`, the others are remote controls for it. A fetched
//! artifact is the server's canonical (wall-clock-zeroed) encoding and
//! is byte-identical to what any same-spec submission returns.
//!
//! `gdf campaign --fleet` shards one campaign across N running
//! `gdf serve` nodes (`gdf_fleet::Coordinator`): the plan persists in
//! `<dir>/fleet.json`, a killed coordinator resumes with `--resume`,
//! dead nodes lose their units to live ones, and the merged per-circuit
//! artifacts are byte-identical in canonical encoding to a single-node
//! campaign of the same configuration. `gdf fleet status` renders the
//! plan and probes node health.

use gdf::core::json::Json;
use gdf::core::{
    grade_patterns, Atpg, AtpgBuilder, AtpgRun, Backend, Campaign, Checkpointer, CircuitReport,
    CircuitSource, FaultRecord, ModelKind, Observer, PatternSet, ProgressEvent, RunArtifact,
    RunConfig,
};
use gdf::fleet::{Coordinator, FleetPlan};
use gdf::netlist::{parse_bench, suite, Circuit, FaultUniverse};
use gdf::serve::server::{submission_for_bench, submission_for_suite, submission_with_runtime};
use gdf::serve::{Client, JobServer, ServeConfig};
use gdf::store::{compact_campaign, CacheKey, Store};
use gdf::tenant::TenantRegistry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

const USAGE: &str = "\
gdf — gate delay fault ATPG for non-scan sequential circuits

USAGE:
    gdf run <CIRCUIT> [options]         generate tests for one circuit
    gdf resume <RUN.json> [options]     resume an interrupted run
    gdf grade <PATTERNS.json> [options] re-grade a saved pattern set
    gdf campaign [CIRCUIT...] [options] run many circuits, aggregate report
    gdf fleet status [--dir DIR]        fleet plan progress and node health
    gdf report <RUN.json>... [--diff]   render or compare saved runs
    gdf compact [--dir DIR] [options]   bloom-gated campaign compaction
    gdf store <stats|gc> [--dir DIR]    artifact-store stats / garbage collect
    gdf suite [--universe <full|stems>] list embedded suite circuits
    gdf serve [options]                 host the engine as an HTTP job server
    gdf submit <CIRCUIT> [options]      submit a job to a server
    gdf status [<JOB>] [options]        job status (or list all jobs)
    gdf fetch <JOB> [options]           download a finished job's artifact
    gdf cancel <JOB> [options]          cancel / remove a job
    gdf top [options]                   live metrics dashboard for a server
    gdf fleet top [--dir DIR]           live fleet dashboard (plan + nodes)
    gdf trace export <T.ndjson> --chrome  convert a job trace for chrome://tracing
    gdf --version                       print the version

CIRCUIT:
    a path to an ISCAS'89 .bench file, or suite:<name> (suite:s27,
    suite:s298, suite:s42, ...)

OPTIONS:
    --backend <non-scan|enhanced-scan|stuck-at>   engine (default non-scan)
    --model <delay|transition|stuck>              fault model (default: backend's)
    --sensitization <robust|non-robust>           delay-test sensitization
    --universe <full|stems>                       fault universe
    --seed <N>                                    X-fill seed (dec or 0x..)
    --parallelism <N>                             generation workers
    --time-budget <SECS>                          per-run wall-clock budget
    -o, --out <PATH>                              artifact output path
    --patterns <PATH>                             export a pattern set
    --checkpoint-every <N>                        checkpoint cadence (default 16)
    --abort-after <N>                             cancel after N outcomes
    --circuit <CIRCUIT>                           (grade) grade on this circuit
    --suite                                       (campaign) the full suite
    --dir <DIR>                                   (campaign/serve) artifact dir
    --resume                                      (campaign) reuse artifacts
    --cache                                       (campaign) exact result cache
    --fleet <H1:P1,H2:P2,...>                     (campaign) shard across nodes
    --units <N>                                   (fleet) units per circuit
    --steal-after <SECS>                          (fleet) slow-node patience
    --diff                                        (report) compare two runs
    --addr <HOST:PORT>                            (serve/remote) server address
    --workers <N>                                 (serve) worker pool size
    --queue-capacity <N>                          (serve) queued jobs per shard
    --tenants <FILE>                              (serve) tenants.json registry:
                                                  bearer auth + quotas + fair sched
    --token <TOKEN>                               (remote/campaign) tenant bearer token
    --wait                                        (submit) block until terminal
    --follow                                      (submit/status) stream events
    --no-obs                                      (serve) disable tracing/profiling
    --interval <SECS>                             (top) refresh cadence (default 2)
    --once                                        (top) print one frame and exit
    --chrome                                      (trace export) chrome://tracing JSON
    -q, --quiet                                   no progress output
";

fn main() -> ExitCode {
    // A reader that stops consuming our stdout (`gdf … | head`) must end
    // the process quietly with the conventional SIGPIPE code, not with a
    // panic trace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("failed printing to stdout"));
        if broken_pipe {
            std::process::exit(141); // 128 + SIGPIPE
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "resume" => cmd_resume(rest),
        "grade" => cmd_grade(rest),
        "campaign" => cmd_campaign(rest),
        "fleet" => cmd_fleet(rest),
        "report" => cmd_report(rest),
        "compact" => cmd_compact(rest),
        "store" => cmd_store(rest),
        "suite" => cmd_suite(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "status" => cmd_status(rest),
        "fetch" => cmd_fetch(rest),
        "cancel" => cmd_cancel(rest),
        "top" => cmd_top(rest),
        "trace" => cmd_trace(rest),
        "version" | "--version" | "-V" => {
            println!("gdf {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`; try `gdf help`")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("gdf {command}: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------
// Argument scaffolding
// ---------------------------------------------------------------------

struct Opts {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Opts {
    /// Splits `args` into positionals, `--key value` pairs and bare
    /// switches. `takes_value` lists the options that consume a value.
    fn parse(args: &[String], takes_value: &[&str], switches: &[&str]) -> Result<Self, String> {
        let mut out = Opts {
            positional: Vec::new(),
            values: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let canonical = match arg.as_str() {
                "-o" => "--out",
                "-q" => "--quiet",
                other => other,
            };
            if let Some(name) = canonical.strip_prefix("--") {
                if takes_value.contains(&name) {
                    let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    out.values.push((name.to_string(), value.clone()));
                } else if switches.contains(&name) {
                    out.switches.push(name.to_string());
                } else {
                    return Err(format!("unknown option `{arg}`"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn number(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => {
                let parsed = match text.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => text.parse(),
                };
                parsed
                    .map(Some)
                    .map_err(|_| format!("--{name}: invalid number `{text}`"))
            }
        }
    }
}

const RUN_VALUES: &[&str] = &[
    "backend",
    "model",
    "sensitization",
    "universe",
    "seed",
    "parallelism",
    "time-budget",
    "out",
    "patterns",
    "checkpoint-every",
    "abort-after",
    "circuit",
    "dir",
    "addr",
    "workers",
    "queue-capacity",
    "fleet",
    "units",
    "steal-after",
    "interval",
    "tenants",
    "token",
];
const RUN_SWITCHES: &[&str] = &[
    "quiet", "suite", "resume", "diff", "wait", "follow", "cache", "once", "chrome", "no-obs",
];

/// Resolves a circuit argument: `suite:<name>` or a `.bench` file path.
/// Returns the circuit plus the provenance artifacts should record.
fn load_circuit(spec: &str) -> Result<(Circuit, CircuitSource), String> {
    if let Some(name) = spec.strip_prefix("suite:") {
        let circuit =
            suite::by_name(name).ok_or_else(|| format!("unknown suite circuit `{name}`"))?;
        let source = CircuitSource::suite(&circuit, name);
        return Ok((circuit, source));
    }
    let path = Path::new(spec);
    let text = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_string();
    let circuit = parse_bench(&name, &text).map_err(|e| format!("{spec}: {e}"))?;
    let source = CircuitSource::bench(&circuit, text);
    Ok((circuit, source))
}

// ---------------------------------------------------------------------
// Observers
// ---------------------------------------------------------------------

/// Prints one progress line per ~10% to stderr.
struct Progress {
    label: String,
    last_decile: usize,
}

impl Progress {
    fn new(label: impl Into<String>) -> Self {
        Progress {
            label: label.into(),
            last_decile: 0,
        }
    }
}

impl Observer for Progress {
    fn on_run_start(&mut self, engine: &'static str, circuit: &Circuit, total: usize) {
        eprintln!(
            "[{}] {engine} on {}: {total} faults",
            self.label,
            circuit.name()
        );
    }
    fn on_progress(&mut self, decided: usize, total: usize) {
        let decile = 10 * decided / total.max(1);
        if decile > self.last_decile {
            self.last_decile = decile;
            eprintln!("[{}] {decided}/{total} faults decided", self.label);
        }
    }
}

/// Cancels the run after N fault outcomes — the CLI's way to simulate an
/// interruption (CI kills runs with this, then resumes them).
struct AbortAfter {
    remaining: usize,
}

impl Observer for AbortAfter {
    fn on_fault(&mut self, _record: &FaultRecord) {
        self.remaining = self.remaining.saturating_sub(1);
    }
    fn cancelled(&mut self) -> bool {
        self.remaining == 0
    }
}

// ---------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------

fn print_run(run: &AtpgRun) {
    println!("{}", CircuitReport::header());
    println!("{}", run.report.line());
    println!(
        "{} sequences, {} faults dropped by simulation — {}{}",
        run.report.sequences,
        run.report.dropped_by_simulation,
        run.report.coverage,
        match run.stopped {
            None => String::new(),
            Some(reason) => format!(" — stopped early: {reason}"),
        }
    );
}

/// The single flag→config mapping: both the engine builder and the saved
/// artifact are driven from this one value, so the recorded provenance
/// can never diverge from the run that actually executed. Backend,
/// model, sensitization and universe names go through the shared parsers
/// and the `RunConfig::apply_model_name`/`validate` helpers that the
/// serve submissions use too (including the pre-PR-5 `--model
/// robust|non-robust` compat mapping).
fn config_from_opts(opts: &Opts) -> Result<RunConfig, String> {
    let mut config = RunConfig::new(
        opts.value("backend")
            .map(str::parse)
            .transpose()?
            .unwrap_or(Backend::NonScan),
    );
    if let Some(m) = opts.value("model") {
        config.apply_model_name(m)?;
    }
    if let Some(s) = opts.value("sensitization") {
        config.sensitization = s.parse()?;
    }
    config.validate().map_err(|e| e.to_string())?;
    if let Some(u) = opts.value("universe") {
        config.universe = FaultUniverse::parse_name(u)?;
    }
    if let Some(seed) = opts.number("seed")? {
        config.seed = seed;
    }
    Ok(config)
}

/// Applies a [`RunConfig`] plus the runtime-only options (workers, time
/// budget) to a builder.
fn configure<'c>(
    mut builder: AtpgBuilder<'c>,
    config: &RunConfig,
    opts: &Opts,
) -> Result<AtpgBuilder<'c>, String> {
    builder = builder
        .backend(config.backend)
        .model(config.model)
        .sensitization(config.sensitization)
        .universe(config.universe)
        .limits(config.limits)
        .seed(config.seed);
    if let Some(n) = opts.number("parallelism")? {
        builder = builder.parallelism(n as usize);
    }
    if let Some(secs) = opts.number("time-budget")? {
        builder = builder.time_budget(Duration::from_secs(secs));
    }
    Ok(builder)
}

fn export_patterns(
    opts: &Opts,
    circuit: &Circuit,
    source: &CircuitSource,
    run: &AtpgRun,
    backend: Backend,
    seed: u64,
) -> Result<(), String> {
    let Some(path) = opts.value("patterns") else {
        return Ok(());
    };
    let set = PatternSet::from_run(
        circuit,
        run,
        &backend.to_string(),
        seed,
        Some(source.clone()),
    );
    set.save(path).map_err(|e| e.to_string())?;
    println!("patterns: {} sequences -> {path}", set.patterns.len());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let [spec] = opts.positional.as_slice() else {
        return Err("expected exactly one CIRCUIT argument".into());
    };
    let (circuit, source) = load_circuit(spec)?;
    let config = config_from_opts(&opts)?;
    let (backend, seed) = (config.backend, config.seed);
    let every = opts.number("checkpoint-every")?.unwrap_or(16) as usize;

    let mut builder = configure(Atpg::builder(&circuit), &config, &opts)?;
    if !opts.switch("quiet") {
        builder = builder.observer(Progress::new("run"));
    }
    let mut checkpoints_written = None;
    if let Some(out) = opts.value("out") {
        let checkpointer = Checkpointer::new(PathBuf::from(out), every).with_source(source.clone());
        checkpoints_written = Some(checkpointer.written_handle());
        builder = builder.observer(checkpointer);
    }
    if let Some(n) = opts.number("abort-after")? {
        builder = builder.observer(AbortAfter {
            remaining: n as usize,
        });
    }

    let run = builder.build().run();
    print_run(&run);

    if let Some(out) = opts.value("out") {
        if run.stopped.is_some() {
            // Keep the last checkpoint: that is the resumable state. The
            // cancel-fill marked the undecided tail aborted, which a
            // resume must not inherit.
            export_patterns(&opts, &circuit, &source, &run, backend, seed)?;
            let written = checkpoints_written.map_or(0, |w| w.load(Ordering::Relaxed));
            return interrupted_outcome(out, written);
        }
        RunArtifact::from_run(&circuit, &run, config, Some(source.clone()))
            .save(out)
            .map_err(|e| e.to_string())?;
        println!("run artifact -> {out}");
    }
    export_patterns(&opts, &circuit, &source, &run, backend, seed)?;
    Ok(ExitCode::SUCCESS)
}

/// Reports where an interrupted run left its resumable state. If the run
/// was cancelled before the Checkpointer's first write there is nothing
/// (new) to resume — say so and fail, so scripts keying on the exit code
/// notice (a stale file at `out` from an earlier run does not count).
fn interrupted_outcome(out: &str, checkpoints_written: usize) -> Result<ExitCode, String> {
    if checkpoints_written > 0 {
        println!("interrupted — resumable checkpoint left at {out}");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("interrupted before the first checkpoint — no resumable artifact at {out}");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_resume(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let [input] = opts.positional.as_slice() else {
        return Err("expected exactly one RUN.json argument".into());
    };
    let artifact = RunArtifact::load(input).map_err(|e| e.to_string())?;
    if !artifact.partial {
        println!("{input}: already complete ({} faults)", artifact.total());
        return Ok(ExitCode::SUCCESS);
    }
    let circuit = artifact.circuit.resolve().map_err(|e| e.to_string())?;
    let source = artifact.circuit.clone();
    let config = artifact.config();
    let out = opts.value("out").unwrap_or(input).to_string();
    let every = opts.number("checkpoint-every")?.unwrap_or(16) as usize;

    eprintln!(
        "resuming {} on {}: {}/{} faults already decided",
        config.backend,
        circuit.name(),
        artifact.decided(),
        artifact.total()
    );
    let mut builder = Atpg::builder(&circuit)
        .resume_from(&artifact)
        .map_err(|e| e.to_string())?;
    if let Some(n) = opts.number("parallelism")? {
        builder = builder.parallelism(n as usize);
    }
    if let Some(secs) = opts.number("time-budget")? {
        builder = builder.time_budget(Duration::from_secs(secs));
    }
    if !opts.switch("quiet") {
        builder = builder.observer(Progress::new("resume"));
    }
    let checkpointer = Checkpointer::new(PathBuf::from(&out), every).with_source(source.clone());
    let checkpoints_written = checkpointer.written_handle();
    builder = builder.observer(checkpointer);
    if let Some(n) = opts.number("abort-after")? {
        builder = builder.observer(AbortAfter {
            remaining: n as usize,
        });
    }

    let run = builder.build().run();
    print_run(&run);
    if run.stopped.is_some() {
        export_patterns(&opts, &circuit, &source, &run, config.backend, config.seed)?;
        return if checkpoints_written.load(Ordering::Relaxed) > 0 {
            println!("interrupted again — resumable checkpoint left at {out}");
            Ok(ExitCode::SUCCESS)
        } else if out == *input {
            // Nothing new was written, but the input checkpoint we
            // resumed from is untouched and still valid.
            println!("interrupted again before a new checkpoint — {input} is still resumable");
            Ok(ExitCode::SUCCESS)
        } else {
            eprintln!(
                "interrupted before the first checkpoint — no artifact at {out}; \
                 resume again from {input}"
            );
            Ok(ExitCode::FAILURE)
        };
    }
    RunArtifact::from_run(&circuit, &run, config, Some(source.clone()))
        .save(&out)
        .map_err(|e| e.to_string())?;
    println!("run artifact -> {out}");
    export_patterns(&opts, &circuit, &source, &run, config.backend, config.seed)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_grade(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let [input] = opts.positional.as_slice() else {
        return Err("expected exactly one PATTERNS.json argument".into());
    };
    let set = PatternSet::load(input).map_err(|e| e.to_string())?;
    let circuit = match opts.value("circuit") {
        Some(spec) => load_circuit(spec)?.0,
        None => set.circuit.resolve().map_err(|e| e.to_string())?,
    };
    let universe = opts
        .value("universe")
        .map(FaultUniverse::parse_name)
        .transpose()?
        .unwrap_or_default();
    // `--model` picks the graded fault model through the shared compat
    // shim: the pre-PR-5 sensitization spellings (robust/non-robust)
    // land in the probe's sensitization and leave the model at its
    // delay default — exactly what grading always did with them.
    let model = match opts.value("model") {
        None => ModelKind::Delay,
        Some(name) => {
            let mut probe = RunConfig::new(Backend::NonScan);
            probe.apply_model_name(name)?;
            probe.model
        }
    };
    let seed = opts.number("seed")?.unwrap_or(set.seed);
    let grade =
        grade_patterns(&circuit, &set, model, &universe, seed).map_err(|e| e.to_string())?;
    println!("{grade}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_campaign(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    if let Some(nodes) = opts.value("fleet") {
        return cmd_campaign_fleet(&opts, nodes);
    }
    let mut builder = Campaign::builder();
    if opts.switch("suite") {
        builder = builder.suite();
    }
    for spec in &opts.positional {
        let (circuit, source) = load_circuit(spec)?;
        builder = builder.circuit_with_source(circuit, source);
    }
    // Resolve backend/model/sensitization through the same probe `gdf
    // run` uses, so an unsupported pairing is a friendly error here too
    // — never a panic inside Campaign::run.
    let mut probe = RunConfig::new(
        opts.value("backend")
            .map(str::parse)
            .transpose()?
            .unwrap_or(Backend::NonScan),
    );
    if let Some(m) = opts.value("model") {
        probe.apply_model_name(m)?;
    }
    if let Some(s) = opts.value("sensitization") {
        probe.sensitization = s.parse()?;
    }
    probe.validate().map_err(|e| e.to_string())?;
    builder = builder
        .backend(probe.backend)
        .model(probe.model)
        .sensitization(probe.sensitization);
    if let Some(u) = opts.value("universe") {
        builder = builder.universe(FaultUniverse::parse_name(u)?);
    }
    if let Some(seed) = opts.number("seed")? {
        builder = builder.seed(seed);
    }
    if let Some(n) = opts.number("parallelism")? {
        builder = builder.parallelism(n as usize);
    }
    if let Some(secs) = opts.number("time-budget")? {
        builder = builder.time_budget(Duration::from_secs(secs));
    }
    if let Some(dir) = opts.value("dir") {
        builder = builder.artifact_dir(dir);
    }
    if let Some(every) = opts.number("checkpoint-every")? {
        builder = builder.checkpoint_every(every as usize);
    }
    // --cache: the exact result cache. Before the run, any circuit whose
    // `(circuit digest, config digest)` key resolves in `<dir>/store` is
    // materialized as its `<name>.run.json` artifact, which `resume`
    // then loads instead of regenerating; after the run every completed
    // artifact is published back under the same key. Hits are *exact*:
    // the cached bytes are the canonical encoding the same configuration
    // would recompute.
    let cache_ctx = if opts.switch("cache") {
        let dir = PathBuf::from(
            opts.value("dir")
                .ok_or("--cache needs --dir (the store lives at <dir>/store)")?,
        );
        let store = Store::open(dir.join("store")).map_err(|e| e.to_string())?;
        let config = config_from_opts(&opts)?;
        let sources = fleet_sources(&opts)?;
        Some((dir, store, config, sources))
    } else {
        None
    };
    if let Some((dir, store, config, sources)) = &cache_ctx {
        let mut seeded = 0usize;
        for source in sources {
            let Ok(circuit) = source.resolve() else {
                continue;
            };
            let path = dir.join(format!("{}.run.json", circuit.name()));
            if path.exists() {
                continue;
            }
            let key = CacheKey::new(source, config).run_name();
            let Ok(Some(text)) = store.get_named(&key) else {
                continue;
            };
            let Ok(artifact) = RunArtifact::decode(&text) else {
                continue;
            };
            if artifact.partial || artifact.config() != *config || artifact.circuit != *source {
                continue;
            }
            if gdf::core::io::write_atomic(&path, &text).is_ok() {
                seeded += 1;
            }
        }
        if !opts.switch("quiet") && seeded > 0 {
            eprintln!("cache: {seeded} circuit(s) seeded from the result cache");
        }
    }
    builder = builder.resume(opts.switch("resume") || cache_ctx.is_some());
    if !opts.switch("quiet") {
        builder = builder.observer(Progress::new("campaign"));
    }
    let report = builder.run();
    print!("{}", report.render());
    if let Some((dir, store, config, sources)) = &cache_ctx {
        for source in sources {
            let Ok(circuit) = source.resolve() else {
                continue;
            };
            let path = dir.join(format!("{}.run.json", circuit.name()));
            let Ok(artifact) = RunArtifact::load(&path) else {
                continue;
            };
            if artifact.partial || artifact.config() != *config {
                continue;
            }
            let key = CacheKey::new(source, config).run_name();
            if let Err(e) = store.publish(&key, &artifact.canonical_encode()) {
                eprintln!("cache: publish {} failed: {e}", circuit.name());
            }
        }
    }
    Ok(if report.stopped {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// The campaign's circuit list as [`CircuitSource`]s — what a fleet
/// plan records (full provenance, so any node and any resumed
/// coordinator rebuild byte-identical circuits).
fn fleet_sources(opts: &Opts) -> Result<Vec<CircuitSource>, String> {
    let mut sources = Vec::new();
    if opts.switch("suite") {
        for circuit in suite::full_suite() {
            let reference = circuit.name().trim_end_matches("_syn").to_string();
            sources.push(CircuitSource::suite(&circuit, &reference));
        }
    }
    for spec in &opts.positional {
        sources.push(load_circuit(spec)?.1);
    }
    if sources.is_empty() {
        return Err("no circuits: pass CIRCUIT arguments or --suite".into());
    }
    Ok(sources)
}

/// `gdf campaign --fleet H1,H2,…`: shard the campaign across running
/// `gdf serve` nodes and merge deterministically. With `--resume` and an
/// existing `<dir>/fleet.json`, the persisted plan is continued (its
/// recorded node list wins over `--fleet`).
fn cmd_campaign_fleet(opts: &Opts, nodes_arg: &str) -> Result<ExitCode, String> {
    let nodes: Vec<String> = nodes_arg
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if nodes.is_empty() {
        return Err("--fleet needs a comma-separated HOST:PORT list".into());
    }
    let dir = PathBuf::from(opts.value("dir").unwrap_or("gdf-fleet"));
    let mut coordinator = if opts.switch("resume") && Coordinator::plan_path(&dir).exists() {
        let coordinator = Coordinator::resume(&dir).map_err(|e| e.to_string())?;
        if coordinator.plan().nodes != nodes {
            eprintln!(
                "note: resuming with the plan's recorded nodes ({}), not --fleet",
                coordinator.plan().nodes.join(",")
            );
        }
        coordinator
    } else {
        let sources = fleet_sources(opts)?;
        let config = config_from_opts(opts)?;
        let units = opts
            .number("units")?
            .unwrap_or(2 * nodes.len() as u64)
            .max(1) as usize;
        let name = dir
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("campaign")
            .to_string();
        let mut plan =
            FleetPlan::new(name, nodes, config, sources, units).map_err(|e| e.to_string())?;
        if let Some(n) = opts.number("parallelism")? {
            plan.parallelism = (n as usize).max(1);
        }
        if let Some(every) = opts.number("checkpoint-every")? {
            plan.checkpoint_every = (every as usize).max(1);
        }
        Coordinator::create(&dir, plan).map_err(|e| e.to_string())?
    };
    coordinator = coordinator.with_verbose(!opts.switch("quiet"));
    if let Some(secs) = opts.number("steal-after")? {
        coordinator = coordinator.with_steal_after(Duration::from_secs(secs));
    }
    if let Some(token) = opts.value("token") {
        // Multi-tenant nodes: in-memory only, never into fleet.json.
        coordinator = coordinator.with_token(token);
    }
    let report = coordinator.run().map_err(|e| e.to_string())?;
    print!("{}", report.campaign.render());
    println!(
        "fleet: {} units over {} nodes, {} reassigned — artifacts in {}",
        report.units,
        report.nodes.len(),
        report.stolen,
        dir.display()
    );
    for node in &report.nodes {
        println!(
            "  {}: {} units harvested, {} faults",
            node.addr, node.units, node.faults
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `gdf fleet status --dir DIR`: the persisted plan's unit states plus a
/// live probe of every node. `gdf fleet top` is the same view,
/// refreshing in place until interrupted.
fn cmd_fleet(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    match opts.positional.as_slice() {
        [sub] if sub == "status" => {
            let dir = PathBuf::from(opts.value("dir").unwrap_or("gdf-fleet"));
            let mut coordinator = Coordinator::resume(&dir).map_err(|e| e.to_string())?;
            print!("{}", coordinator.render_status());
            Ok(ExitCode::SUCCESS)
        }
        [sub] if sub == "top" => {
            let dir = PathBuf::from(opts.value("dir").unwrap_or("gdf-fleet"));
            let interval = Duration::from_secs(opts.number("interval")?.unwrap_or(2).max(1));
            let once = opts.switch("once");
            loop {
                // Re-resume each frame: the plan on disk is the source
                // of truth while a separate coordinator process drives
                // the campaign.
                let mut coordinator = Coordinator::resume(&dir).map_err(|e| e.to_string())?;
                let frame = format!(
                    "gdf fleet top — {} (campaign trace {})\n\n{}",
                    dir.display(),
                    coordinator.trace().header_value(),
                    coordinator.render_status()
                );
                if once {
                    print!("{frame}");
                    return Ok(ExitCode::SUCCESS);
                }
                refresh_frame(&frame);
                std::thread::sleep(interval);
            }
        }
        _ => Err("usage: gdf fleet <status|top> [--dir DIR] [--interval SECS] [--once]".into()),
    }
}

/// Clears the terminal and paints one dashboard frame (plain ANSI —
/// no terminal library, works in any VT100-descendant).
fn refresh_frame(frame: &str) {
    use std::io::Write;
    print!("\x1b[2J\x1b[H{frame}");
    std::io::stdout().flush().ok();
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    if opts.positional.is_empty() {
        return Err("expected at least one RUN.json argument".into());
    }
    if opts.switch("diff") {
        let [a, b] = opts.positional.as_slice() else {
            return Err("--diff expects exactly two RUN.json arguments".into());
        };
        return diff_runs(a, b);
    }
    println!("{}", CircuitReport::header());
    for path in &opts.positional {
        let artifact = RunArtifact::load(path).map_err(|e| e.to_string())?;
        match artifact.report() {
            Some(report) => println!("{}", report.line()),
            None => println!(
                "{:<12} partial checkpoint: {}/{} faults decided, {} sequences",
                artifact.circuit.name,
                artifact.decided(),
                artifact.total(),
                artifact.sequences()
            ),
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `gdf compact --dir DIR [-o OUT.json] [--seed N]`: loads every
/// `<name>.run.json` in the campaign directory, runs the bloom-gated
/// cross-circuit compaction and writes one global compacted pattern
/// document. Each per-circuit compacted set is then re-graded against
/// the full (uncompacted) export of the same run — compaction must not
/// lose a single graded detection, or the command fails.
fn cmd_compact(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let dir = PathBuf::from(opts.value("dir").unwrap_or("gdf-campaign"));
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".run.json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no *.run.json artifacts in {}", dir.display()));
    }
    let mut inputs = Vec::new();
    for path in &paths {
        let artifact = RunArtifact::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let circuit = artifact
            .circuit
            .resolve()
            .map_err(|e| format!("{}: {e}", path.display()))?;
        inputs.push((circuit, artifact));
    }
    let seed = opts.number("seed")?.unwrap_or(0x1995);
    let compaction = compact_campaign(&inputs, seed).map_err(|e| e.to_string())?;
    // Re-grade: the compacted set must detect everything the full
    // export of the same run detects, circuit by circuit.
    for ((circuit, artifact), compacted) in inputs.iter().zip(&compaction.set.sets) {
        let config = artifact.config();
        let run = artifact.to_run(circuit).map_err(|e| e.to_string())?;
        let full = PatternSet::from_run(
            circuit,
            &run,
            &config.backend.to_string(),
            config.seed,
            Some(artifact.circuit.clone()),
        );
        let universe = config.universe;
        let before = grade_patterns(circuit, &full, config.model, &universe, config.seed)
            .map_err(|e| e.to_string())?;
        let after = grade_patterns(circuit, compacted, config.model, &universe, config.seed)
            .map_err(|e| e.to_string())?;
        if after.detected() < before.detected() {
            return Err(format!(
                "{}: compaction lost coverage ({} -> {} of {} faults)",
                circuit.name(),
                before.detected(),
                after.detected(),
                after.total_faults
            ));
        }
        println!(
            "{:<12} {:>5} -> {:>4} sequences, {}/{} faults re-graded detected",
            circuit.name(),
            full.patterns.len(),
            compacted.patterns.len(),
            after.detected(),
            after.total_faults
        );
    }
    let set = &compaction.set;
    println!(
        "compact: {} -> {} sequences over {} circuit(s) ({:.1}% kept); bloom fast-kept {}, {} exact check(s) over {} signature(s)",
        set.patterns_before,
        set.patterns_after,
        set.sets.len(),
        100.0 * (1.0 - set.reduction()),
        compaction.bloom_fast_keeps,
        compaction.exact_checks,
        compaction.signatures,
    );
    let out = opts
        .value("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| dir.join("patterns.compact.json"));
    set.save(&out).map_err(|e| e.to_string())?;
    println!("compact: wrote {}", out.display());
    Ok(ExitCode::SUCCESS)
}

/// `gdf store <stats|gc> --dir DIR`: inspect or garbage-collect the
/// content-addressed store under `<dir>/store` — the layout shared by
/// `gdf serve`, `gdf campaign --cache` and the fleet coordinator.
fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let dir = PathBuf::from(opts.value("dir").unwrap_or("."));
    match opts.positional.as_slice() {
        [sub] if sub == "stats" => {
            let store = Store::open(dir.join("store")).map_err(|e| e.to_string())?;
            println!("{}", store.stats().map_err(|e| e.to_string())?);
            Ok(ExitCode::SUCCESS)
        }
        [sub] if sub == "gc" => {
            let store = Store::open(dir.join("store")).map_err(|e| e.to_string())?;
            println!("{}", store.gc().map_err(|e| e.to_string())?);
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("usage: gdf store <stats|gc> [--dir DIR]".into()),
    }
}

/// Lists the embedded suite circuits with their gate/DFF counts and
/// per-model fault-universe sizes, so `suite:<name>` refs are
/// discoverable without reading source. The fault counts come from the
/// lazy [`gdf::netlist::FaultSet`] — nothing is materialized.
fn cmd_suite(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, &["universe"], &[])?;
    if !opts.positional.is_empty() {
        return Err("suite takes no positional arguments".into());
    }
    let universe = opts
        .value("universe")
        .map(FaultUniverse::parse_name)
        .transpose()?
        .unwrap_or_default();
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>8} {:>7} {:>8}",
        "ref", "inputs", "dffs", "gates", "outputs", "faults", "classes"
    );
    for circuit in suite::full_suite() {
        let reference = circuit.name().trim_end_matches("_syn").to_string();
        let stats = circuit.stats();
        let model = ModelKind::Delay.model();
        let faults = gdf::netlist::FaultSet::new(&circuit, universe, ModelKind::Delay).len();
        let universe_list: Vec<_> = model.enumerate(&circuit, &universe).collect();
        let classes = model
            .collapse(&circuit, &universe_list)
            .representatives
            .len();
        println!(
            "suite:{:<8} {:>6} {:>6} {:>6} {:>8} {:>7} {:>8}",
            reference,
            stats.num_inputs,
            stats.num_dffs,
            stats.num_gates,
            stats.num_outputs,
            faults,
            classes
        );
    }
    println!(
        "\nuniverse: {} (2 faults per site, every model) — run one with \
         `gdf run suite:<name>`, e.g. `gdf run suite:s27 --model transition`",
        opts.value("universe").unwrap_or("full")
    );
    Ok(ExitCode::SUCCESS)
}

/// Compares two completed run artifacts modulo wall-clock; exit 0 iff
/// the artifacts are byte-identical in canonical form. Specific
/// differences (config, records, sequences, reports, coverage) are
/// named; anything the named checks miss is still caught by the final
/// canonical-encoding comparison, so a nonzero exit is guaranteed
/// whenever the artifacts differ — scripts and CI key on that.
fn diff_runs(a: &str, b: &str) -> Result<ExitCode, String> {
    let load = |path: &str| -> Result<(RunArtifact, AtpgRun), String> {
        let artifact = RunArtifact::load(path).map_err(|e| format!("{path}: {e}"))?;
        let circuit = artifact.circuit.resolve().map_err(|e| e.to_string())?;
        let run = artifact
            .to_run(&circuit)
            .map_err(|e| format!("{path}: {e}"))?;
        Ok((artifact, run))
    };
    let (artifact_a, run_a) = load(a)?;
    let (artifact_b, run_b) = load(b)?;
    let mut differences = Vec::new();
    if artifact_a.config() != artifact_b.config() {
        differences.push("configurations differ (backend/model/universe/limits/seed)".to_string());
    }
    if run_a.records != run_b.records {
        let first = run_a
            .records
            .iter()
            .zip(&run_b.records)
            .position(|(x, y)| x != y);
        differences.push(format!("records differ (first at index {:?})", first));
    }
    if run_a.sequences != run_b.sequences {
        differences.push("sequences differ".to_string());
    }
    if run_a.relied_ppos != run_b.relied_ppos {
        differences.push("relied-PPO lists differ".to_string());
    }
    if run_a.report.row.normalized() != run_b.report.row.normalized() {
        differences.push(format!(
            "reports differ: {} vs {}",
            run_a.report.row.normalized(),
            run_b.report.row.normalized()
        ));
    }
    if run_a.report.coverage != run_b.report.coverage {
        differences.push(format!(
            "coverage differs: {} vs {}",
            run_a.report.coverage, run_b.report.coverage
        ));
    }
    if differences.is_empty() && artifact_a.canonical_encode() != artifact_b.canonical_encode() {
        differences.push("artifacts differ outside the compared fields".to_string());
    }
    if differences.is_empty() {
        println!("identical: {} == {} (modulo wall-clock)", a, b);
        Ok(ExitCode::SUCCESS)
    } else {
        for d in &differences {
            eprintln!("diff: {d}");
        }
        Ok(ExitCode::FAILURE)
    }
}

// ---------------------------------------------------------------------
// The job server and its remote controls
// ---------------------------------------------------------------------

fn client_from(opts: &Opts) -> Result<Client, String> {
    let addr = opts
        .value("addr")
        .ok_or("--addr <HOST:PORT> is required for remote commands")?;
    let mut client = Client::new(addr);
    // `--token` authenticates against a multi-tenant server
    // (`gdf serve --tenants`); open servers ignore the header.
    if let Some(token) = opts.value("token") {
        client = client.with_token(token);
    }
    Ok(client)
}

fn job_id_arg(opts: &Opts, what: &str) -> Result<u64, String> {
    let [arg] = opts.positional.as_slice() else {
        return Err(format!("expected exactly one {what} argument"));
    };
    arg.parse().map_err(|_| format!("bad job id `{arg}`"))
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    if !opts.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let addr = opts.value("addr").unwrap_or("127.0.0.1:4817");
    let dir = opts.value("dir").unwrap_or("gdf-jobs");
    let mut config = ServeConfig::new(addr, dir);
    if let Some(workers) = opts.number("workers")? {
        config = config.with_workers(workers as usize);
    }
    if let Some(capacity) = opts.number("queue-capacity")? {
        config = config.with_queue_capacity(capacity as usize);
    }
    if let Some(every) = opts.number("checkpoint-every")? {
        config = config.with_checkpoint_every(every as usize);
    }
    if opts.switch("no-obs") {
        config = config.with_obs(false);
    }
    let mut tenant_count = None;
    if let Some(path) = opts.value("tenants") {
        let registry = TenantRegistry::load(path).map_err(|e| format!("--tenants {path}: {e}"))?;
        tenant_count = Some(registry.tenants.len());
        config = config.with_tenants(registry);
    }
    let workers = config.workers;
    let server = JobServer::start(config).map_err(|e| e.to_string())?;
    match tenant_count {
        Some(n) => println!(
            "gdf serve: listening on {} ({} workers, jobs in {dir}, {n} tenants)",
            server.local_addr(),
            workers
        ),
        None => println!(
            "gdf serve: listening on {} ({} workers, jobs in {dir})",
            server.local_addr(),
            workers
        ),
    }
    #[cfg(unix)]
    {
        // Graceful degradation: SIGTERM drains (stop accepting,
        // checkpoint running jobs at their next fault boundary, leave
        // the queue persisted) and exits 0; a restarted server — or a
        // fleet coordinator stealing the units — resumes everything.
        // kill -9 remains the crash path the recovery tests cover.
        sigterm::arm();
        while !sigterm::received() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        println!("gdf serve: SIGTERM received, draining");
        server.drain();
        server.shutdown();
        println!("gdf serve: drained, exiting");
        Ok(ExitCode::SUCCESS)
    }
    #[cfg(not(unix))]
    {
        server.wait();
        Ok(ExitCode::SUCCESS)
    }
}

/// Minimal `SIGTERM` latch on the libc `signal(2)` already linked via
/// std — no new dependencies, no sigaction plumbing. The handler only
/// flips an atomic; all real work happens on the main thread.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RECEIVED: AtomicBool = AtomicBool::new(false);
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler. Call once, before waiting.
    pub fn arm() {
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a `SIGTERM` has arrived since [`arm`].
    pub fn received() -> bool {
        RECEIVED.load(Ordering::SeqCst)
    }
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let [spec] = opts.positional.as_slice() else {
        return Err("expected exactly one CIRCUIT argument".into());
    };
    // Options other subcommands own must fail loudly here, not be
    // silently dropped from the submission.
    for (name, hint) in [
        ("time-budget", "jobs run unbudgeted server-side"),
        ("abort-after", "use `gdf cancel` to stop a remote job"),
        ("out", "use `gdf fetch <JOB> -o …` once the job is done"),
        (
            "patterns",
            "use `gdf fetch <JOB> --patterns …` once the job is done",
        ),
    ] {
        if opts.value(name).is_some() {
            return Err(format!("--{name} is not supported by `gdf submit`; {hint}"));
        }
    }
    let client = client_from(&opts)?;
    let config = config_from_opts(&opts)?;
    let body = if let Some(name) = spec.strip_prefix("suite:") {
        suite::by_name(name).ok_or_else(|| format!("unknown suite circuit `{name}`"))?;
        submission_for_suite(&format!("suite:{name}"), &config)
    } else {
        let path = Path::new(spec);
        let text = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("circuit");
        submission_for_bench(name, &text, &config)
    };
    let parallelism = opts.number("parallelism")?.unwrap_or(1) as usize;
    // No explicit cadence flag -> omit the field, so the server's
    // configured --checkpoint-every default applies.
    let every = opts.number("checkpoint-every")?.map(|n| n as usize);
    let body = submission_with_runtime(body, parallelism, every);
    let id = client.submit(&body).map_err(|e| e.to_string())?;
    // The bare id on stdout so scripts can capture it.
    println!("{id}");
    if opts.switch("follow") {
        follow_events(&client, id, opts.switch("quiet"))?;
    }
    if opts.switch("wait") || opts.switch("follow") {
        let status = client
            .wait(id, Duration::from_millis(100), None)
            .map_err(|e| e.to_string())?;
        return finish_remote_job(&status);
    }
    Ok(ExitCode::SUCCESS)
}

/// Streams `/events`, printing one line per decile of progress (and the
/// terminal events), until the server closes the stream.
fn follow_events(client: &Client, id: u64, quiet: bool) -> Result<(), String> {
    let mut last_decile = 0usize;
    client
        .events(id, |event| {
            if quiet {
                return true;
            }
            match event {
                ProgressEvent::Started {
                    engine,
                    circuit,
                    total_faults,
                } => eprintln!("[job {id}] {engine} on {circuit}: {total_faults} faults"),
                ProgressEvent::Progress { decided, total } => {
                    let decile = 10 * decided / total.max(1);
                    if decile > last_decile {
                        last_decile = decile;
                        eprintln!("[job {id}] {decided}/{total} faults decided");
                    }
                }
                ProgressEvent::Finished {
                    tested,
                    untestable,
                    aborted,
                    ..
                } => eprintln!(
                    "[job {id}] finished: {tested} tested, {untestable} untestable, \
                     {aborted} aborted"
                ),
                _ => {}
            }
            true
        })
        .map_err(|e| e.to_string())
}

/// Renders a terminal status document; exit code reflects the outcome.
fn finish_remote_job(status: &Json) -> Result<ExitCode, String> {
    print_remote_status(status);
    match status.get("state").and_then(Json::as_str) {
        Some("done") => Ok(ExitCode::SUCCESS),
        _ => Ok(ExitCode::FAILURE),
    }
}

fn print_remote_status(status: &Json) {
    let text = |key: &str| {
        status
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let count = |key: &str| status.get(key).and_then(Json::as_u64).unwrap_or(0);
    let mut line = format!(
        "job {}: {} ({}, {}) {}/{} faults",
        count("id"),
        text("state"),
        text("circuit"),
        text("backend"),
        count("decided"),
        count("total"),
    );
    if let Some(report) = status.get("report").filter(|r| !r.is_null()) {
        let r = |key: &str| report.get(key).and_then(Json::as_u64).unwrap_or(0);
        line.push_str(&format!(
            " — tested {} untestable {} aborted {} patterns {} sequences {}",
            r("tested"),
            r("untestable"),
            r("aborted"),
            r("patterns"),
            r("sequences"),
        ));
    }
    if let Some(error) = status.get("error").and_then(Json::as_str) {
        line.push_str(&format!(" — error: {error}"));
    }
    println!("{line}");
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let client = client_from(&opts)?;
    match opts.positional.as_slice() {
        [] => {
            let health = client.healthz().map_err(|e| e.to_string())?;
            let count = |key: &str| health.get(key).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "server {}: {} jobs ({} running, {} queued), {} workers",
                client.addr(),
                count("jobs"),
                count("running"),
                count("queued"),
                count("workers"),
            );
            let list = client.list().map_err(|e| e.to_string())?;
            for job in list
                .get("jobs")
                .and_then(Json::as_array)
                .unwrap_or_default()
            {
                print_remote_status(job);
            }
            Ok(ExitCode::SUCCESS)
        }
        [_] => {
            let id = job_id_arg(&opts, "JOB")?;
            if opts.switch("follow") {
                follow_events(&client, id, opts.switch("quiet"))?;
            }
            let status = client.status(id).map_err(|e| e.to_string())?;
            print_remote_status(&status);
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("expected at most one JOB argument".into()),
    }
}

fn cmd_fetch(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let id = job_id_arg(&opts, "JOB")?;
    let client = client_from(&opts)?;
    let artifact = client.artifact(id).map_err(|e| e.to_string())?;
    match opts.value("out") {
        Some(path) => {
            std::fs::write(path, &artifact).map_err(|e| format!("{path}: {e}"))?;
            println!("job {id} artifact -> {path}");
        }
        None => print!("{artifact}"),
    }
    if let Some(path) = opts.value("patterns") {
        let patterns = client.patterns(id).map_err(|e| e.to_string())?;
        std::fs::write(path, &patterns).map_err(|e| format!("{path}: {e}"))?;
        println!("job {id} patterns -> {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_cancel(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    let id = job_id_arg(&opts, "JOB")?;
    let client = client_from(&opts)?;
    let outcome = client.delete(id).map_err(|e| e.to_string())?;
    println!(
        "job {id}: {}",
        outcome.get("action").and_then(Json::as_str).unwrap_or("?")
    );
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// Observability front ends
// ---------------------------------------------------------------------

/// One parsed exposition sample: `(metric name, label body, value)`.
/// `gdf_x{a="b"} 3` parses to `("gdf_x", "a=\"b\"", 3.0)`.
fn parse_exposition(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => (name, rest.trim_end_matches('}')),
            None => (series, ""),
        };
        out.push((name.to_string(), labels.to_string(), value));
    }
    out
}

/// Extracts one label's value from a label body:
/// `label_value("phase=\"fsim\",quantile=\"0.5\"", "phase")` -> `fsim`.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    labels.split(',').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.trim_matches('"'))
    })
}

/// Renders one `gdf top` frame from a `/metrics` exposition.
fn render_top(addr: &str, text: &str) -> String {
    use std::fmt::Write;
    let samples = parse_exposition(text);
    let get = |name: &str| -> f64 {
        samples
            .iter()
            .find(|(n, l, _)| n == name && l.is_empty())
            .map(|(_, _, v)| *v)
            .unwrap_or(0.0)
    };
    let quantile = |name: &str, q: &str| -> f64 {
        samples
            .iter()
            .find(|(n, l, _)| n == name && label_value(l, "quantile") == Some(q))
            .map(|(_, _, v)| *v)
            .unwrap_or(0.0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "gdf top — {addr}\n");
    let _ = writeln!(
        out,
        "  jobs      {} completed, {} failed, {} cache hits, {} traces",
        get("gdf_jobs_completed_total"),
        get("gdf_jobs_failed_total"),
        get("gdf_cache_hits_total"),
        get("gdf_traces_written_total"),
    );
    let _ = writeln!(
        out,
        "  pool      {}/{} workers busy ({:.0}%), queue depth {}, {} running, {} queued{}",
        get("gdf_workers_busy"),
        get("gdf_workers"),
        get("gdf_worker_utilization") * 100.0,
        get("gdf_queue_depth"),
        get("gdf_jobs_running"),
        get("gdf_jobs_queued"),
        if get("gdf_draining") > 0.0 {
            "  [DRAINING]"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "  store     {} objects, {} bytes",
        get("gdf_store_objects"),
        get("gdf_store_bytes"),
    );
    let _ = writeln!(
        out,
        "  latency   p50 {:.3}s  p90 {:.3}s  p99 {:.3}s  ({} jobs)",
        quantile("gdf_job_latency_seconds", "0.5"),
        quantile("gdf_job_latency_seconds", "0.9"),
        quantile("gdf_job_latency_seconds", "0.99"),
        get("gdf_job_latency_seconds_count"),
    );
    // Per-phase breakdown, busiest first.
    let mut phases: Vec<(&str, f64, f64)> = samples
        .iter()
        .filter(|(n, _, _)| n == "gdf_engine_phase_seconds_sum")
        .filter_map(|(_, l, v)| {
            let phase = label_value(l, "phase")?;
            let count = samples
                .iter()
                .find(|(n, l2, _)| {
                    n == "gdf_engine_phase_seconds_count" && label_value(l2, "phase") == Some(phase)
                })
                .map(|(_, _, c)| *c)
                .unwrap_or(0.0);
            Some((phase, *v, count))
        })
        .filter(|(_, _, count)| *count > 0.0)
        .collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !phases.is_empty() {
        let _ = writeln!(out, "\n  {:<16} {:>10} {:>12}", "phase", "spans", "total");
        for (phase, sum, count) in phases {
            let _ = writeln!(out, "  {phase:<16} {count:>10} {sum:>11.3}s");
        }
    }
    // Per-tenant admission table (multi-tenant servers only): one row
    // per tenant seen in the gdf_tenant_* families.
    let mut tenants: Vec<String> = samples
        .iter()
        .filter(|(n, _, _)| n == "gdf_tenant_admitted_total")
        .filter_map(|(_, l, _)| label_value(l, "tenant").map(str::to_string))
        .collect();
    tenants.sort();
    tenants.dedup();
    if !tenants.is_empty() {
        let labeled = |name: &str, tenant: &str| -> f64 {
            samples
                .iter()
                .find(|(n, l, _)| n == name && label_value(l, "tenant") == Some(tenant))
                .map(|(_, _, v)| *v)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "\n  {:<16} {:>8} {:>8} {:>10} {:>10}",
            "tenant", "queued", "running", "admitted", "rejected"
        );
        for tenant in tenants {
            let _ = writeln!(
                out,
                "  {:<16} {:>8} {:>8} {:>10} {:>10}",
                tenant,
                labeled("gdf_tenant_queued", &tenant),
                labeled("gdf_tenant_running", &tenant),
                labeled("gdf_tenant_admitted_total", &tenant),
                labeled("gdf_tenant_rejected_total", &tenant),
            );
        }
    }
    // HTTP request counters, busiest first.
    let mut http: Vec<(String, f64)> = samples
        .iter()
        .filter(|(n, _, _)| n == "gdf_http_requests_total")
        .filter_map(|(_, l, v)| {
            let method = label_value(l, "method")?;
            let path = label_value(l, "path")?;
            let status = label_value(l, "status")?;
            Some((format!("{method} {path} -> {status}"), *v))
        })
        .filter(|(_, v)| *v > 0.0)
        .collect();
    http.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    if !http.is_empty() {
        let _ = writeln!(out, "\n  {:<34} {:>8}", "http", "requests");
        for (route, count) in http {
            let _ = writeln!(out, "  {route:<34} {count:>8}");
        }
    }
    out
}

/// `gdf top --addr HOST:PORT [--interval SECS] [--once]`: a live
/// dashboard over `GET /metrics` — same bytes Prometheus would scrape,
/// rendered for a terminal and refreshed in place.
fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    if !opts.positional.is_empty() {
        return Err("top takes no positional arguments".into());
    }
    let client = client_from(&opts)?;
    let interval = Duration::from_secs(opts.number("interval")?.unwrap_or(2).max(1));
    let once = opts.switch("once");
    loop {
        let text = client.metrics().map_err(|e| e.to_string())?;
        let frame = render_top(client.addr(), &text);
        if once {
            print!("{frame}");
            return Ok(ExitCode::SUCCESS);
        }
        refresh_frame(&frame);
        std::thread::sleep(interval);
    }
}

/// `gdf trace export <TRACE.ndjson> --chrome [-o OUT.json]`: converts a
/// server-written NDJSON job trace into the chrome://tracing (and
/// Perfetto) JSON event format.
fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    let opts = Opts::parse(args, RUN_VALUES, RUN_SWITCHES)?;
    match opts.positional.as_slice() {
        [sub, path] if sub == "export" => {
            if !opts.switch("chrome") {
                return Err("specify an export format: --chrome".into());
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let converted = gdf::obs::chrome_trace(&text)?.pretty();
            match opts.value("out") {
                Some(out) => {
                    std::fs::write(out, &converted).map_err(|e| format!("{out}: {e}"))?;
                    println!("{path} -> {out}");
                }
                None => println!("{converted}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err("usage: gdf trace export <TRACE.ndjson> --chrome [-o OUT.json]".into()),
    }
}
