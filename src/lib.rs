//! # gdf — gate delay fault ATPG for non-scan sequential circuits
//!
//! A from-scratch Rust reproduction of *van Brakel, Gläser, Kerkhoff,
//! Vierhaus: "Gate Delay Fault Test Generation for Non-Scan Circuits",
//! DATE 1995*. This facade crate re-exports the whole workspace:
//!
//! * [`netlist`] — circuits, the ISCAS'89 `.bench` parser, the unified
//!   fault universe, SCOAP measures and the benchmark suite;
//! * [`algebra`] — the 8-valued robust delay algebra (paper Tables 1–2),
//!   the 5-valued static D-algebra and 3-valued logic;
//! * [`sim`] — good-machine simulation, FAUSIM and TDsim;
//! * [`tdgen`] — the combinational two-frame robust delay-fault generator;
//! * [`semilet`] — FOGBUSTER propagation / initialization and standalone
//!   sequential stuck-at ATPG;
//! * [`core`] — the **unified engine API**: one builder over the
//!   extended-FOGBUSTER driver, the enhanced-scan baseline and the
//!   sequential stuck-at backend, with streaming observation and
//!   deterministic fault-parallel orchestration — plus the **session
//!   layer** (`core::session`, `core::artifact`): persistent run
//!   artifacts, checkpoint/resume that is byte-identical to an
//!   uninterrupted run, resumable multi-circuit campaigns, and
//!   standalone re-grading of saved pattern sets. The `gdf` binary
//!   (`gdf run` / `resume` / `grade` / `campaign` / `report`) drives all
//!   of it from the command line over `.bench` files and JSON artifacts;
//! * [`serve`] — the **job server**: a hand-rolled HTTP/1.1 service on
//!   `std::net` with a bounded sharded queue, a fixed worker pool,
//!   streaming progress events and checkpoint-backed crash recovery
//!   (`gdf serve`, with `gdf submit` / `status` / `fetch` / `cancel` as
//!   its remote controls);
//! * [`fleet`] — the **distributed campaign coordinator**: shards one
//!   campaign across N `gdf-serve` nodes by circuit and fault-universe
//!   range, with a persistent schema-versioned plan (`fleet.json`),
//!   health probing over `GET /metrics`, work stealing from dead or slow
//!   nodes, and a deterministic merge whose artifacts are byte-identical
//!   in canonical encoding to a single-node run (`gdf campaign --fleet`,
//!   `gdf fleet status`);
//! * [`store`] — the **content-addressed artifact store**: objects keyed
//!   by a 128-bit digest of their canonical encoding, refcounted named
//!   handles, mark-and-sweep `gc()`, and the **exact result cache**
//!   keyed by `(circuit digest, RunConfig digest)` that lets `gdf serve`
//!   answer duplicate submissions instantly and the fleet coordinator
//!   skip already-computed shards — plus **bloom-gated campaign
//!   compaction** (`gdf compact`) emitting one global compacted pattern
//!   document verified by re-grading;
//! * [`chaos`] — **deterministic fault injection** for the persistence
//!   and socket layers: a seeded schedule drives torn writes, stale
//!   temp files, `ENOSPC`, partial reads (via the `core::io` artifact
//!   facade) and dropped/delayed/truncated/black-holed connections (via
//!   a TCP proxy), so the recovery guarantees are exercised over the
//!   whole failure space — see `tests/chaos_*.rs`. `gdf serve` also
//!   drains gracefully on `SIGTERM`: stop accepting, checkpoint running
//!   jobs, persist the queue, exit 0;
//! * [`obs`] — **observability**: the unified metrics registry
//!   (counters, gauges, log-bucketed histograms with exact quantiles,
//!   one Prometheus text encoder behind `GET /metrics`), digest-derived
//!   structured tracing propagated across nodes via `X-Gdf-Trace`
//!   (`gdf trace export --chrome` converts a job trace for
//!   chrome://tracing), engine profiling hooks (`core::phase`) feeding
//!   per-phase histograms and per-job `profile` blocks, and the
//!   `gdf top` / `gdf fleet top` live dashboards. Strictly a side
//!   channel: canonical artifact bytes are identical with it on or off;
//! * [`tenant`] — **multi-tenant admission control**: the
//!   schema-versioned `tenants.json` bearer-token registry with
//!   constant-time token comparison, per-tenant quotas (max queued, max
//!   running, requests/second via a hand-rolled token bucket), priority
//!   classes, and a weighted deficit round-robin scheduler with
//!   deterministic tie-breaks. `gdf serve --tenants FILE` turns it on;
//!   without a registry the server runs open, exactly as before. Over-
//!   quota submissions get `429 + Retry-After` (the tenant's problem),
//!   saturation keeps `503` (the server's problem), and per-tenant
//!   `gdf_tenant_*` metrics join `/metrics` and `gdf top`. The
//!   `bench_serve` bin load-tests the whole stack with thousands of
//!   concurrent clients.
//!
//! ## Quickstart
//!
//! Every backend is constructed through `Atpg::builder` and driven
//! through the [`core::AtpgEngine`] trait:
//!
//! ```
//! use gdf::core::{Atpg, Backend};
//! use gdf::netlist::suite;
//!
//! let circuit = suite::s27();
//! let mut engine = Atpg::builder(&circuit)
//!     .backend(Backend::NonScan) // or EnhancedScan / StuckAt
//!     .seed(0x1995)
//!     .build();
//! let run = engine.run();
//! println!("{}", run.report.row);
//! assert!(run.report.row.tested > 0);
//! ```
//!
//! The builder also takes `.model(…)` (robust / non-robust),
//! `.universe(…)`, `.limits(…)` (all search budgets, paper defaults),
//! `.observer(…)` (streaming per-fault records, progress, cooperative
//! cancellation), `.time_budget(…)`, and `.parallelism(n)` — fault-level
//! parallel generation whose results are **identical to a serial run**
//! for the same seed:
//!
//! ```
//! use gdf::core::{Atpg, Backend};
//! use gdf::netlist::suite;
//!
//! let circuit = suite::s27();
//! let serial = Atpg::builder(&circuit).build().run();
//! let parallel = Atpg::builder(&circuit).parallelism(4).build().run();
//! assert_eq!(serial.records, parallel.records);
//! assert_eq!(serial.sequences, parallel.sequences);
//! ```
//!
//! The pre-engine entry points remain available:
//! `core::DelayAtpg::new(&circuit).run()` is the serial non-scan run
//! with default limits (see the `MIGRATION` section in `CHANGES.md` for
//! the full old-to-new mapping).

pub use gdf_algebra as algebra;
pub use gdf_chaos as chaos;
pub use gdf_core as core;
pub use gdf_fleet as fleet;
pub use gdf_netlist as netlist;
pub use gdf_obs as obs;
pub use gdf_semilet as semilet;
pub use gdf_serve as serve;
pub use gdf_sim as sim;
pub use gdf_store as store;
pub use gdf_tdgen as tdgen;
pub use gdf_tenant as tenant;
