//! # gdf — gate delay fault ATPG for non-scan sequential circuits
//!
//! A from-scratch Rust reproduction of *van Brakel, Gläser, Kerkhoff,
//! Vierhaus: "Gate Delay Fault Test Generation for Non-Scan Circuits",
//! DATE 1995*. This facade crate re-exports the whole workspace:
//!
//! * [`netlist`] — circuits, the ISCAS'89 `.bench` parser, fault universe,
//!   SCOAP measures and the benchmark suite;
//! * [`algebra`] — the 8-valued robust delay algebra (paper Tables 1–2),
//!   the 5-valued static D-algebra and 3-valued logic;
//! * [`sim`] — good-machine simulation, FAUSIM and TDsim;
//! * [`tdgen`] — the combinational two-frame robust delay-fault generator;
//! * [`semilet`] — FOGBUSTER propagation / initialization and standalone
//!   sequential stuck-at ATPG;
//! * [`core`] — the extended-FOGBUSTER driver, pattern assembly, Table 3
//!   reporting and the enhanced-scan baseline.
//!
//! ## Quickstart
//!
//! ```
//! use gdf::core::DelayAtpg;
//! use gdf::netlist::suite;
//!
//! let circuit = suite::s27();
//! let run = DelayAtpg::new(&circuit).run();
//! println!("{}", run.report.row);
//! assert!(run.report.row.tested > 0);
//! ```

pub use gdf_algebra as algebra;
pub use gdf_core as core;
pub use gdf_netlist as netlist;
pub use gdf_semilet as semilet;
pub use gdf_sim as sim;
pub use gdf_tdgen as tdgen;
