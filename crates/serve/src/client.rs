//! The HTTP client of the job API — what `gdf submit`/`status`/`fetch`
//! speak, and what the determinism tests drive the server with.
//!
//! Thin by design: every call is one connection, one request, one parsed
//! response (see `crate::http`). Errors split into transport
//! ([`ServeError::Http`]) and API ([`ServeError::Api`], carrying the
//! server's status code and `{"error": …}` message).
//!
//! Transient conditions are retried with a capped, **jitter-free**
//! exponential backoff (see [`Client::retry_after`]): a `503` response
//! (saturated queue, server stopping) and a refused connection (node
//! not up yet, node restarting) are safe to retry for every verb the
//! client speaks — a `503` submit enqueued nothing, and a refused
//! connection never reached the server. Idempotent GETs additionally
//! retry *any* transport failure (connection reset mid-body, truncated
//! chunked read): re-reading changes nothing server-side. A `503` that
//! carries `Retry-After` is a deliberate drain verdict and returns
//! immediately. A `429` (tenant quota or rate limit) enqueued nothing
//! either, so it retries like a `503` — honoring the server's
//! `Retry-After` hint, capped at 5 s. The schedule is deterministic so
//! fleet runs sequence identically on every execution.

use crate::http::{client_request_with_headers, client_stream, HttpError};
use crate::job::JobId;
use crate::ServeError;
use gdf_core::json::{Json, ParseLimits};
use gdf_core::session::ProgressEvent;
use gdf_obs::{TraceCtx, TRACE_HEADER};
use std::time::{Duration, Instant};

/// First backoff delay; doubles per attempt up to [`RETRY_CAP`].
const RETRY_BASE: Duration = Duration::from_millis(100);
/// Ceiling of the exponential backoff schedule.
const RETRY_CAP: Duration = Duration::from_secs(2);
/// Default number of retries after the first attempt.
const RETRY_DEFAULT: u32 = 5;

/// A handle on one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
    retries: u32,
    token: Option<String>,
}

impl Client {
    /// A client for `addr` (`host:port`) with a 30 s per-request timeout
    /// and 5 retries on `503`/connection-refused.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            retries: RETRY_DEFAULT,
            token: None,
        }
    }

    /// Replaces the per-request timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Attaches a tenant bearer token, sent as `Authorization: Bearer
    /// <token>` on every request — what a multi-tenant server
    /// (`gdf serve --tenants`) requires on job-mutating routes.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        let token = token.into();
        self.token = (!token.is_empty()).then_some(token);
        self
    }

    /// Replaces the retry budget (`0` fails on the first transient
    /// error — what a health probe that wants a fast verdict uses).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The backoff before retry number `attempt` (0-based): `100ms ·
    /// 2^attempt`, capped at 2 s. No jitter — randomizing the schedule
    /// would make fleet campaigns time-dependent for no benefit at this
    /// scale (a handful of coordinators, not a thundering herd).
    pub fn retry_after(attempt: u32) -> Duration {
        RETRY_BASE
            .saturating_mul(1u32 << attempt.min(30))
            .min(RETRY_CAP)
    }

    /// Whether a transport error is a refused/unreachable connection —
    /// the request never reached a server, so retrying cannot duplicate
    /// work. Safe for every verb.
    fn transient_transport(error: &HttpError) -> bool {
        matches!(error, HttpError::Io(m) if m.starts_with("connect "))
    }

    /// Whether a transport error is retryable *for idempotent requests*:
    /// any socket failure (reset mid-body, truncated chunked read, EOF
    /// inside the status line) or malformed wire bytes. A GET that died
    /// half-way changed nothing server-side, so re-issuing it is always
    /// safe; for POST/DELETE the request may have been applied, so only
    /// [`Self::transient_transport`] qualifies. `TooLarge` is excluded —
    /// an oversized document stays oversized on retry.
    fn idempotent_transport(error: &HttpError) -> bool {
        matches!(error, HttpError::Io(_) | HttpError::Malformed(_))
    }

    /// Parses a response's `Retry-After` header (whole seconds).
    fn retry_after_header(headers: &[(String, String)]) -> Option<u32> {
        headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .and_then(|(_, v)| v.trim().parse().ok())
    }

    fn exchange(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Vec<u8>, Option<u32>), ServeError> {
        self.exchange_with(method, path, body, &[])
    }

    fn exchange_with(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<(u16, Vec<u8>, Option<u32>), ServeError> {
        let auth = self.token.as_ref().map(|t| format!("Bearer {t}"));
        let mut headers: Vec<(&str, &str)> = extra_headers.to_vec();
        if let Some(auth) = &auth {
            headers.push(("Authorization", auth.as_str()));
        }
        let idempotent = method == "GET";
        let mut attempt = 0u32;
        loop {
            let mut delay = Self::retry_after(attempt);
            match client_request_with_headers(
                &self.addr,
                method,
                path,
                body,
                self.timeout,
                &headers,
            ) {
                // A 503 carrying `Retry-After` is a deliberate verdict
                // (drain, hard capacity) — surface it immediately so the
                // caller can route elsewhere instead of burning backoff.
                Ok(response)
                    if response.status == 503
                        && Self::retry_after_header(&response.headers).is_none()
                        && attempt < self.retries => {}
                // A 429 is the tenant's own quota or rate limit:
                // nothing was enqueued, so retrying is safe for every
                // verb. Honor the server's `Retry-After` hint (capped
                // at 5 s) when it exceeds the backoff.
                Ok(response) if response.status == 429 && attempt < self.retries => {
                    if let Some(hint) = Self::retry_after_header(&response.headers) {
                        delay = delay.max(Duration::from_secs(u64::from(hint.min(5))));
                    }
                }
                Ok(response) => {
                    let retry_after = Self::retry_after_header(&response.headers);
                    return Ok((response.status, response.body, retry_after));
                }
                Err(e)
                    if attempt < self.retries
                        && (Self::transient_transport(&e)
                            || (idempotent && Self::idempotent_transport(&e))) => {}
                Err(e) => return Err(ServeError::Http(e)),
            }
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    /// Parses a response body as JSON, mapping non-2xx to
    /// [`ServeError::Api`] with the server's error message.
    fn json(&self, method: &str, path: &str, body: Option<&str>) -> Result<Json, ServeError> {
        self.json_with(method, path, body, &[])
    }

    fn json_with(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<Json, ServeError> {
        let (status, bytes, retry_after) = self.exchange_with(method, path, body, extra_headers)?;
        let text = String::from_utf8_lossy(&bytes);
        let parsed = Json::parse_with_limits(&text, ParseLimits::default()).ok();
        if !(200..300).contains(&status) {
            let message = parsed
                .as_ref()
                .and_then(|j| j.get("error"))
                .and_then(Json::as_str)
                .unwrap_or(text.trim())
                .to_string();
            return Err(ServeError::Api {
                status,
                message,
                retry_after,
            });
        }
        parsed.ok_or_else(|| ServeError::Protocol(format!("non-JSON response to {method} {path}")))
    }

    /// `GET /healthz`.
    pub fn healthz(&self) -> Result<Json, ServeError> {
        self.json("GET", "/healthz", None)
    }

    /// `GET /metrics` — the Prometheus text exposition, verbatim. What
    /// the fleet coordinator's health probe scrapes.
    pub fn metrics(&self) -> Result<String, ServeError> {
        self.fetch_document("/metrics")
    }

    /// One sample from `GET /metrics` by exact metric name (e.g.
    /// `gdf_cache_hits_total`, `gdf_store_bytes`). `Ok(None)` when the
    /// server doesn't export it — older servers predate the cache
    /// gauges, and a probe must degrade, not error.
    pub fn metric(&self, name: &str) -> Result<Option<f64>, ServeError> {
        let text = self.metrics()?;
        Ok(Self::sample_metric(&text, name))
    }

    /// Extracts `name`'s sample from an exposition text: the value on
    /// the line whose name (before any label set) matches exactly.
    pub fn sample_metric(text: &str, name: &str) -> Option<f64> {
        text.lines()
            .filter(|line| !line.starts_with('#'))
            .find_map(|line| {
                let rest = line.strip_prefix(name)?;
                // Exact name only: `gdf_jobs` must not match
                // `gdf_jobs_running`'s line.
                if !rest.starts_with(' ') && !rest.starts_with('{') {
                    return None;
                }
                rest.trim_start_matches(|c: char| c != ' ')
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
    }

    /// `POST /jobs` with a body built by
    /// [`crate::server::submission_for_suite`] /
    /// [`crate::server::submission_for_bench`]; returns the new job id.
    pub fn submit(&self, submission: &Json) -> Result<JobId, ServeError> {
        self.submit_traced(submission, None)
    }

    /// [`Client::submit`] carrying an `X-Gdf-Trace` header, so the
    /// server parents the job's trace under the caller's campaign (what
    /// the fleet coordinator sends per shard unit).
    pub fn submit_traced(
        &self,
        submission: &Json,
        trace: Option<&TraceCtx>,
    ) -> Result<JobId, ServeError> {
        let body = submission.to_string();
        let header_value = trace.map(TraceCtx::header_value);
        let headers: Vec<(&str, &str)> = match &header_value {
            Some(value) => vec![(TRACE_HEADER, value.as_str())],
            None => Vec::new(),
        };
        let response = self.json_with("POST", "/jobs", Some(&body), &headers)?;
        response
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServeError::Protocol("submit response without an id".into()))
    }

    /// `GET /jobs/<id>`.
    pub fn status(&self, id: JobId) -> Result<Json, ServeError> {
        self.json("GET", &format!("/jobs/{id}"), None)
    }

    /// `GET /jobs` — all job summaries.
    pub fn list(&self) -> Result<Json, ServeError> {
        self.json("GET", "/jobs", None)
    }

    /// `DELETE /jobs/<id>` — cancel an active job / remove a finished
    /// one; returns the action taken.
    pub fn delete(&self, id: JobId) -> Result<Json, ServeError> {
        self.json("DELETE", &format!("/jobs/{id}"), None)
    }

    /// `GET /jobs/<id>/artifact` — the canonical artifact bytes,
    /// verbatim (byte-identical across same-spec submissions).
    pub fn artifact(&self, id: JobId) -> Result<String, ServeError> {
        self.fetch_document(&format!("/jobs/{id}/artifact"))
    }

    /// `GET /jobs/<id>/patterns` — the exported pattern set, verbatim.
    pub fn patterns(&self, id: JobId) -> Result<String, ServeError> {
        self.fetch_document(&format!("/jobs/{id}/patterns"))
    }

    fn fetch_document(&self, path: &str) -> Result<String, ServeError> {
        let (status, bytes, retry_after) = self.exchange("GET", path, None)?;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if !(200..300).contains(&status) {
            let message = Json::parse(&text)
                .ok()
                .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
                .unwrap_or(text);
            return Err(ServeError::Api {
                status,
                message,
                retry_after,
            });
        }
        Ok(text)
    }

    /// `GET /jobs/<id>/events` — streams decoded progress events to
    /// `on_event` (return `false` to stop following). Lines that fail to
    /// decode (a future server speaking a newer dialect) are skipped.
    pub fn events(
        &self,
        id: JobId,
        mut on_event: impl FnMut(ProgressEvent) -> bool,
    ) -> Result<(), ServeError> {
        let mut pending = String::new();
        let (status, error_body) = client_stream(
            &self.addr,
            &format!("/jobs/{id}/events"),
            self.timeout,
            |chunk| {
                pending.push_str(&String::from_utf8_lossy(chunk));
                while let Some(newline) = pending.find('\n') {
                    let line: String = pending.drain(..=newline).collect();
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if let Ok(event) = Json::parse_with_limits(line, ParseLimits::network())
                        .map_err(|_| ())
                        .and_then(|j| ProgressEvent::decode(&j).map_err(|_| ()))
                    {
                        if !on_event(event) {
                            return false;
                        }
                    }
                }
                true
            },
        )
        .map_err(ServeError::Http)?;
        if !(200..300).contains(&status) {
            let text = String::from_utf8_lossy(&error_body);
            let message = Json::parse(text.trim())
                .ok()
                .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_else(|| text.trim().to_string());
            // The streaming path surfaces no headers, so no hint here.
            return Err(ServeError::Api {
                status,
                message,
                retry_after: None,
            });
        }
        Ok(())
    }

    /// Polls `GET /jobs/<id>` until the job reaches a terminal state (or
    /// `deadline` passes — [`ServeError::Protocol`] then). Returns the
    /// final status document.
    pub fn wait(
        &self,
        id: JobId,
        poll: Duration,
        deadline: Option<Duration>,
    ) -> Result<Json, ServeError> {
        let started = Instant::now();
        loop {
            let status = self.status(id)?;
            let state = status.get("state").and_then(Json::as_str).unwrap_or("");
            if matches!(state, "done" | "failed" | "cancelled") {
                return Ok(status);
            }
            if let Some(deadline) = deadline {
                if started.elapsed() > deadline {
                    return Err(ServeError::Protocol(format!(
                        "job {id} still `{state}` after {deadline:?}"
                    )));
                }
            }
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let schedule: Vec<u64> = (0..7)
            .map(|a| Client::retry_after(a).as_millis() as u64)
            .collect();
        assert_eq!(schedule, vec![100, 200, 400, 800, 1600, 2000, 2000]);
        // No overflow at absurd attempt numbers.
        assert_eq!(Client::retry_after(u32::MAX), RETRY_CAP);
    }

    #[test]
    fn refused_connections_classify_as_transient() {
        assert!(Client::transient_transport(&HttpError::Io(
            "connect 127.0.0.1:1: Connection refused".into()
        )));
        assert!(!Client::transient_transport(&HttpError::Io(
            "read: Connection reset by peer".into()
        )));
        assert!(!Client::transient_transport(&HttpError::Malformed(
            "bad status line".into()
        )));
    }

    #[test]
    fn mid_body_deaths_classify_as_retryable_for_gets_only() {
        // A connection dying mid-response: retryable for GETs.
        assert!(Client::idempotent_transport(&HttpError::Io(
            "chunk body: Connection reset by peer".into()
        )));
        assert!(Client::idempotent_transport(&HttpError::Malformed(
            "EOF inside a line".into()
        )));
        // A bound violation is not transient — the document will exceed
        // the bound again on every retry.
        assert!(!Client::idempotent_transport(&HttpError::TooLarge(
            "body over limit".into()
        )));
    }
}
