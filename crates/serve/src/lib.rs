//! # gdf-serve — the ATPG job server
//!
//! Turns the deterministic, artifact-backed engine of `gdf_core` into a
//! network **service**: a dependency-free HTTP/1.1 server on
//! [`std::net::TcpListener`] (crates.io is unreachable, so the HTTP
//! layer is hand-rolled just like `gdf_core::json`) in front of a
//! bounded, sharded job queue and a fixed worker pool.
//!
//! * [`server::JobServer`] — listener + router + workers + crash
//!   recovery; see the module docs for the endpoint table.
//! * [`client::Client`] — the matching HTTP client (`gdf submit` /
//!   `status` / `fetch` speak through it).
//! * [`queue::ShardedQueue`], [`events::EventLog`], [`job`] — the
//!   scheduler's parts, each independently tested.
//!
//! The service inherits — and is tested to preserve — the workspace's
//! two core invariants:
//!
//! 1. **Determinism over the wire**: same submission (circuit, config,
//!    seed) ⇒ byte-identical canonical artifact, regardless of how many
//!    concurrent clients, workers, or restarts are involved.
//! 2. **Crash recovery**: every job checkpoints through
//!    [`gdf_core::session::Checkpointer`]; a killed-and-restarted server
//!    resumes every in-flight job to results byte-identical to an
//!    uninterrupted run.
//!
//! ```no_run
//! use gdf_serve::{Client, JobServer, ServeConfig};
//! use gdf_core::engine::{Backend, RunConfig};
//! use gdf_serve::server::submission_for_suite;
//! use std::time::Duration;
//!
//! let server = JobServer::start(ServeConfig::new("127.0.0.1:0", "/tmp/gdf-jobs"))?;
//! let client = Client::new(server.local_addr().to_string());
//! let body = submission_for_suite("suite:s27", &RunConfig::new(Backend::NonScan));
//! let id = client.submit(&body)?;
//! let done = client.wait(id, Duration::from_millis(50), None)?;
//! println!("{done}");
//! println!("{}", client.artifact(id)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;

pub mod client;
pub mod events;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;

pub use client::Client;
pub use events::EventLog;
pub use http::HttpError;
pub use job::{Job, JobId, JobSpec, JobState, JobStatus, ReportSummary, ShardSpec};
pub use queue::{FairQueue, JobQueue, PushError, QueueFull, ShardedQueue};
pub use server::{
    decode_submission, submission_for_bench, submission_for_suite, submission_with_runtime,
    submission_with_shard, JobServer, ServeConfig,
};

/// Errors of the serve layer (server start, client calls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Local I/O (bind, job directory, thread spawn).
    Io(String),
    /// Transport-level HTTP trouble.
    Http(HttpError),
    /// The server answered with an error status.
    Api {
        /// HTTP status code.
        status: u16,
        /// The server's `{"error": …}` message.
        message: String,
        /// The `Retry-After` header, in seconds, when the server sent
        /// one — a drain verdict on `503`, the wait hint on a tenant
        /// quota/rate `429`.
        retry_after: Option<u32>,
    },
    /// The peer spoke, but not the job API dialect.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "{m}"),
            ServeError::Http(e) => write!(f, "{e}"),
            ServeError::Api {
                status, message, ..
            } => write!(f, "server said {status}: {message}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
