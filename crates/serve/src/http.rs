//! Hand-rolled HTTP/1.1: request parsing, response writing, chunked
//! transfer encoding, and the client-side request/stream helpers.
//!
//! The build environment has no crates.io access, so — exactly like
//! `gdf_core::json` replaces serde — this module replaces hyper with the
//! small, strictly-bounded subset of HTTP/1.1 the job API needs:
//!
//! * requests with an optional `Content-Length` body (chunked *request*
//!   bodies are rejected as malformed — `400` from the server);
//! * responses with a `Content-Length` body, or `Transfer-Encoding:
//!   chunked` for the streaming `/events` endpoint;
//! * `Connection: close` on every exchange — one request per connection
//!   keeps the server loop trivial and is plenty for a job API whose
//!   requests are rare and heavy, not chatty.
//!
//! All parsing is bounded (line length, header count, body size) so a
//! hostile peer can neither balloon memory nor wedge a handler thread —
//! the request body is additionally parsed with
//! [`gdf_core::json::ParseLimits::network`] by the router.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Longest accepted request/status/header line, in bytes.
pub const MAX_LINE_BYTES: usize = 16 << 10;
/// Most headers accepted per message.
pub const MAX_HEADERS: usize = 64;
/// Default request-body cap (the router's JSON limits are tighter still).
pub const DEFAULT_BODY_LIMIT: usize = 8 << 20;

/// Transport / syntax errors of the HTTP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Socket trouble.
    Io(String),
    /// The peer sent something that is not bounded, well-formed HTTP.
    Malformed(String),
    /// A line, header block or body exceeded its bound.
    TooLarge(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(m) => write!(f, "http i/o: {m}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
            HttpError::TooLarge(m) => write!(f, "http message too large: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn io_err(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// One parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target, query string included, e.g. `/jobs/7/events`.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one `\n`-terminated line without the terminator (CR stripped),
/// erroring past `max` bytes instead of buffering without bound.
fn read_line_bounded<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(io_err)?;
        if buf.is_empty() {
            // EOF: a partial line is malformed, a clean EOF is None.
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Malformed("EOF inside a line".into()))
            };
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..pos]);
            reader.consume(pos + 1);
            break;
        }
        line.extend_from_slice(buf);
        let n = buf.len();
        reader.consume(n);
        if line.len() > max {
            return Err(HttpError::TooLarge(format!("line exceeds {max} bytes")));
        }
    }
    if line.len() > max {
        return Err(HttpError::TooLarge(format!("line exceeds {max} bytes")));
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in a header line".into()))
}

/// Parses the header block (after the start line) into lower-cased pairs.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(reader, MAX_LINE_BYTES)?
            .ok_or_else(|| HttpError::Malformed("EOF before the end of headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!(
                "header without `:`: `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Reads one request from the connection. `Ok(None)` means the peer
/// closed without sending anything (a clean keep-alive close).
pub fn read_request<R: BufRead>(
    reader: &mut R,
    body_limit: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(start) = read_line_bounded(reader, MAX_LINE_BYTES)? else {
        return Ok(None);
    };
    let mut parts = start.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!("bad request line `{start}`")));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad request line `{start}`")));
    }
    let headers = read_headers(reader)?;
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::Malformed(
                "chunked request bodies are not accepted".into(),
            ));
        }
    }
    if let Some(length) = request.header("content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{length}`")))?;
        if length > body_limit {
            return Err(HttpError::TooLarge(format!(
                "body of {length} bytes exceeds the {body_limit}-byte limit"
            )));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(io_err)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// The reason phrase for the status codes this API uses.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A complete (non-streaming) response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header (seconds) — set on `503`s that are
    /// deliberate (drain, capacity) rather than transient.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response (compact encoding plus a trailing newline).
    pub fn json(status: u16, value: &gdf_core::json::Json) -> Self {
        let mut body = value.to_string().into_bytes();
        body.push(b'\n');
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A pre-encoded JSON document (used for artifacts, which are
    /// encoded once and served verbatim so bytes stay comparable).
    pub fn json_bytes(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, message: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: message.into().into_bytes(),
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` hint (seconds).
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// An error response in the API's standard `{"error": …}` shape.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self::json(
            status,
            &gdf_core::json::Json::Obj(vec![(
                "error".into(),
                gdf_core::json::Json::Str(message.into()),
            )]),
        )
    }

    /// Writes the full response with `Content-Length` and
    /// `Connection: close`.
    pub fn write(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(stream, "Retry-After: {seconds}\r\n")?;
        }
        stream.write_all(b"\r\n")?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Writer half of a `Transfer-Encoding: chunked` response — the
/// transport of `GET /jobs/<id>/events`. Every [`ChunkedWriter::chunk`]
/// is flushed immediately so subscribers see events as they happen.
pub struct ChunkedWriter<W: Write> {
    inner: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the status line and headers, switching the connection to
    /// chunked streaming.
    pub fn start(mut inner: W, status: u16, content_type: &str) -> std::io::Result<Self> {
        write!(
            inner,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            status_reason(status),
            content_type
        )?;
        inner.flush()?;
        Ok(ChunkedWriter { inner })
    }

    /// Sends one chunk (empty data is skipped — an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", data.len())?;
        self.inner.write_all(data)?;
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// A parsed response status + headers + complete body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Lower-cased header pairs.
    pub headers: Vec<(String, String)>,
    /// The complete (de-chunked if necessary) body.
    pub body: Vec<u8>,
}

fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, HttpError> {
    let mut last = HttpError::Io(format!("`{addr}` did not resolve"));
    for resolved in addr
        .to_socket_addrs()
        .map_err(|e| HttpError::Io(format!("resolve `{addr}`: {e}")))?
    {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
                stream.set_write_timeout(Some(timeout)).map_err(io_err)?;
                return Ok(stream);
            }
            Err(e) => last = HttpError::Io(format!("connect {resolved}: {e}")),
        }
    }
    Err(last)
}

fn write_request_head(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    addr: &str,
    body_len: usize,
    extra_headers: &[(&str, &str)],
) -> Result<(), HttpError> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: application/json\r\n\
         Content-Length: {body_len}\r\nConnection: close\r\n"
    )
    .map_err(io_err)?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n").map_err(io_err)?;
    }
    write!(stream, "\r\n").map_err(io_err)
}

fn read_status_line<R: BufRead>(reader: &mut R) -> Result<u16, HttpError> {
    let line = read_line_bounded(reader, MAX_LINE_BYTES)?
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let mut parts = line.split(' ');
    match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad status line `{line}`"))),
        _ => Err(HttpError::Malformed(format!("bad status line `{line}`"))),
    }
}

/// Reads one chunk-size line + payload; `Ok(None)` on the final chunk.
fn read_chunk<R: BufRead>(reader: &mut R, limit: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let line = read_line_bounded(reader, MAX_LINE_BYTES)?
        .ok_or_else(|| HttpError::Malformed("EOF inside chunked body".into()))?;
    let size_text = line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_text, 16)
        .map_err(|_| HttpError::Malformed(format!("bad chunk size `{line}`")))?;
    if size > limit {
        return Err(HttpError::TooLarge(format!("chunk of {size} bytes")));
    }
    let mut data = vec![0u8; size + 2]; // payload + CRLF
    reader
        .read_exact(&mut data)
        .map_err(|e| HttpError::Io(format!("chunk body: {e}")))?;
    if &data[size..] != b"\r\n" {
        return Err(HttpError::Malformed("chunk not CRLF-terminated".into()));
    }
    data.truncate(size);
    if size == 0 {
        return Ok(None);
    }
    Ok(Some(data))
}

/// One complete client exchange: connect, send, read the whole response
/// (following chunked encoding if the server used it).
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<ClientResponse, HttpError> {
    client_request_with_headers(addr, method, path, body, timeout, &[])
}

/// [`client_request`] with extra request headers (e.g. `X-Gdf-Trace`
/// for cross-node trace propagation).
pub fn client_request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    extra_headers: &[(&str, &str)],
) -> Result<ClientResponse, HttpError> {
    let stream = connect(addr, timeout)?;
    let mut writer = stream.try_clone().map_err(io_err)?;
    let body_bytes = body.map(str::as_bytes).unwrap_or_default();
    write_request_head(
        &mut writer,
        method,
        path,
        addr,
        body_bytes.len(),
        extra_headers,
    )?;
    writer.write_all(body_bytes).map_err(io_err)?;
    writer.flush().map_err(io_err)?;

    let mut reader = BufReader::new(stream);
    let status = read_status_line(&mut reader)?;
    let headers = read_headers(&mut reader)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        while let Some(chunk) = read_chunk(&mut reader, DEFAULT_BODY_LIMIT)? {
            if body.len() + chunk.len() > DEFAULT_BODY_LIMIT {
                return Err(HttpError::TooLarge("chunked response too large".into()));
            }
            body.extend_from_slice(&chunk);
        }
    } else if let Some((_, length)) = headers.iter().find(|(k, _)| k == "content-length") {
        let length: usize = length
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad content-length `{length}`")))?;
        if length > DEFAULT_BODY_LIMIT {
            return Err(HttpError::TooLarge(format!("response of {length} bytes")));
        }
        body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(io_err)?;
    } else {
        reader
            .take(DEFAULT_BODY_LIMIT as u64 + 1)
            .read_to_end(&mut body)
            .map_err(io_err)?;
        if body.len() > DEFAULT_BODY_LIMIT {
            return Err(HttpError::TooLarge("response too large".into()));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// A streaming GET: each decoded chunk is handed to `on_chunk` as it
/// arrives; returning `false` stops reading early.
///
/// Returns the status plus, for a *non-chunked* response (the server's
/// error replies come with `Content-Length`), the complete body — which
/// is then **not** passed through `on_chunk`, so stream consumers never
/// mistake an error document for stream data.
///
/// `idle_timeout` bounds how long a *silent* stream is awaited — each
/// received chunk resets the clock.
pub fn client_stream(
    addr: &str,
    path: &str,
    idle_timeout: Duration,
    mut on_chunk: impl FnMut(&[u8]) -> bool,
) -> Result<(u16, Vec<u8>), HttpError> {
    let stream = connect(addr, idle_timeout)?;
    let mut writer = stream.try_clone().map_err(io_err)?;
    write_request_head(&mut writer, "GET", path, addr, 0, &[])?;
    writer.flush().map_err(io_err)?;

    let mut reader = BufReader::new(stream);
    let status = read_status_line(&mut reader)?;
    let headers = read_headers(&mut reader)?;
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if !chunked {
        let mut body = Vec::new();
        reader
            .take(DEFAULT_BODY_LIMIT as u64)
            .read_to_end(&mut body)
            .map_err(io_err)?;
        return Ok((status, body));
    }
    while let Some(chunk) = read_chunk(&mut reader, DEFAULT_BODY_LIMIT)? {
        if !on_chunk(&chunk) {
            break;
        }
    }
    Ok((status, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes()), DEFAULT_BODY_LIMIT)
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn clean_close_is_none_and_garbage_errors() {
        assert!(parse("").unwrap().is_none());
        assert!(parse("GETOUT\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/9\r\n\r\n").is_err());
        // Truncated body: Content-Length promises more than arrives.
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nab").is_err());
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert!(matches!(parse(&long_line), Err(HttpError::TooLarge(_))));

        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 2) {
            many_headers.push_str(&format!("h{i}: v\r\n"));
        }
        many_headers.push_str("\r\n");
        assert!(matches!(parse(&many_headers), Err(HttpError::TooLarge(_))));

        let big_body = "POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(big_body.as_bytes()), 1024),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn chunked_request_bodies_are_refused() {
        assert!(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
    }

    #[test]
    fn response_and_chunk_writers_emit_valid_http() {
        let mut out = Vec::new();
        Response::text(200, "hello").write(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5"));
        assert!(text.ends_with("hello"));

        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "application/json").unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, must not terminate the stream
        w.chunk(b"xy").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("2\r\nxy\r\n0\r\n\r\n"));
    }

    #[test]
    fn chunk_reader_round_trips() {
        let wire = b"3\r\nabc\r\n1\r\nz\r\n0\r\n\r\n";
        let mut reader = Cursor::new(&wire[..]);
        assert_eq!(read_chunk(&mut reader, 1024).unwrap().unwrap(), b"abc");
        assert_eq!(read_chunk(&mut reader, 1024).unwrap().unwrap(), b"z");
        assert!(read_chunk(&mut reader, 1024).unwrap().is_none());
    }
}
