//! Per-job progress fan-out: an append-only event log with blocking
//! subscribers.
//!
//! The worker running a job appends [`ProgressEvent`]s as the engine
//! streams them; any number of `/events` subscribers replay the log from
//! the beginning and then block for more, so a subscriber that connects
//! mid-run still sees the full history of the current server process.
//! Closing the log (job reached a terminal state, or the server is
//! stopping) wakes every subscriber so streams terminate cleanly.

use gdf_core::session::ProgressEvent;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct LogState {
    events: Vec<ProgressEvent>,
    /// Absolute position of `events[0]` — nonzero once the head of a
    /// finished job's log has been compacted away.
    base: usize,
    closed: bool,
}

/// See the [module docs](self).
pub struct EventLog {
    state: Mutex<LogState>,
    grew: Condvar,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> Self {
        EventLog {
            state: Mutex::new(LogState {
                events: Vec::new(),
                base: 0,
                closed: false,
            }),
            grew: Condvar::new(),
        }
    }

    /// Appends one event and wakes subscribers. Ignored after close.
    pub fn push(&self, event: ProgressEvent) {
        let mut state = self.state.lock().expect("event log poisoned");
        if state.closed {
            return;
        }
        state.events.push(event);
        drop(state);
        self.grew.notify_all();
    }

    /// Marks the log complete and wakes subscribers.
    pub fn close(&self) {
        self.state.lock().expect("event log poisoned").closed = true;
        self.grew.notify_all();
    }

    /// `true` once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("event log poisoned").closed
    }

    /// Number of events logged so far (compacted ones included).
    pub fn len(&self) -> usize {
        let state = self.state.lock().expect("event log poisoned");
        state.base + state.events.len()
    }

    /// `true` while nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all but the last `keep_last` events (the head of the
    /// replay), so finished jobs do not pin their whole per-fault
    /// history in memory for the server's lifetime. Subscribers whose
    /// cursor points into the dropped head skip forward to the retained
    /// tail (see [`EventLog::wait_from`]).
    pub fn compact(&self, keep_last: usize) {
        let mut state = self.state.lock().expect("event log poisoned");
        if state.events.len() > keep_last {
            let dropped = state.events.len() - keep_last;
            state.events.drain(..dropped);
            state.base += dropped;
        }
    }

    /// Returns the events past the absolute position `from` (clone), the
    /// caller's next cursor, and the closed flag — blocking up to
    /// `timeout` when the log has no news yet. An empty batch with
    /// `closed == true` means the stream is over; an empty batch with
    /// `closed == false` means the wait timed out. A `from` inside a
    /// compacted head resumes at the oldest retained event.
    pub fn wait_from(&self, from: usize, timeout: Duration) -> (Vec<ProgressEvent>, usize, bool) {
        let mut state = self.state.lock().expect("event log poisoned");
        if state.base + state.events.len() <= from && !state.closed {
            let (next, _timeout) = self
                .grew
                .wait_timeout(state, timeout)
                .expect("event log poisoned");
            state = next;
        }
        let start = from.max(state.base) - state.base;
        let batch = state.events.get(start..).unwrap_or_default().to_vec();
        (batch, state.base + state.events.len(), state.closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn progress(decided: usize) -> ProgressEvent {
        ProgressEvent::Progress { decided, total: 10 }
    }

    #[test]
    fn replays_then_blocks_then_closes() {
        let log = Arc::new(EventLog::new());
        log.push(progress(1));
        log.push(progress(2));
        let (batch, next, closed) = log.wait_from(0, Duration::from_millis(1));
        assert_eq!(batch.len(), 2);
        assert_eq!(next, 2);
        assert!(!closed);

        // A subscriber waiting past the end is woken by a push...
        let log2 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || log2.wait_from(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        log.push(progress(3));
        let (batch, next, closed) = waiter.join().unwrap();
        assert_eq!(batch, vec![progress(3)]);
        assert_eq!(next, 3);
        assert!(!closed);

        // ...and by a close.
        let log3 = Arc::clone(&log);
        let waiter = std::thread::spawn(move || log3.wait_from(3, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        log.close();
        let (batch, _next, closed) = waiter.join().unwrap();
        assert!(batch.is_empty());
        assert!(closed);
        // Pushes after close are dropped.
        log.push(progress(9));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn compaction_keeps_the_tail_and_skips_stale_cursors() {
        let log = EventLog::new();
        for i in 0..10 {
            log.push(progress(i));
        }
        log.close();
        log.compact(3);
        assert_eq!(log.len(), 10, "absolute length is preserved");
        // A fresh subscriber (cursor 0) lands on the retained tail.
        let (batch, next, closed) = log.wait_from(0, Duration::from_millis(1));
        assert_eq!(batch, vec![progress(7), progress(8), progress(9)]);
        assert_eq!(next, 10);
        assert!(closed);
        // A cursor already past the tail sees a clean end of stream.
        let (batch, next, closed) = log.wait_from(10, Duration::from_millis(1));
        assert!(batch.is_empty());
        assert_eq!(next, 10);
        assert!(closed);
        // Compacting to a larger size is a no-op.
        log.compact(100);
        assert_eq!(log.len(), 10);
    }
}
