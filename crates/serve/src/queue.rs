//! The bounded, sharded job queue feeding the worker pool.
//!
//! One shard per worker: a job's home shard is `id % shards`, so a
//! stream of submissions spreads across the pool without a single hot
//! mutex, and each worker waits on *its own* shard's condvar. Capacity
//! is bounded per shard; a full home shard spills to the next one, and
//! only when every shard is full does [`ShardedQueue::push`] refuse —
//! the server surfaces that as `503 Service Unavailable` instead of
//! buffering without bound.
//!
//! Workers [`ShardedQueue::pop`] their own shard first and *steal* from
//! the others when idle, so one deep shard cannot strand work while
//! other workers sit idle. Waits are short-timeout so shutdown flags are
//! observed promptly.
//!
//! With a tenant registry configured, the server swaps the sharded FIFO
//! for a [`FairQueue`]: the same bounded/blocking surface, but dispatch
//! order comes from [`gdf_tenant::FairScheduler`] — weighted deficit
//! round-robin across tenant lanes within priority bands — so one
//! tenant's burst queues behind its own lane. [`JobQueue`] is the
//! either-or front the server holds; open mode keeps the exact
//! pre-tenancy code path.

use gdf_tenant::{EnqueueError, FairScheduler, LaneConfig, TenantRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Returned by [`ShardedQueue::push`] when every shard is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Shard {
    jobs: Mutex<VecDeque<u64>>,
    available: Condvar,
}

/// See the [module docs](self).
pub struct ShardedQueue {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    closed: AtomicBool,
}

impl ShardedQueue {
    /// `shards` parallel lanes (clamped to ≥ 1) of `capacity_per_shard`
    /// slots each (clamped to ≥ 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardedQueue {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    jobs: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards (== worker-pool size).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.jobs.lock().expect("queue poisoned").len())
            .sum()
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues on the job's home shard, spilling forward to the first
    /// shard with room; [`QueueFull`] when every shard is at capacity.
    pub fn push(&self, id: u64) -> Result<(), QueueFull> {
        let n = self.shards.len();
        let home = (id % n as u64) as usize;
        for probe in 0..n {
            let shard = &self.shards[(home + probe) % n];
            let mut jobs = shard.jobs.lock().expect("queue poisoned");
            if jobs.len() < self.capacity_per_shard {
                jobs.push_back(id);
                drop(jobs);
                shard.available.notify_one();
                return Ok(());
            }
        }
        Err(QueueFull)
    }

    fn try_pop(&self, worker: usize) -> Option<u64> {
        let n = self.shards.len();
        for probe in 0..n {
            let shard = &self.shards[(worker + probe) % n];
            if let Some(id) = shard.jobs.lock().expect("queue poisoned").pop_front() {
                return Some(id);
            }
        }
        None
    }

    /// Dequeues for `worker`: its own shard first, then work-stealing
    /// from the others; blocks on the worker's shard for at most
    /// `timeout` when everything is empty. `None` on timeout or when the
    /// queue is closed and drained.
    pub fn pop(&self, worker: usize, timeout: Duration) -> Option<u64> {
        if let Some(id) = self.try_pop(worker) {
            return Some(id);
        }
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let shard = &self.shards[worker % self.shards.len()];
        let mut jobs = shard.jobs.lock().expect("queue poisoned");
        // Re-check under the lock: a push (and its notify) may have
        // landed between the lockless scan above and here; waiting first
        // would consume that wakeup and sleep the full timeout.
        if let Some(id) = jobs.pop_front() {
            return Some(id);
        }
        let (mut jobs, _timeout) = shard
            .available
            .wait_timeout(jobs, timeout)
            .expect("queue poisoned");
        jobs.pop_front().or_else(|| {
            drop(jobs);
            self.try_pop(worker)
        })
    }

    /// Removes a queued job (used when a queued job is cancelled before
    /// a worker picks it up). `true` if it was found and removed.
    pub fn remove(&self, id: u64) -> bool {
        for shard in &self.shards {
            let mut jobs = shard.jobs.lock().expect("queue poisoned");
            if let Some(pos) = jobs.iter().position(|&j| j == id) {
                jobs.remove(pos);
                return true;
            }
        }
        false
    }

    /// Marks the queue closed and wakes every waiting worker.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }

    /// `true` once [`ShardedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// Returned by [`JobQueue::push`] when a job cannot be queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Global capacity exhausted — the server is saturated (`503`).
    Full,
    /// The tenant's `max_queued` quota is exhausted (`429`).
    OverQuota,
}

/// The tenant-fair queue: [`FairScheduler`] behind one mutex and one
/// condvar, presenting the same bounded/blocking surface as
/// [`ShardedQueue`]. Scheduling decisions need global (all-lane) state,
/// so there is nothing to shard — the mutex guards pure bookkeeping and
/// is never held across a job run.
pub struct FairQueue {
    sched: Mutex<FairScheduler>,
    available: Condvar,
    closed: AtomicBool,
    workers: usize,
}

impl FairQueue {
    /// A queue dispatching to `workers` workers, bounding total queued
    /// jobs at `capacity`, with one configured lane per registry tenant
    /// (unknown tenants get a default lane on first enqueue).
    pub fn new(workers: usize, capacity: usize, registry: &TenantRegistry) -> Self {
        let mut sched = FairScheduler::new(capacity.max(1));
        for tenant in &registry.tenants {
            sched.configure(&tenant.id, LaneConfig::from(tenant));
        }
        FairQueue {
            sched: Mutex::new(sched),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            workers: workers.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FairScheduler> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues on the tenant's lane (`None` = the ownerless lane).
    pub fn push(&self, tenant: Option<&str>, id: u64) -> Result<(), PushError> {
        let result = self.lock().enqueue(tenant.unwrap_or(""), id);
        match result {
            Ok(()) => {
                self.available.notify_one();
                Ok(())
            }
            Err(EnqueueError::Saturated) => Err(PushError::Full),
            Err(EnqueueError::OverQuota) => Err(PushError::OverQuota),
        }
    }

    /// Dispatches the next job per the fair schedule, blocking up to
    /// `timeout` when nothing is eligible. `None` on timeout or when
    /// closed and drained.
    pub fn pop(&self, timeout: Duration) -> Option<u64> {
        let mut sched = self.lock();
        if let Some((_, id)) = sched.dispatch() {
            return Some(id);
        }
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let (mut sched, _timeout) = self
            .available
            .wait_timeout(sched, timeout)
            .unwrap_or_else(|e| e.into_inner());
        sched.dispatch().map(|(_, id)| id)
    }

    /// Records a dispatched job finishing, re-opening its lane if it
    /// was at `max_running` — and waking a worker to check.
    pub fn finish(&self, tenant: Option<&str>) {
        self.lock().finish(tenant.unwrap_or(""));
        self.available.notify_one();
    }

    /// Removes a queued job; `true` if found.
    pub fn remove(&self, id: u64) -> bool {
        self.lock().remove(id)
    }

    /// Total queued jobs.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks the queue closed and wakes every waiting worker.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.available.notify_all();
    }

    /// `true` once [`FairQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// `(tenant, queued, running)` per lane, for `/metrics`.
    pub fn snapshot(&self) -> Vec<(String, usize, usize)> {
        self.lock().snapshot()
    }
}

/// The queue the server actually holds: the pre-tenancy sharded FIFO in
/// open mode, the fair scheduler when a tenant registry is configured.
pub enum JobQueue {
    /// No registry: exact pre-tenancy behavior.
    Open(ShardedQueue),
    /// Registry configured: tenant-fair dispatch.
    Fair(FairQueue),
}

impl JobQueue {
    /// Worker-pool size the queue was built for.
    pub fn shards(&self) -> usize {
        match self {
            JobQueue::Open(q) => q.shards(),
            JobQueue::Fair(q) => q.workers,
        }
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        match self {
            JobQueue::Open(q) => q.len(),
            JobQueue::Fair(q) => q.len(),
        }
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job. The tenant tag is ignored in open mode.
    pub fn push(&self, tenant: Option<&str>, id: u64) -> Result<(), PushError> {
        match self {
            JobQueue::Open(q) => q.push(id).map_err(|QueueFull| PushError::Full),
            JobQueue::Fair(q) => q.push(tenant, id),
        }
    }

    /// Dequeues for `worker`, blocking up to `timeout`.
    pub fn pop(&self, worker: usize, timeout: Duration) -> Option<u64> {
        match self {
            JobQueue::Open(q) => q.pop(worker, timeout),
            JobQueue::Fair(q) => q.pop(timeout),
        }
    }

    /// Records a dispatched job finishing (no-op in open mode, where
    /// nothing gates on running counts).
    pub fn finish(&self, tenant: Option<&str>) {
        if let JobQueue::Fair(q) = self {
            q.finish(tenant);
        }
    }

    /// Removes a queued job; `true` if found.
    pub fn remove(&self, id: u64) -> bool {
        match self {
            JobQueue::Open(q) => q.remove(id),
            JobQueue::Fair(q) => q.remove(id),
        }
    }

    /// Closes the queue and wakes all workers.
    pub fn close(&self) {
        match self {
            JobQueue::Open(q) => q.close(),
            JobQueue::Fair(q) => q.close(),
        }
    }

    /// `true` once closed.
    pub fn is_closed(&self) -> bool {
        match self {
            JobQueue::Open(q) => q.is_closed(),
            JobQueue::Fair(q) => q.is_closed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_and_fifo_pop() {
        let q = ShardedQueue::new(2, 2);
        for id in 0..4 {
            q.push(id).unwrap();
        }
        assert_eq!(q.push(99), Err(QueueFull));
        assert_eq!(q.len(), 4);
        // Worker 0 drains its own shard (even ids) before stealing.
        assert_eq!(q.pop(0, Duration::from_millis(1)), Some(0));
        assert_eq!(q.pop(0, Duration::from_millis(1)), Some(2));
        let stolen: Vec<_> = (0..2)
            .map(|_| q.pop(0, Duration::from_millis(1)).unwrap())
            .collect();
        assert_eq!(stolen, vec![1, 3]);
        assert_eq!(q.pop(0, Duration::from_millis(1)), None);
    }

    #[test]
    fn full_home_shard_spills_to_a_free_one() {
        let q = ShardedQueue::new(2, 1);
        q.push(0).unwrap(); // home shard 0
        q.push(2).unwrap(); // home shard 0 full -> spills to shard 1
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(1, Duration::from_millis(1)), Some(2));
    }

    #[test]
    fn remove_and_close() {
        let q = ShardedQueue::new(3, 4);
        q.push(7).unwrap();
        assert!(q.remove(7));
        assert!(!q.remove(7));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.pop(0, Duration::from_millis(1)), None);
    }

    #[test]
    fn wakes_a_waiting_worker() {
        let q = Arc::new(ShardedQueue::new(1, 8));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn spill_walks_shards_in_order_and_pops_preserve_it() {
        // Three capacity-1 shards, all pushes homed on shard 0: the
        // spill probe must place them 0 -> 1 -> 2, and a worker draining
        // from shard 0 must see exactly that order (own shard, then
        // steals in probe order).
        let q = ShardedQueue::new(3, 1);
        q.push(0).unwrap(); // shard 0
        q.push(3).unwrap(); // home 0 full -> shard 1
        q.push(6).unwrap(); // shards 0,1 full -> shard 2
        assert_eq!(q.push(9), Err(QueueFull));
        let order: Vec<_> = (0..3)
            .map(|_| q.pop(0, Duration::from_millis(1)).unwrap())
            .collect();
        assert_eq!(order, vec![0, 3, 6]);
    }

    #[test]
    fn steal_skips_empty_shards() {
        // Worker 1's own shard is empty; its pops must walk past it and
        // steal everything homed on shard 0, then time out cleanly.
        let q = ShardedQueue::new(2, 4);
        q.push(0).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(1, Duration::from_millis(1)), Some(0));
        assert_eq!(q.pop(1, Duration::from_millis(1)), Some(2));
        assert_eq!(q.pop(1, Duration::from_millis(1)), None);
    }

    #[test]
    fn capacity_one_queue_round_trips() {
        // The smallest legal queue: one shard, one slot. Push/pop must
        // cycle indefinitely, and the full case must report QueueFull
        // (not wedge or overwrite).
        let q = ShardedQueue::new(1, 1);
        for round in 0..3u64 {
            q.push(round).unwrap();
            assert_eq!(q.push(100 + round), Err(QueueFull));
            assert_eq!(q.pop(0, Duration::from_millis(1)), Some(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn zero_sized_parameters_are_clamped_to_one() {
        let q = ShardedQueue::new(0, 0);
        assert_eq!(q.shards(), 1);
        q.push(5).unwrap();
        assert_eq!(q.push(6), Err(QueueFull), "capacity clamps to 1");
        assert_eq!(q.pop(0, Duration::from_millis(1)), Some(5));
    }

    mod fair {
        use super::super::*;
        use gdf_tenant::TenantSpec;
        use std::sync::Arc;

        fn registry() -> TenantRegistry {
            TenantRegistry::new(vec![
                TenantSpec::new("acme", "t-a")
                    .with_weight(2)
                    .with_max_queued(8),
                TenantSpec::new("zeta", "t-z").with_max_queued(2),
            ])
            .unwrap()
        }

        #[test]
        fn fair_queue_dispatches_by_weight() {
            let q = FairQueue::new(1, 64, &registry());
            for j in 0..6u64 {
                q.push(Some("acme"), j).unwrap();
                q.push(Some("zeta"), 10 + j).unwrap();
            }
            // acme (weight 2) gets two dispatches per zeta's one.
            let order: Vec<u64> = (0..6)
                .map(|_| q.pop(Duration::from_millis(1)).unwrap())
                .collect();
            assert_eq!(order, vec![0, 1, 10, 2, 3, 11]);
        }

        #[test]
        fn fair_queue_separates_quota_from_saturation() {
            let q = FairQueue::new(1, 3, &registry());
            q.push(Some("zeta"), 1).unwrap();
            q.push(Some("zeta"), 2).unwrap();
            // zeta's max_queued=2 is its own problem...
            assert_eq!(q.push(Some("zeta"), 3), Err(PushError::OverQuota));
            q.push(Some("acme"), 4).unwrap();
            // ...while the global bound is everyone's.
            assert_eq!(q.push(Some("acme"), 5), Err(PushError::Full));
            assert_eq!(q.len(), 3);
            assert!(q.remove(2));
            q.push(Some("zeta"), 3).unwrap();
        }

        #[test]
        fn fair_queue_wakes_a_waiting_worker_and_closes() {
            let q = Arc::new(FairQueue::new(2, 16, &registry()));
            let q2 = Arc::clone(&q);
            let handle = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(20));
            q.push(None, 7).unwrap();
            assert_eq!(handle.join().unwrap(), Some(7));
            q.finish(None);
            q.close();
            assert!(q.is_closed());
            assert_eq!(q.pop(Duration::from_millis(1)), None);
        }

        #[test]
        fn job_queue_front_is_transparent_in_both_modes() {
            for queue in [
                JobQueue::Open(ShardedQueue::new(2, 4)),
                JobQueue::Fair(FairQueue::new(2, 8, &registry())),
            ] {
                queue.push(Some("acme"), 3).unwrap();
                assert_eq!(queue.len(), 1);
                assert_eq!(queue.pop(0, Duration::from_millis(1)), Some(3));
                queue.finish(Some("acme"));
                assert!(queue.is_empty());
            }
        }
    }
}
