//! The bounded, sharded job queue feeding the worker pool.
//!
//! One shard per worker: a job's home shard is `id % shards`, so a
//! stream of submissions spreads across the pool without a single hot
//! mutex, and each worker waits on *its own* shard's condvar. Capacity
//! is bounded per shard; a full home shard spills to the next one, and
//! only when every shard is full does [`ShardedQueue::push`] refuse —
//! the server surfaces that as `503 Service Unavailable` instead of
//! buffering without bound.
//!
//! Workers [`ShardedQueue::pop`] their own shard first and *steal* from
//! the others when idle, so one deep shard cannot strand work while
//! other workers sit idle. Waits are short-timeout so shutdown flags are
//! observed promptly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Returned by [`ShardedQueue::push`] when every shard is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Shard {
    jobs: Mutex<VecDeque<u64>>,
    available: Condvar,
}

/// See the [module docs](self).
pub struct ShardedQueue {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    closed: AtomicBool,
}

impl ShardedQueue {
    /// `shards` parallel lanes (clamped to ≥ 1) of `capacity_per_shard`
    /// slots each (clamped to ≥ 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        ShardedQueue {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    jobs: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of shards (== worker-pool size).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.jobs.lock().expect("queue poisoned").len())
            .sum()
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues on the job's home shard, spilling forward to the first
    /// shard with room; [`QueueFull`] when every shard is at capacity.
    pub fn push(&self, id: u64) -> Result<(), QueueFull> {
        let n = self.shards.len();
        let home = (id % n as u64) as usize;
        for probe in 0..n {
            let shard = &self.shards[(home + probe) % n];
            let mut jobs = shard.jobs.lock().expect("queue poisoned");
            if jobs.len() < self.capacity_per_shard {
                jobs.push_back(id);
                drop(jobs);
                shard.available.notify_one();
                return Ok(());
            }
        }
        Err(QueueFull)
    }

    fn try_pop(&self, worker: usize) -> Option<u64> {
        let n = self.shards.len();
        for probe in 0..n {
            let shard = &self.shards[(worker + probe) % n];
            if let Some(id) = shard.jobs.lock().expect("queue poisoned").pop_front() {
                return Some(id);
            }
        }
        None
    }

    /// Dequeues for `worker`: its own shard first, then work-stealing
    /// from the others; blocks on the worker's shard for at most
    /// `timeout` when everything is empty. `None` on timeout or when the
    /// queue is closed and drained.
    pub fn pop(&self, worker: usize, timeout: Duration) -> Option<u64> {
        if let Some(id) = self.try_pop(worker) {
            return Some(id);
        }
        if self.closed.load(Ordering::Acquire) {
            return None;
        }
        let shard = &self.shards[worker % self.shards.len()];
        let mut jobs = shard.jobs.lock().expect("queue poisoned");
        // Re-check under the lock: a push (and its notify) may have
        // landed between the lockless scan above and here; waiting first
        // would consume that wakeup and sleep the full timeout.
        if let Some(id) = jobs.pop_front() {
            return Some(id);
        }
        let (mut jobs, _timeout) = shard
            .available
            .wait_timeout(jobs, timeout)
            .expect("queue poisoned");
        jobs.pop_front().or_else(|| {
            drop(jobs);
            self.try_pop(worker)
        })
    }

    /// Removes a queued job (used when a queued job is cancelled before
    /// a worker picks it up). `true` if it was found and removed.
    pub fn remove(&self, id: u64) -> bool {
        for shard in &self.shards {
            let mut jobs = shard.jobs.lock().expect("queue poisoned");
            if let Some(pos) = jobs.iter().position(|&j| j == id) {
                jobs.remove(pos);
                return true;
            }
        }
        false
    }

    /// Marks the queue closed and wakes every waiting worker.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }

    /// `true` once [`ShardedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_and_fifo_pop() {
        let q = ShardedQueue::new(2, 2);
        for id in 0..4 {
            q.push(id).unwrap();
        }
        assert_eq!(q.push(99), Err(QueueFull));
        assert_eq!(q.len(), 4);
        // Worker 0 drains its own shard (even ids) before stealing.
        assert_eq!(q.pop(0, Duration::from_millis(1)), Some(0));
        assert_eq!(q.pop(0, Duration::from_millis(1)), Some(2));
        let stolen: Vec<_> = (0..2)
            .map(|_| q.pop(0, Duration::from_millis(1)).unwrap())
            .collect();
        assert_eq!(stolen, vec![1, 3]);
        assert_eq!(q.pop(0, Duration::from_millis(1)), None);
    }

    #[test]
    fn full_home_shard_spills_to_a_free_one() {
        let q = ShardedQueue::new(2, 1);
        q.push(0).unwrap(); // home shard 0
        q.push(2).unwrap(); // home shard 0 full -> spills to shard 1
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(1, Duration::from_millis(1)), Some(2));
    }

    #[test]
    fn remove_and_close() {
        let q = ShardedQueue::new(3, 4);
        q.push(7).unwrap();
        assert!(q.remove(7));
        assert!(!q.remove(7));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.pop(0, Duration::from_millis(1)), None);
    }

    #[test]
    fn wakes_a_waiting_worker() {
        let q = Arc::new(ShardedQueue::new(1, 8));
        let q2 = Arc::clone(&q);
        let handle = std::thread::spawn(move || q2.pop(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(handle.join().unwrap(), Some(42));
    }
}
