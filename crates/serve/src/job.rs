//! Job records: the submission spec, the state machine, and the
//! persistent `job.json` wire form that makes the server crash-safe.
//!
//! A job directory (`<dir>/job-<id>/`) holds two files:
//!
//! * `job.json` — this module's record: id, state, the full
//!   [`JobSpec`] (circuit provenance + [`RunConfig`] in the exact field
//!   layout run artifacts use), and the error message for failed jobs.
//!   Written atomically on every state transition.
//! * `run.json` — the engine's [`gdf_core::artifact::RunArtifact`]: a
//!   resumable checkpoint while the job runs (written by the
//!   [`gdf_core::session::Checkpointer`]), the complete artifact once it
//!   finishes.
//!
//! On restart the server replays the directory: terminal jobs are simply
//! listed again, queued/running jobs re-enter the queue and resume from
//! their checkpoint — the byte-identical-resume guarantee of the
//! artifact layer, extended over the server's lifetime.

use crate::events::EventLog;
use gdf_core::artifact::{
    decode_config, decode_config_v1, decode_coverage, encode_config, encode_coverage,
    ArtifactError, CircuitSource,
};
use gdf_core::engine::RunConfig;
use gdf_core::json::Json;
use gdf_core::Coverage;
use gdf_obs::TraceCtx;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;

/// Job identifier: dense, monotonically increasing per server directory.
pub type JobId = u64;

/// The job state machine. `Queued → Running → Done | Failed |
/// Cancelled`; a crash leaves `Queued`/`Running` on disk, which recovery
/// maps back to `Queued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the sharded queue.
    Queued,
    /// A worker is driving the engine.
    Running,
    /// Completed; the final artifact is on disk.
    Done,
    /// The engine or artifact layer errored; see the record's `error`.
    Failed,
    /// Cancelled by `DELETE /jobs/<id>`.
    Cancelled,
}

impl JobState {
    /// `true` for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// The stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`JobState::name`].
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a submission pins down. Two submissions with equal specs
/// produce byte-identical artifacts — `parallelism` is runtime-only and
/// does not change results (the engine's determinism invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Circuit provenance (suite reference or embedded `.bench` text).
    pub source: CircuitSource,
    /// The full run configuration (backend, model, universe, limits,
    /// seed) — artifact-layout fields.
    pub config: RunConfig,
    /// Generation workers inside this job's engine (results unchanged).
    pub parallelism: usize,
    /// Checkpoint cadence in decided faults.
    pub checkpoint_every: usize,
    /// `Some` turns the job into a *shard job*: target only fault
    /// universe indexes `[lo, hi)` and produce a
    /// [`gdf_core::ShardArtifact`] (pure generation outcomes, no credit
    /// pass, no RNG draws) instead of a full run artifact.
    pub shard: Option<ShardSpec>,
    /// The authenticated tenant that submitted this job, when the
    /// server runs with a tenant registry (`gdf serve --tenants`).
    /// Admission bookkeeping only — never part of the cache key or the
    /// artifact, so identical specs hit the result cache across
    /// tenants (the determinism invariant makes that exact).
    pub tenant: Option<String>,
}

/// The shard tag of a shard job: which universe range to cover, and the
/// coordinator-assigned provenance label (`fleet:<plan>/unit-<k>`) that
/// survives in `job.json` so an operator can trace a node's queue back
/// to the fleet plan that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// First universe index of the range (inclusive).
    pub lo: usize,
    /// One past the last universe index (exclusive).
    pub hi: usize,
    /// Free-form provenance label assigned by the submitter.
    pub tag: String,
}

impl ShardSpec {
    /// The wire object used by submissions and `job.json`.
    pub fn encode(&self) -> Json {
        Json::Obj(vec![
            ("lo".into(), Json::Num(self.lo as f64)),
            ("hi".into(), Json::Num(self.hi as f64)),
            ("tag".into(), Json::Str(self.tag.clone())),
        ])
    }

    /// Inverse of [`ShardSpec::encode`].
    pub fn decode(j: &Json) -> Result<Self, String> {
        let field = |name: &str| {
            j.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("shard needs a numeric `{name}`"))
        };
        let lo = field("lo")?;
        let hi = field("hi")?;
        if lo > hi {
            return Err(format!("shard range [{lo}‥{hi}) is inverted"));
        }
        Ok(ShardSpec {
            lo,
            hi,
            tag: j
                .get("tag")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

/// Aggregate counters mirrored from the final report into `job.json`,
/// so `GET /jobs/<id>` answers without re-reading the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSummary {
    /// Faults with a complete test.
    pub tested: u32,
    /// Faults proven untestable.
    pub untestable: u32,
    /// Faults abandoned at a limit.
    pub aborted: u32,
    /// Total applied vectors.
    pub patterns: u32,
    /// Emitted sequences.
    pub sequences: u32,
    /// First-class coverage accounting (version-1 records, which predate
    /// it, reconstruct the uncollapsed part from the counters above).
    pub coverage: Coverage,
}

impl From<&gdf_core::CircuitReport> for ReportSummary {
    fn from(report: &gdf_core::CircuitReport) -> Self {
        ReportSummary {
            tested: report.row.tested,
            untestable: report.row.untestable,
            aborted: report.row.aborted,
            patterns: report.row.patterns,
            sequences: report.sequences,
            coverage: report.coverage,
        }
    }
}

impl ReportSummary {
    /// The wire object shared by `job.json` and `GET /jobs/<id>`.
    pub fn encode(&self) -> Json {
        Json::Obj(vec![
            ("tested".into(), Json::Num(self.tested as f64)),
            ("untestable".into(), Json::Num(self.untestable as f64)),
            ("aborted".into(), Json::Num(self.aborted as f64)),
            ("patterns".into(), Json::Num(self.patterns as f64)),
            ("sequences".into(), Json::Num(self.sequences as f64)),
            ("coverage".into(), encode_coverage(&self.coverage)),
        ])
    }
}

/// The mutable face of a job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current state.
    pub state: JobState,
    /// Error message for failed jobs.
    pub error: Option<String>,
    /// Decided faults so far (live while running).
    pub decided: usize,
    /// Total faults of the run.
    pub total: usize,
    /// Final counters once done.
    pub report: Option<ReportSummary>,
    /// The trace context this job runs under: parsed from the
    /// submission's `X-Gdf-Trace` header, or digest-derived by the
    /// server. Persisted so a resumed job keeps its campaign
    /// correlation.
    pub trace: Option<TraceCtx>,
    /// Optional profiling summary (wall time, per-phase breakdown)
    /// attached when the job finishes with observability enabled.
    /// Strictly a side channel: never part of the canonical artifact.
    pub profile: Option<Json>,
}

/// One job as the server holds it: immutable spec, mutable status,
/// event fan-out, cooperative cancel flag.
pub struct Job {
    /// The id (also names the job directory).
    pub id: JobId,
    /// The submission.
    pub spec: JobSpec,
    /// Mutable status; lock order is status-then-nothing (never hold it
    /// across I/O).
    pub status: Mutex<JobStatus>,
    /// Progress fan-out for `/events` subscribers.
    pub events: EventLog,
    /// Set by `DELETE` (and by server shutdown) — the worker's observer
    /// polls it between faults.
    pub cancel: AtomicBool,
}

impl Job {
    /// A fresh queued job.
    pub fn new(id: JobId, spec: JobSpec) -> Self {
        Job {
            id,
            spec,
            status: Mutex::new(JobStatus {
                state: JobState::Queued,
                error: None,
                decided: 0,
                total: 0,
                report: None,
                trace: None,
                profile: None,
            }),
            events: EventLog::new(),
            cancel: AtomicBool::new(false),
        }
    }

    /// Snapshot of the mutable status.
    pub fn status(&self) -> JobStatus {
        self.status.lock().expect("job status poisoned").clone()
    }

    /// The job's directory under the server dir.
    pub fn dir(server_dir: &Path, id: JobId) -> PathBuf {
        server_dir.join(format!("job-{id}"))
    }

    /// Path of the persistent job record.
    pub fn record_path(server_dir: &Path, id: JobId) -> PathBuf {
        Self::dir(server_dir, id).join("job.json")
    }

    /// Path of the run artifact / checkpoint.
    pub fn artifact_path(server_dir: &Path, id: JobId) -> PathBuf {
        Self::dir(server_dir, id).join("run.json")
    }
}

// ---------------------------------------------------------------------
// job.json codec
// ---------------------------------------------------------------------

const JOB_FORMAT: &str = "gdf-job";
/// v3 (PR 6): optional `shard` tag for fleet shard jobs; later PRs add
/// further *optional* keys (`trace`/`profile`, `tenant`) that older v3
/// readers ignore and older records simply lack. v2 (PR 5):
/// config carries `model` + `sensitization`, report summaries carry
/// `coverage`. v1 records (PR 4 servers) still decode — the old `model`
/// field maps to the sensitization and the fault model defaults from
/// the backend, exactly like the artifact layer's v1 loader. v2 records
/// simply have no `shard` field, which reads as `None`.
const JOB_VERSION: u64 = 3;
const JOB_VERSION_MIN: u64 = 1;

fn schema(m: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(m.into())
}

/// Encodes a job record (`id`, `state`, `error`, spec fields, report
/// summary) as pretty JSON.
pub fn encode_record(id: JobId, spec: &JobSpec, status: &JobStatus) -> String {
    let mut fields = vec![
        ("format".into(), Json::Str(JOB_FORMAT.into())),
        ("version".into(), Json::Num(JOB_VERSION as f64)),
        ("id".into(), Json::Num(id as f64)),
        ("state".into(), Json::Str(status.state.name().into())),
        (
            "error".into(),
            match &status.error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
        ("parallelism".into(), Json::Num(spec.parallelism as f64)),
        (
            "checkpoint_every".into(),
            Json::Num(spec.checkpoint_every as f64),
        ),
    ];
    if let Some(shard) = &spec.shard {
        fields.push(("shard".into(), shard.encode()));
    }
    // Optional like the observability keys below: open-mode records
    // (and every pre-tenancy record) simply have no `tenant`.
    if let Some(tenant) = &spec.tenant {
        fields.push(("tenant".into(), Json::Str(tenant.clone())));
    }
    fields.extend(encode_config(&spec.config));
    fields.push(("circuit".into(), spec.source.encode()));
    fields.push((
        "report".into(),
        match &status.report {
            None => Json::Null,
            Some(r) => r.encode(),
        },
    ));
    // Observability side channel: optional keys, so v3 readers that
    // predate them keep decoding these records unchanged.
    if let Some(trace) = &status.trace {
        fields.push(("trace".into(), Json::Str(trace.header_value())));
    }
    if let Some(profile) = &status.profile {
        fields.push(("profile".into(), profile.clone()));
    }
    Json::Obj(fields).pretty()
}

/// Decodes a `job.json` record.
pub fn decode_record(text: &str) -> Result<(JobId, JobSpec, JobStatus), ArtifactError> {
    let j = Json::parse(text)?;
    if j.get("format").and_then(Json::as_str) != Some(JOB_FORMAT) {
        return Err(schema("not a gdf-job record"));
    }
    let version = j
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| schema("missing `version`"))?;
    if !(JOB_VERSION_MIN..=JOB_VERSION).contains(&version) {
        return Err(schema(format!(
            "unsupported job record version {version} (this build reads \
             v{JOB_VERSION_MIN} through v{JOB_VERSION})"
        )));
    }
    let id = j
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| schema("missing `id`"))?;
    let state = j
        .get("state")
        .and_then(Json::as_str)
        .and_then(JobState::parse)
        .ok_or_else(|| schema("missing or unknown `state`"))?;
    let error = j.get("error").and_then(Json::as_str).map(str::to_string);
    let spec = JobSpec {
        source: CircuitSource::decode(
            j.get("circuit")
                .ok_or_else(|| schema("missing `circuit`"))?,
        )?,
        config: if version == 1 {
            decode_config_v1(&j)?
        } else {
            decode_config(&j)?
        },
        parallelism: j
            .get("parallelism")
            .and_then(Json::as_usize)
            .unwrap_or(1)
            .max(1),
        checkpoint_every: j
            .get("checkpoint_every")
            .and_then(Json::as_usize)
            .unwrap_or(16)
            .max(1),
        shard: match j.get("shard") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ShardSpec::decode(s).map_err(schema)?),
        },
        tenant: j.get("tenant").and_then(Json::as_str).map(str::to_string),
    };
    let report = match j.get("report") {
        None | Some(Json::Null) => None,
        Some(r) => {
            let count = |name: &str| {
                r.get(name)
                    .and_then(Json::as_u64)
                    .map(|v| v as u32)
                    .ok_or_else(|| schema(format!("report missing `{name}`")))
            };
            let tested = count("tested")?;
            let untestable = count("untestable")?;
            let aborted = count("aborted")?;
            let coverage = match r.get("coverage") {
                // v1 summary: reconstruct the uncollapsed tally (the
                // hard/possible split and class counts were not
                // recorded).
                None | Some(Json::Null) => Coverage {
                    detected: tested,
                    possibly_detected: 0,
                    untestable,
                    aborted,
                    total: tested + untestable + aborted,
                    collapsed: None,
                },
                Some(c) => decode_coverage(c)?,
            };
            Some(ReportSummary {
                tested,
                untestable,
                aborted,
                patterns: count("patterns")?,
                sequences: count("sequences")?,
                coverage,
            })
        }
    };
    let trace = j
        .get("trace")
        .and_then(Json::as_str)
        .and_then(TraceCtx::parse);
    let profile = match j.get("profile") {
        None | Some(Json::Null) => None,
        Some(p) => Some(p.clone()),
    };
    let status = JobStatus {
        state,
        error,
        decided: 0,
        total: 0,
        report,
        trace,
        profile,
    };
    Ok((id, spec, status))
}

/// Atomic write (`path.tmp` + rename) through the core I/O facade, so
/// fault-injection harnesses see server-side persistence too.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), ArtifactError> {
    gdf_core::io::write_atomic(path, text)
        .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_core::engine::Backend;
    use gdf_netlist::suite;

    #[test]
    fn job_record_round_trips() {
        let circuit = suite::s27();
        let spec = JobSpec {
            source: CircuitSource::suite(&circuit, "s27"),
            config: RunConfig::new(Backend::StuckAt).with_seed(0xDEAD),
            parallelism: 3,
            checkpoint_every: 8,
            shard: None,
            tenant: Some("acme".into()),
        };
        let mut status = JobStatus {
            state: JobState::Failed,
            error: Some("engine exploded".into()),
            decided: 5,
            total: 9,
            report: Some(ReportSummary {
                tested: 1,
                untestable: 2,
                aborted: 3,
                patterns: 4,
                sequences: 5,
                coverage: Coverage {
                    detected: 1,
                    possibly_detected: 0,
                    untestable: 2,
                    aborted: 3,
                    total: 6,
                    collapsed: None,
                },
            }),
            trace: TraceCtx::parse("000000000000000000000000000000ab-00000000000000cd"),
            profile: Some(Json::Obj(vec![("wall_us".into(), Json::Num(7.0))])),
        };
        let text = encode_record(42, &spec, &status);
        let (id, spec2, status2) = decode_record(&text).unwrap();
        assert_eq!(id, 42);
        assert_eq!(spec2, spec);
        assert_eq!(spec2.tenant.as_deref(), Some("acme"));
        assert_eq!(status2.state, JobState::Failed);
        assert_eq!(status2.error.as_deref(), Some("engine exploded"));
        assert_eq!(status2.report, status.report);
        assert_eq!(status2.trace, status.trace);
        assert!(status2.trace.is_some());
        assert_eq!(
            status2
                .profile
                .as_ref()
                .and_then(|p| p.get("wall_us"))
                .and_then(Json::as_u64),
            Some(7)
        );

        status.error = None;
        status.report = None;
        status.state = JobState::Queued;
        let (_, _, status3) = decode_record(&encode_record(1, &spec, &status)).unwrap();
        assert_eq!(status3.state, JobState::Queued);
        assert!(status3.error.is_none() && status3.report.is_none());
    }

    #[test]
    fn shard_tag_round_trips() {
        let circuit = suite::s27();
        let spec = JobSpec {
            source: CircuitSource::suite(&circuit, "s27"),
            config: RunConfig::new(Backend::NonScan),
            parallelism: 1,
            checkpoint_every: 4,
            shard: Some(ShardSpec {
                lo: 3,
                hi: 11,
                tag: "fleet:plan-7/unit-2".into(),
            }),
            tenant: None,
        };
        let status = JobStatus {
            state: JobState::Queued,
            error: None,
            decided: 0,
            total: 0,
            report: None,
            trace: None,
            profile: None,
        };
        let (_, spec2, _) = decode_record(&encode_record(9, &spec, &status)).unwrap();
        assert_eq!(spec2, spec);
        assert_eq!(spec2.shard.as_ref().unwrap().tag, "fleet:plan-7/unit-2");

        // An inverted range is a schema error, not a silent zero-length
        // shard.
        assert!(ShardSpec::decode(&Json::parse(r#"{"lo": 5, "hi": 2}"#).unwrap()).is_err());
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(decode_record("{}").is_err());
        assert!(decode_record("[1,2]").is_err());
        assert!(decode_record("{\"format\":\"gdf-run\"}").is_err());
    }

    #[test]
    fn state_machine_names() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(state.name()), Some(state));
        }
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
    }
}
