//! The job server: TCP acceptor, router, worker pool, crash recovery.
//!
//! # API
//!
//! | Method & path            | Meaning                                              |
//! |--------------------------|------------------------------------------------------|
//! | `GET /healthz`           | liveness + pool counters                             |
//! | `GET /metrics`           | pool counters in Prometheus text format              |
//! | `POST /jobs`             | submit (suite ref or `.bench` text + config) → `201` |
//! | `GET /jobs`              | list job summaries                                   |
//! | `GET /jobs/<id>`         | status + progress + final report summary             |
//! | `GET /jobs/<id>/events`  | chunked NDJSON stream of progress events (full replay while the job runs; finished jobs retain the last `TERMINAL_EVENT_TAIL` events) |
//! | `GET /jobs/<id>/artifact`| the completed run artifact (canonical bytes)         |
//! | `GET /jobs/<id>/patterns`| the completed run's pattern set                      |
//! | `DELETE /jobs/<id>`      | cancel an active job / remove a terminal one         |
//!
//! A full queue answers `503`; malformed input `400`; over-limit input
//! `413`; a missing job `404`; an artifact requested before completion
//! `409`.
//!
//! # Multi-tenant admission control
//!
//! With a tenant registry ([`ServeConfig::with_tenants`], `gdf serve
//! --tenants FILE`) the job-mutating routes (`POST /jobs`,
//! `DELETE /jobs/<id>`) require `Authorization: Bearer <token>`: no
//! token is `401`, an unknown token `403`, another tenant's job `403`.
//! Read routes, `/healthz` and `/metrics` stay open (the fleet health
//! probe scrapes `/metrics` unauthenticated). A tenant over its own
//! quota — queued-job cap or request rate — gets `429 + Retry-After`,
//! *distinct* from the saturation `503`: `429` means "your quota, slow
//! down", `503` means "my capacity, try another node". Queued jobs
//! dispatch through a weighted deficit round-robin scheduler
//! ([`gdf_tenant::FairScheduler`]) within priority bands, with
//! deterministic tie-breaks. Without a registry nothing changes: the
//! server runs the exact pre-tenancy open path.
//!
//! # Determinism over the wire
//!
//! Jobs run through the same deterministic engine the CLI drives, so two
//! submissions with equal specs produce byte-identical artifacts no
//! matter how many clients, workers, or server restarts happen in
//! between. `GET /jobs/<id>/artifact` serves
//! [`RunArtifact::canonical_encode`] (wall-clock zeroed), the byte
//! -comparable form.
//!
//! # Crash recovery
//!
//! Every state transition persists `job.json`; the
//! [`Checkpointer`] persists `run.json` while a job runs. On start the
//! server replays the directory: terminal jobs are listed again,
//! queued/running jobs re-enter the queue and
//! [`gdf_core::engine::AtpgBuilder::resume_from`] continues them from
//! the checkpoint — byte-identical to never having been interrupted.
//! [`JobServer::kill`] stops the process's threads at the next fault
//! boundary *without* updating any disk state, simulating `kill -9` for
//! the restart tests.

use crate::http::{read_request, ChunkedWriter, HttpError, Request, Response};
use crate::job::{
    decode_record, encode_record, write_atomic, Job, JobId, JobSpec, JobState, ReportSummary,
    ShardSpec,
};
use crate::queue::{FairQueue, JobQueue, PushError, ShardedQueue};
use crate::ServeError;
use gdf_core::artifact::{encode_config, CircuitSource, PatternSet, RunArtifact};
use gdf_core::engine::{Atpg, AtpgBuilder, AtpgError, Backend, Limits, Observer, RunConfig};
use gdf_core::json::{Json, ParseLimits};
use gdf_core::session::{Checkpointer, EventObserver, ProgressEvent};
use gdf_core::ShardArtifact;
use gdf_netlist::{Circuit, FaultUniverse};
use gdf_obs::{
    capture_begin, capture_take, Counter, Gauge, Histogram, ProfileData, ProfileHandle, Profiler,
    Registry, TraceCtx, Tracer, PHASE_HELP, PHASE_METRIC, TRACE_HEADER,
};
use gdf_store::{CacheKey, Store};
use gdf_tenant::{TenantRegistry, TokenBucket};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker blocks on its shard before re-checking
/// shutdown and the other shards.
const WORKER_POLL: Duration = Duration::from_millis(50);
/// How long an `/events` subscriber blocks per wait round.
const EVENT_POLL: Duration = Duration::from_secs(2);
/// Concurrent connection-handler threads accepted before new peers get
/// an immediate `503` — the transport-level counterpart of the parser's
/// line/header/body bounds (one OS thread per connection must not be an
/// unbounded resource a hostile peer controls).
const MAX_CONNECTIONS: usize = 256;
/// Events a *finished* job keeps in memory for `/events` replay; the
/// full history lives only while the job runs (a long-lived server must
/// not pin every completed job's per-fault log forever — the artifact
/// is the durable record).
const TERMINAL_EVENT_TAIL: usize = 256;

/// Help text for the labeled HTTP request counter.
const HTTP_HELP: &str = "HTTP requests served, by method, route pattern, and status.";

/// Engine/job phases pre-registered at startup so the
/// `gdf_engine_phase_seconds` family renders (with zero counts) before
/// the first job runs — scrapers never see the family flicker in.
const PHASES: [&str; 9] = [
    "parse",
    "generate",
    "fill",
    "fsim",
    "credit",
    "checkpoint",
    "publish",
    "store_get",
    "store_publish",
];

/// Server construction parameters; see [`JobServer::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4817` (port `0` picks a free one).
    pub addr: String,
    /// The persistent job directory.
    pub dir: PathBuf,
    /// Worker threads (= queue shards), clamped to ≥ 1.
    pub workers: usize,
    /// Queued jobs accepted per shard before `503`, clamped to ≥ 1.
    pub queue_capacity: usize,
    /// Default checkpoint cadence for jobs that do not specify one.
    pub checkpoint_every: usize,
    /// Request-body byte limit.
    pub body_limit: usize,
    /// Observability: per-job traces under `<dir>/traces/`, per-phase
    /// engine histograms, and `profile` blocks on finished jobs. On by
    /// default; the benchmark harness turns it off to measure overhead.
    /// Never affects canonical artifacts either way.
    pub obs: bool,
    /// Multi-tenant admission control: `Some` puts every job-mutating
    /// route behind bearer-token auth, enforces per-tenant quotas and
    /// rate limits (`429 + Retry-After`), and dispatches through the
    /// weighted-fair scheduler. `None` (the default) is the open
    /// pre-tenancy server, byte-for-byte.
    pub tenants: Option<TenantRegistry>,
}

impl ServeConfig {
    /// Defaults: 4 workers, 64 queued jobs per shard, checkpoint every
    /// 16 outcomes, 8 MiB bodies.
    pub fn new(addr: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            dir: dir.into(),
            workers: 4,
            queue_capacity: 64,
            checkpoint_every: 16,
            body_limit: crate::http::DEFAULT_BODY_LIMIT,
            obs: true,
            tenants: None,
        }
    }

    /// Replaces the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the per-shard queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Replaces the default checkpoint cadence.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Enables or disables tracing + profiling (metrics stay on).
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Turns on multi-tenant admission control with this registry.
    pub fn with_tenants(mut self, registry: TenantRegistry) -> Self {
        self.tenants = Some(registry);
        self
    }
}

/// Pool counters behind `GET /metrics`, now held in the shared
/// [`Registry`]. Job latency is a log-bucketed histogram over the full
/// server history — exact nearest-rank quantiles at every scrape, no
/// sliding-window bias (the old ring buffer let a burst of fast jobs
/// evict the slow tail and understate p99).
struct Metrics {
    /// Jobs that reached `Done` in this process.
    completed: Counter,
    /// Jobs that reached `Failed` in this process.
    failed: Counter,
    /// Submissions answered straight from the result cache (these also
    /// count as completed, but contribute no latency sample — a cache
    /// hit measures the store, not the engine).
    cache_hits: Counter,
    /// Trace documents written under `<dir>/traces/`.
    traces_written: Counter,
    /// Workers currently inside `run_job`.
    busy: AtomicUsize,
    /// Completed-job wall time; rendered as the
    /// `gdf_job_latency_seconds` summary.
    latency: Arc<Histogram>,
    /// Gauge handles, registered up front in the exposition order the
    /// pre-obs server printed them, so migrating to the registry
    /// encoder does not reorder anyone's scrape.
    queue_depth: Gauge,
    jobs_running: Gauge,
    jobs_queued: Gauge,
    workers: Gauge,
    workers_busy: Gauge,
    worker_utilization: Gauge,
    draining: Gauge,
    store_bytes: Gauge,
    store_objects: Gauge,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        // Registration order is render order; keep the historical one.
        let queue_depth = registry.gauge("gdf_queue_depth", "Jobs waiting in the sharded queue.");
        let jobs_running = registry.gauge(
            "gdf_jobs_running",
            "Jobs currently being driven by a worker.",
        );
        let jobs_queued = registry.gauge(
            "gdf_jobs_queued",
            "Jobs in the queued state (including the recovery backlog).",
        );
        let workers = registry.gauge("gdf_workers", "Worker threads in the pool.");
        let workers_busy = registry.gauge("gdf_workers_busy", "Workers currently inside a job.");
        let worker_utilization = registry.gauge(
            "gdf_worker_utilization",
            "Busy workers as a fraction of the pool.",
        );
        let draining = registry.gauge(
            "gdf_draining",
            "1 while the server is draining (graceful shutdown in progress).",
        );
        let store_bytes = registry.gauge(
            "gdf_store_bytes",
            "Total object bytes in the content-addressed result store.",
        );
        let store_objects = registry.gauge(
            "gdf_store_objects",
            "Objects in the content-addressed result store.",
        );
        let completed = registry.counter(
            "gdf_jobs_completed_total",
            "Jobs that finished successfully.",
        );
        let failed = registry.counter("gdf_jobs_failed_total", "Jobs that finished in failure.");
        let cache_hits = registry.counter(
            "gdf_cache_hits_total",
            "Submissions answered from the exact result cache.",
        );
        let latency = registry.histogram(
            "gdf_job_latency_seconds",
            "Completed-job wall time (log-bucketed over the full server history).",
        );
        let traces_written = registry.counter(
            "gdf_traces_written_total",
            "Job trace documents written under the server's traces/ directory.",
        );
        Metrics {
            completed,
            failed,
            cache_hits,
            traces_written,
            busy: AtomicUsize::new(0),
            latency,
            queue_depth,
            jobs_running,
            jobs_queued,
            workers,
            workers_busy,
            worker_utilization,
            draining,
            store_bytes,
            store_objects,
        }
    }

    fn record_done(&self, elapsed: Duration) {
        self.completed.inc();
        self.latency.observe(elapsed);
    }
}

/// Admission-control state when a tenant registry is configured: the
/// registry, one request-rate bucket per rate-limited tenant, and the
/// per-tenant metric handles (pre-registered at startup so every
/// `gdf_tenant_*` family is present from the first scrape — tenants are
/// a fixed set, so no series appears mid-flight).
struct Tenancy {
    registry: TenantRegistry,
    /// Request-rate buckets keyed by tenant id; only tenants with a
    /// configured rate have one (no entry = unlimited).
    buckets: Mutex<BTreeMap<String, TokenBucket>>,
    admitted: BTreeMap<String, Counter>,
    rejected: BTreeMap<String, Counter>,
    queued: BTreeMap<String, Gauge>,
    running: BTreeMap<String, Gauge>,
}

impl Tenancy {
    fn new(registry: TenantRegistry, metrics: &Registry) -> Tenancy {
        let mut buckets = BTreeMap::new();
        let mut admitted = BTreeMap::new();
        let mut rejected = BTreeMap::new();
        let mut queued = BTreeMap::new();
        let mut running = BTreeMap::new();
        for tenant in &registry.tenants {
            let id = tenant.id.clone();
            let labels = &[("tenant", tenant.id.as_str())];
            admitted.insert(
                id.clone(),
                metrics.counter_with(
                    "gdf_tenant_admitted_total",
                    "Submissions admitted past tenant admission control.",
                    labels,
                ),
            );
            rejected.insert(
                id.clone(),
                metrics.counter_with(
                    "gdf_tenant_rejected_total",
                    "Submissions rejected by a tenant quota or rate limit (429s).",
                    labels,
                ),
            );
            queued.insert(
                id.clone(),
                metrics.gauge_with("gdf_tenant_queued", "Jobs queued, per tenant.", labels),
            );
            running.insert(
                id.clone(),
                metrics.gauge_with("gdf_tenant_running", "Jobs running, per tenant.", labels),
            );
            if let Some(rate) = tenant.rate_per_sec {
                buckets.insert(
                    id,
                    TokenBucket::new(rate, tenant.effective_burst(), Instant::now()),
                );
            }
        }
        Tenancy {
            registry,
            buckets: Mutex::new(buckets),
            admitted,
            rejected,
            queued,
            running,
        }
    }

    /// Takes one request-rate token for `tenant`; `Err(wait)` is the
    /// seconds until the next token when the tenant is over its rate.
    /// Tenants with no configured rate always pass.
    fn take_rate_token(&self, tenant: &str) -> Result<(), f64> {
        let mut buckets = self.buckets.lock().expect("rate buckets poisoned");
        match buckets.get_mut(tenant) {
            Some(bucket) => bucket.try_take(Instant::now()),
            None => Ok(()),
        }
    }

    fn record_admitted(&self, tenant: &str) {
        if let Some(c) = self.admitted.get(tenant) {
            c.inc();
        }
    }

    fn record_rejected(&self, tenant: &str) {
        if let Some(c) = self.rejected.get(tenant) {
            c.inc();
        }
    }
}

struct ServerState {
    dir: PathBuf,
    jobs: Mutex<BTreeMap<JobId, Arc<Job>>>,
    next_id: AtomicU64,
    queue: JobQueue,
    /// `Some` when a tenant registry is loaded; `None` is open mode.
    tenancy: Option<Tenancy>,
    /// Recovered in-flight jobs that did not fit the bounded queue at
    /// startup; idle workers drain this into the queue as slots free up
    /// (submissions never land here — a full queue answers `503`).
    backlog: Mutex<std::collections::VecDeque<JobId>>,
    default_checkpoint_every: usize,
    body_limit: usize,
    stopping: AtomicBool,
    /// Graceful-degradation flag: set by [`JobServer::drain`]. A
    /// draining server answers submissions `503 + Retry-After`, stops
    /// jobs at their next fault boundary (leaving resumable disk
    /// state), and advertises `gdf_draining 1` so coordinators finish
    /// nothing new here and steal soon.
    draining: AtomicBool,
    connections: Arc<std::sync::atomic::AtomicUsize>,
    metrics: Metrics,
    /// The unified metric registry: pool counters, the job-latency
    /// summary, per-phase engine histograms, HTTP request counters.
    /// `GET /metrics` is one `registry.render()`.
    registry: Registry,
    /// Tracing + profiling enabled ([`ServeConfig::obs`]).
    obs: bool,
    /// The content-addressed result cache under `<dir>/store`. Always
    /// on: publishing costs one extra write per completed run, and a hit
    /// saves an entire generation run.
    store: Store,
}

impl ServerState {
    /// Bumps `gdf_http_requests_total{method,path,status}`. `path` is
    /// the route *pattern* (`/jobs/{id}`), not the raw path — ids must
    /// not explode the series cardinality.
    fn record_http(&self, method: &str, route: &str, status: u16) {
        let method = match method {
            "GET" | "POST" | "DELETE" => method,
            _ => "other",
        };
        self.registry
            .counter_with(
                "gdf_http_requests_total",
                HTTP_HELP,
                &[
                    ("method", method),
                    ("path", route),
                    ("status", &status.to_string()),
                ],
            )
            .inc();
    }

    fn job(&self, id: JobId) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job store poisoned")
            .get(&id)
            .cloned()
    }

    fn watermark_path(dir: &std::path::Path) -> PathBuf {
        dir.join("next-id")
    }

    /// Persists the id high-water mark so job ids are never reused, even
    /// after the highest-id job's directory is deleted and the server
    /// restarts (a stale client id must 404, not resolve to a stranger's
    /// job). Called with the job-store lock held, so writes are ordered.
    fn persist_watermark(&self) {
        let value = self.next_id.load(Ordering::Acquire);
        if let Err(e) = write_atomic(&Self::watermark_path(&self.dir), &format!("{value}\n")) {
            eprintln!("gdf-serve: id watermark write failed: {e}");
        }
    }

    /// Moves backlogged recovery jobs into the queue while it has room.
    /// In tenant mode a recovered job re-enters its owner's lane, so a
    /// backlogged job can also wait on that tenant's quota — recovery
    /// stays in id order either way.
    fn drain_backlog(&self) {
        let mut backlog = self.backlog.lock().expect("backlog poisoned");
        while let Some(&id) = backlog.front() {
            let tenant = self.job(id).and_then(|job| job.spec.tenant.clone());
            if self.queue.push(tenant.as_deref(), id).is_err() {
                return;
            }
            backlog.pop_front();
        }
    }

    /// Persists the job record; I/O failure is reported, not fatal (the
    /// in-memory state stays authoritative for this process).
    fn persist(&self, job: &Job) {
        let status = job.status();
        let text = encode_record(job.id, &job.spec, &status);
        let path = Job::record_path(&self.dir, job.id);
        if let Err(e) = write_atomic(&path, &text) {
            eprintln!("gdf-serve: job {} record write failed: {e}", job.id);
        }
    }

    /// Moves a job to a terminal state, persists it, closes its stream.
    fn finalize(
        &self,
        job: &Job,
        state: JobState,
        error: Option<String>,
        report: Option<ReportSummary>,
    ) {
        {
            let mut status = job.status.lock().expect("job status poisoned");
            status.state = state;
            status.error = error;
            if report.is_some() {
                status.report = report;
            }
        }
        self.persist(job);
        job.events.close();
        job.events.compact(TERMINAL_EVENT_TAIL);
    }
}

/// The running server; see [`JobServer::start`].
pub struct JobServer {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Binds, recovers persisted jobs from the directory, and spawns the
    /// acceptor plus the worker pool.
    pub fn start(config: ServeConfig) -> Result<JobServer, ServeError> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| ServeError::Io(format!("{}: {e}", config.dir.display())))?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let workers = config.workers.max(1);
        let store =
            Store::open(config.dir.join("store")).map_err(|e| ServeError::Io(e.to_string()))?;
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        // Pre-register the per-phase histograms and the /metrics scrape
        // counter so those families are present from the first scrape.
        for phase in PHASES {
            registry.histogram_with(PHASE_METRIC, PHASE_HELP, &[("phase", phase)]);
        }
        registry.counter_with(
            "gdf_http_requests_total",
            HTTP_HELP,
            &[("method", "GET"), ("path", "/metrics"), ("status", "200")],
        );
        if config.obs {
            // Route engine phase spans (parse/generate/fill/fsim/…)
            // into this registry. The sink is process-global: with
            // several in-process servers the last one started wins,
            // which the tests and the bench harness account for.
            gdf_obs::install_phase_sink(registry.clone());
        }
        // Tenancy registers its per-tenant families after every
        // pre-existing one, so open-mode scrapes render unchanged.
        let tenancy = config.tenants.clone().map(|r| Tenancy::new(r, &registry));
        let queue = match &tenancy {
            // The fair queue bounds *total* queued jobs at the same
            // global capacity open mode has (workers × per-shard cap).
            Some(t) => JobQueue::Fair(FairQueue::new(
                workers,
                workers * config.queue_capacity.max(1),
                &t.registry,
            )),
            None => JobQueue::Open(ShardedQueue::new(workers, config.queue_capacity.max(1))),
        };
        let state = Arc::new(ServerState {
            dir: config.dir.clone(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            queue,
            tenancy,
            backlog: Mutex::new(std::collections::VecDeque::new()),
            default_checkpoint_every: config.checkpoint_every.max(1),
            body_limit: config.body_limit,
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            metrics,
            registry,
            obs: config.obs,
            store,
        });
        recover_jobs(&state)?;

        let mut worker_handles = Vec::new();
        for index in 0..workers {
            let state = Arc::clone(&state);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("gdf-serve-worker-{index}"))
                    .spawn(move || worker_loop(state, index))
                    .map_err(|e| ServeError::Io(format!("spawn worker: {e}")))?,
            );
        }
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("gdf-serve-acceptor".into())
            .spawn(move || accept_loop(acceptor_state, listener))
            .map_err(|e| ServeError::Io(format!("spawn acceptor: {e}")))?;

        Ok(JobServer {
            state,
            local_addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the server is stopped (never, unless another thread
    /// holds a handle that calls [`JobServer::shutdown`] — the CLI just
    /// parks here until the process is killed).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Stops accepting, stops every worker at its next fault boundary,
    /// and joins the threads. **No disk state is updated** — in-flight
    /// jobs keep their last checkpoint and their `running` record, so a
    /// restarted server resumes them exactly as it would after a crash.
    /// (Stopping *is* the crash path; there is nothing graceful a
    /// shutdown could add without weakening the recovery guarantee.)
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// [`JobServer::shutdown`] under its test-facing name: simulates
    /// `kill -9` at a fault boundary.
    pub fn kill(mut self) {
        self.stop();
    }

    /// Graceful drain, the front half of a `SIGTERM` shutdown: stop
    /// accepting work (submissions answer `503 + Retry-After`, metrics
    /// advertise `gdf_draining 1`), stop running jobs at their next
    /// fault boundary with their checkpoints and `running`/`queued`
    /// records left on disk, and block until every worker is idle. The
    /// caller then finishes with [`JobServer::shutdown`]; a restarted
    /// server (or a coordinator stealing the units) resumes everything
    /// exactly where it stopped. Deliberately *additive* to the
    /// crash-style stop — drain never updates disk state the crash path
    /// would not, so the recovery guarantee is unchanged.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        while self.state.metrics.busy.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn stop(&mut self) {
        if self.state.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.state.queue.close();
        for job in self.state.jobs.lock().expect("job store poisoned").values() {
            job.cancel.store(true, Ordering::Release);
        }
        // Unblock accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        for job in self.state.jobs.lock().expect("job store poisoned").values() {
            job.events.close();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// Replays `job-<n>/job.json` records: terminal jobs re-listed,
/// queued/running jobs re-queued (their artifact checkpoint, if any,
/// makes the re-run a resume).
fn recover_jobs(state: &Arc<ServerState>) -> Result<(), ServeError> {
    let mut recovered: Vec<(JobId, Arc<Job>)> = Vec::new();
    let mut max_id = 0u64;
    let entries = std::fs::read_dir(&state.dir)
        .map_err(|e| ServeError::Io(format!("{}: {e}", state.dir.display())))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let record_path = Job::record_path(&state.dir, id);
        let text = match gdf_core::io::read_to_string(&record_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("gdf-serve: skipping job {id}: {e}");
                continue;
            }
        };
        match decode_record(&text) {
            Ok((record_id, spec, status)) if record_id == id => {
                max_id = max_id.max(id);
                let job = Arc::new(Job::new(id, spec));
                *job.status.lock().expect("job status poisoned") = status;
                recovered.push((id, job));
            }
            Ok((record_id, _, _)) => {
                eprintln!("gdf-serve: skipping job {id}: record claims id {record_id}")
            }
            Err(e) => eprintln!("gdf-serve: skipping job {id}: {e}"),
        }
    }
    let watermark = gdf_core::io::read_to_string(&ServerState::watermark_path(&state.dir))
        .ok()
        .and_then(|text| text.trim().parse::<u64>().ok())
        .unwrap_or(0);
    state
        .next_id
        .store((max_id + 1).max(watermark), Ordering::Release);
    recovered.sort_by_key(|(id, _)| *id);
    let mut jobs = state.jobs.lock().expect("job store poisoned");
    for (id, job) in recovered {
        let status = job.status();
        if status.state.is_terminal() {
            job.events.close();
        } else {
            // Interrupted mid-flight: back to the queue, in id order so
            // recovery is deterministic. Overflow beyond the queue bound
            // goes to the backlog, which idle workers drain.
            job.status.lock().expect("job status poisoned").state = JobState::Queued;
            if state.queue.push(job.spec.tenant.as_deref(), id).is_err() {
                state
                    .backlog
                    .lock()
                    .expect("backlog poisoned")
                    .push_back(id);
            }
        }
        jobs.insert(id, job);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// Observer polling the job's cancel flag (set by `DELETE` and by
/// server stop) between faults.
struct CancelWatch {
    job: Arc<Job>,
}

impl Observer for CancelWatch {
    fn cancelled(&mut self) -> bool {
        self.job.cancel.load(Ordering::Acquire)
    }
}

/// Observer polling the server's drain flag between faults — what makes
/// a running full job stop at its next fault boundary during a graceful
/// drain (its checkpoint and `running` record stay, so the job resumes).
struct DrainWatch {
    state: Arc<ServerState>,
}

impl Observer for DrainWatch {
    fn cancelled(&mut self) -> bool {
        self.state.draining.load(Ordering::Acquire)
    }
}

/// Per-job observability bundle: a tracer rooted at the job's trace
/// context (from the submission's `X-Gdf-Trace` header, or digest
/// -derived — never wall-clock random) and, for full jobs, a profiler
/// handle. Inert when [`ServeConfig::obs`] is off. Strictly a side
/// channel: nothing here touches the canonical artifact bytes.
struct JobObs {
    tracer: Option<Tracer>,
    profile: Option<ProfileHandle>,
}

impl JobObs {
    /// Starts observing a job on the current worker thread (phase spans
    /// recorded by the engine on this thread are captured thread-local
    /// for per-job attribution; spans from spawned generation threads
    /// reach only the registry histograms).
    fn begin(state: &ServerState, job: &Job) -> JobObs {
        if !state.obs {
            return JobObs {
                tracer: None,
                profile: None,
            };
        }
        capture_begin();
        let ctx = job.status().trace.unwrap_or_else(|| {
            TraceCtx::root(&format!(
                "gdf-job:{}:{}",
                job.id,
                gdf_core::digest::config_digest(&job.spec.config).hex()
            ))
        });
        JobObs {
            tracer: Some(Tracer::new(ctx)),
            profile: None,
        }
    }

    /// Finishes observing: folds this thread's captured phase records
    /// into the job's `profile` block (persisted by the caller's
    /// subsequent `finalize`) and writes the trace document in one
    /// atomic pass through the I/O facade — a torn write loses the
    /// trace, never corrupts the job.
    fn finish(self, state: &ServerState, job: &Job, started: Instant) {
        let Some(tracer) = self.tracer else { return };
        let records = capture_take();
        let mut data = match &self.profile {
            Some(handle) => {
                handle.add_phases(&records);
                handle.snapshot()
            }
            None => {
                let mut data = ProfileData::default();
                data.add_phases(&records);
                data
            }
        };
        if data.wall_us == 0 {
            // Shard jobs (and failures before the engine ran) have no
            // profiler-reported wall time; the worker's is the truth.
            data.wall_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        }
        {
            let mut status = job.status.lock().expect("job status poisoned");
            status.trace = Some(tracer.ctx());
            status.profile = Some(data.to_json());
        }
        for r in &records {
            let start_us = r
                .started
                .checked_duration_since(tracer.epoch())
                .unwrap_or_default()
                .as_micros()
                .min(u64::MAX as u128) as u64;
            tracer.record(
                r.phase,
                start_us,
                r.duration.as_micros().min(u64::MAX as u128) as u64,
            );
        }
        let dir = state.dir.join("traces");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("gdf-serve: create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("job-{}.ndjson", job.id));
        let doc = tracer.encode(&format!("job:{}", job.id));
        match gdf_core::io::write_atomic(&path, &doc) {
            Ok(()) => state.metrics.traces_written.inc(),
            Err(e) => eprintln!("gdf-serve: job {} trace write failed: {e}", job.id),
        }
    }
}

fn worker_loop(state: Arc<ServerState>, index: usize) {
    loop {
        if state.stopping.load(Ordering::Acquire) {
            return;
        }
        state.drain_backlog();
        let Some(id) = state.queue.pop(index, WORKER_POLL) else {
            if state.queue.is_closed() {
                return;
            }
            continue;
        };
        let Some(job) = state.job(id) else { continue };
        state.metrics.busy.fetch_add(1, Ordering::AcqRel);
        run_job(&state, &job);
        state.metrics.busy.fetch_sub(1, Ordering::AcqRel);
        // Release the fair-scheduler dispatch slot (no-op in open
        // mode): the owner's lane may have been at `max_running`.
        state.queue.finish(job.spec.tenant.as_deref());
    }
}

/// Publishes a completed run's canonical bytes into the result cache.
/// Best-effort: a store failure costs future cache hits, never the job.
fn publish_run(state: &ServerState, spec: &JobSpec, artifact: &RunArtifact) {
    let name = CacheKey::new(&spec.source, &spec.config).run_name();
    if let Err(e) = state.store.publish(&name, &artifact.canonical_encode()) {
        eprintln!("gdf-serve: result-cache publish failed: {e}");
    }
}

fn run_job(state: &Arc<ServerState>, job: &Arc<Job>) {
    if state.stopping.load(Ordering::Acquire) {
        return;
    }
    if state.draining.load(Ordering::Acquire) {
        // Draining: start nothing new. The job's `queued` record is
        // already on disk; a restarted server (or a stealing
        // coordinator) picks it up.
        return;
    }
    if job.cancel.load(Ordering::Acquire) {
        state.finalize(job, JobState::Cancelled, None, None);
        return;
    }
    let started = Instant::now();
    job.status.lock().expect("job status poisoned").state = JobState::Running;
    state.persist(job);
    let mut obs = JobObs::begin(state, job);

    let spec = &job.spec;
    let resolved = {
        let _span = gdf_core::phase::start("parse");
        spec.source.resolve()
    };
    let circuit = match resolved {
        Ok(circuit) => circuit,
        Err(e) => {
            state.metrics.failed.inc();
            obs.finish(state, job, started);
            state.finalize(job, JobState::Failed, Some(e.to_string()), None);
            return;
        }
    };
    // Shard jobs take the pure-generation path: target the tagged
    // universe range, checkpoint a shard document, never touch the
    // credit RNG (see `gdf_core::shard` for the contract).
    if let Some(shard) = spec.shard.clone() {
        run_shard_job(state, job, &circuit, &shard, started, obs);
        return;
    }
    let config = spec.config;
    let artifact_path = Job::artifact_path(&state.dir, job.id);

    let make_builder = || -> AtpgBuilder<'_> {
        Atpg::builder(&circuit)
            .backend(config.backend)
            .model(config.model)
            .sensitization(config.sensitization)
            .universe(config.universe)
            .limits(config.limits)
            .seed(config.seed)
            .parallelism(spec.parallelism)
    };
    let mut builder = make_builder();

    // A pre-existing artifact under the same config is either a complete
    // run (crash after the final save — adopt it) or a resumable
    // checkpoint. Foreign-config leftovers are ignored and overwritten.
    if artifact_path.exists() {
        match RunArtifact::load(&artifact_path) {
            Ok(artifact) if artifact.config() == config && !artifact.partial => {
                let report = artifact.report().map(ReportSummary::from);
                {
                    let _span = gdf_core::phase::start("publish");
                    publish_run(state, spec, &artifact);
                }
                state.metrics.record_done(started.elapsed());
                obs.finish(state, job, started);
                state.finalize(job, JobState::Done, None, report);
                return;
            }
            Ok(artifact) if artifact.config() == config => {
                match make_builder().resume_from(&artifact) {
                    Ok(resumed) => builder = resumed,
                    Err(e) => {
                        eprintln!(
                            "gdf-serve: job {} checkpoint unusable ({e}); restarting",
                            job.id
                        )
                    }
                }
            }
            _ => {}
        }
    }

    let sink_job = Arc::clone(job);
    builder = builder
        .observer(EventObserver::new(move |event| {
            {
                let mut status = sink_job.status.lock().expect("job status poisoned");
                match &event {
                    ProgressEvent::Started { total_faults, .. } => status.total = *total_faults,
                    ProgressEvent::Progress { decided, total } => {
                        status.decided = *decided;
                        status.total = *total;
                    }
                    _ => {}
                }
            }
            sink_job.events.push(event);
        }))
        .observer(
            Checkpointer::new(&artifact_path, spec.checkpoint_every)
                .with_source(spec.source.clone()),
        )
        .observer(CancelWatch {
            job: Arc::clone(job),
        })
        .observer(DrainWatch {
            state: Arc::clone(state),
        });
    if state.obs {
        let (profiler, handle) = Profiler::new();
        builder = builder.observer(profiler);
        obs.profile = Some(handle);
    }

    // Submissions are validated at POST time, but v1 job records replayed
    // from disk skip that path — reject unsupported pairings as a failed
    // job rather than a worker panic.
    let mut engine = match builder.try_build() {
        Ok(engine) => engine,
        Err(e) => {
            state.metrics.failed.inc();
            obs.finish(state, job, started);
            state.finalize(job, JobState::Failed, Some(e.to_string()), None);
            return;
        }
    };
    let run = engine.run();

    if state.stopping.load(Ordering::Acquire) {
        // Crash-style stop: the last checkpoint and the `running` record
        // stay exactly as they are; the next server resumes from them.
        return;
    }
    if state.draining.load(Ordering::Acquire)
        && !job.cancel.load(Ordering::Acquire)
        && matches!(run.stopped, Some(AtpgError::Cancelled))
    {
        // Drain stopped the run at a fault boundary (not a client
        // cancel): keep the checkpoint and `running` record so a
        // restart resumes; the Checkpointer's cadence bounds the
        // recomputed tail.
        return;
    }
    match run.stopped {
        None => {
            let artifact = RunArtifact::from_run(&circuit, &run, config, Some(spec.source.clone()));
            let saved = {
                let _span = gdf_core::phase::start("publish");
                let saved = artifact.save(&artifact_path);
                if saved.is_ok() {
                    publish_run(state, spec, &artifact);
                }
                saved
            };
            match saved {
                Ok(()) => {
                    let report = ReportSummary::from(&run.report);
                    state.metrics.record_done(started.elapsed());
                    obs.finish(state, job, started);
                    state.finalize(job, JobState::Done, None, Some(report));
                }
                Err(e) => {
                    state.metrics.failed.inc();
                    obs.finish(state, job, started);
                    state.finalize(job, JobState::Failed, Some(e.to_string()), None);
                }
            }
        }
        Some(AtpgError::Cancelled) => {
            obs.finish(state, job, started);
            state.finalize(job, JobState::Cancelled, None, None);
        }
        Some(e) => {
            state.metrics.failed.inc();
            obs.finish(state, job, started);
            state.finalize(job, JobState::Failed, Some(e.to_string()), None);
        }
    }
}

/// The shard-job work loop: resume the shard document if one is on
/// disk, target every remaining fault of the range, checkpoint every
/// `checkpoint_every` outcomes, and finalize like an ordinary job —
/// except the artifact is a `gdf-shard` document and there is no
/// report (a shard classifies nothing; the merge does).
fn run_shard_job(
    state: &Arc<ServerState>,
    job: &Arc<Job>,
    circuit: &Circuit,
    shard: &ShardSpec,
    started: Instant,
    obs: JobObs,
) {
    let spec = &job.spec;
    let artifact_path = Job::artifact_path(&state.dir, job.id);
    let mut artifact = match ShardArtifact::new(
        circuit,
        Some(spec.source.clone()),
        spec.config,
        shard.lo,
        shard.hi,
    ) {
        Ok(artifact) => artifact,
        Err(e) => {
            state.metrics.failed.inc();
            obs.finish(state, job, started);
            state.finalize(job, JobState::Failed, Some(e.to_string()), None);
            return;
        }
    };
    // A pre-existing shard document under the same spec is a checkpoint
    // from an interrupted attempt: resume at its first hole. Foreign
    // leftovers are ignored and overwritten.
    if artifact_path.exists() {
        if let Ok(prior) = ShardArtifact::load(&artifact_path, circuit) {
            if prior.config() == &spec.config && prior.range() == (shard.lo, shard.hi) {
                artifact = prior;
            }
        }
    }

    let total = artifact.len();
    {
        let mut status = job.status.lock().expect("job status poisoned");
        status.total = total;
        status.decided = artifact.decided();
    }
    job.events.push(ProgressEvent::Started {
        engine: spec.config.backend.to_string(),
        circuit: circuit.name().to_string(),
        total_faults: total,
    });

    let every = spec.checkpoint_every.max(1);
    let mut since_checkpoint = 0usize;
    let result = artifact.run(circuit, |current| {
        let decided = current.decided();
        {
            let mut status = job.status.lock().expect("job status poisoned");
            status.decided = decided;
        }
        job.events.push(ProgressEvent::Progress { decided, total });
        since_checkpoint += 1;
        if since_checkpoint >= every {
            since_checkpoint = 0;
            if let Err(e) = current.save(&artifact_path, circuit) {
                eprintln!("gdf-serve: job {} shard checkpoint failed: {e}", job.id);
            }
        }
        !(state.stopping.load(Ordering::Acquire)
            || state.draining.load(Ordering::Acquire)
            || job.cancel.load(Ordering::Acquire))
    });

    if state.stopping.load(Ordering::Acquire) {
        // Crash-style stop, same as full jobs: last checkpoint + the
        // `running` record stay; the next server resumes the shard.
        return;
    }
    if state.draining.load(Ordering::Acquire)
        && !job.cancel.load(Ordering::Acquire)
        && matches!(result, Ok(false))
    {
        // Drain stopped the shard between outcomes: persist a final
        // checkpoint (shard documents resume at their first hole), keep
        // the `running` record, and let the restart or the stealing
        // coordinator finish the range.
        if let Err(e) = artifact.save(&artifact_path, circuit) {
            eprintln!("gdf-serve: job {} drain checkpoint failed: {e}", job.id);
        }
        return;
    }
    match result {
        Ok(true) => {
            let saved = {
                let _span = gdf_core::phase::start("publish");
                artifact.save(&artifact_path, circuit)
            };
            match saved {
                Ok(()) => {
                    job.events.push(ProgressEvent::Finished {
                        tested: 0,
                        untestable: 0,
                        aborted: 0,
                        patterns: 0,
                        sequences: 0,
                    });
                    state.metrics.record_done(started.elapsed());
                    obs.finish(state, job, started);
                    state.finalize(job, JobState::Done, None, None);
                }
                Err(e) => {
                    state.metrics.failed.inc();
                    obs.finish(state, job, started);
                    state.finalize(job, JobState::Failed, Some(e.to_string()), None);
                }
            }
        }
        Ok(false) => {
            obs.finish(state, job, started);
            state.finalize(job, JobState::Cancelled, None, None);
        }
        Err(e) => {
            state.metrics.failed.inc();
            obs.finish(state, job, started);
            state.finalize(job, JobState::Failed, Some(e.to_string()), None);
        }
    }
}

// ---------------------------------------------------------------------
// Acceptor + router
// ---------------------------------------------------------------------

/// Decrements the live-connection count when a handler thread exits,
/// however it exits.
struct ConnectionGuard(Arc<std::sync::atomic::AtomicUsize>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(state: Arc<ServerState>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        if state.connections.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS {
            state.connections.fetch_sub(1, Ordering::AcqRel);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = Response::error(503, "too many connections").write(&mut stream);
            continue;
        }
        let guard = ConnectionGuard(Arc::clone(&state.connections));
        let state = Arc::clone(&state);
        let spawned = std::thread::Builder::new()
            .name("gdf-serve-conn".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(state, stream);
            });
        // On spawn failure the guard moved into the closure is gone with
        // it, and `spawn` dropping the closure runs the decrement.
        let _ = spawned;
    }
}

fn handle_connection(state: Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    match read_request(&mut reader, state.body_limit) {
        Ok(Some(request)) => route(&state, request, &mut stream),
        Ok(None) => {}
        Err(e) => {
            let status = match e {
                HttpError::TooLarge(_) => 413,
                HttpError::Malformed(_) => 400,
                HttpError::Io(_) => return,
            };
            let _ = Response::error(status, e.to_string()).write(&mut stream);
        }
    }
}

fn route(state: &Arc<ServerState>, request: Request, stream: &mut TcpStream) {
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    // The route *pattern* for the HTTP request counter — ids must not
    // explode the series cardinality, so they label as `{id}`.
    let route_name = match segments.as_slice() {
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["jobs"] => "/jobs",
        ["jobs", _] => "/jobs/{id}",
        ["jobs", _, "artifact"] => "/jobs/{id}/artifact",
        ["jobs", _, "patterns"] => "/jobs/{id}/patterns",
        ["jobs", _, "events"] => "/jobs/{id}/events",
        _ => "other",
    };
    // Job-mutating routes pass bearer auth when a registry is loaded.
    // Everything else — reads, /healthz, /metrics — stays open (the
    // fleet health probe scrapes /metrics unauthenticated).
    let mutating = matches!(
        (request.method.as_str(), segments.as_slice()),
        ("POST", ["jobs"]) | ("DELETE", ["jobs", _])
    );
    let tenant: Option<String> = match &state.tenancy {
        Some(t) if mutating => match t.registry.authorize(request.header("authorization")) {
            Ok(spec) => Some(spec.id.clone()),
            Err(e) => {
                let response = Response::error(e.status(), e.message());
                state.record_http(&request.method, route_name, response.status);
                let _ = response.write(stream);
                return;
            }
        },
        _ => None,
    };
    let response = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => handle_health(state),
        ("GET", ["metrics"]) => handle_metrics(state),
        ("POST", ["jobs"]) => handle_submit(state, &request, tenant.as_deref()),
        ("GET", ["jobs"]) => handle_list(state),
        ("GET", ["jobs", id]) => with_job(state, id, |job| {
            Response::json(200, &status_json(job, true))
        }),
        ("DELETE", ["jobs", id]) => with_job(state, id, |job| {
            handle_delete(state, job, tenant.as_deref())
        }),
        ("GET", ["jobs", id, "artifact"]) => with_job(state, id, |job| handle_artifact(state, job)),
        ("GET", ["jobs", id, "patterns"]) => with_job(state, id, |job| handle_patterns(state, job)),
        ("GET", ["jobs", id, "events"]) => {
            // Streaming: takes over the connection, no Response to write.
            match lookup(state, id) {
                Ok(job) => {
                    state.record_http(&request.method, route_name, 200);
                    stream_events(&job, stream);
                    return;
                }
                Err(response) => response,
            }
        }
        // Known paths with the wrong method are 405; everything else —
        // including unknown sub-resources like /jobs/7/artifacts — 404.
        (
            _,
            ["healthz" | "metrics"]
            | ["jobs"]
            | ["jobs", _]
            | ["jobs", _, "events" | "artifact" | "patterns"],
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    };
    state.record_http(&request.method, route_name, response.status);
    let _ = response.write(stream);
}

fn lookup(state: &Arc<ServerState>, id: &str) -> Result<Arc<Job>, Response> {
    let id: JobId = id
        .parse()
        .map_err(|_| Response::error(400, format!("bad job id `{id}`")))?;
    state
        .job(id)
        .ok_or_else(|| Response::error(404, format!("no job {id}")))
}

fn with_job(state: &Arc<ServerState>, id: &str, f: impl FnOnce(&Arc<Job>) -> Response) -> Response {
    match lookup(state, id) {
        Ok(job) => f(&job),
        Err(response) => response,
    }
}

fn handle_health(state: &Arc<ServerState>) -> Response {
    let jobs = state.jobs.lock().expect("job store poisoned");
    let mut active = 0usize;
    for job in jobs.values() {
        if job.status().state == JobState::Running {
            active += 1;
        }
    }
    Response::json(
        200,
        &Json::Obj(vec![
            ("status".into(), Json::Str("ok".into())),
            ("jobs".into(), Json::Num(jobs.len() as f64)),
            ("running".into(), Json::Num(active as f64)),
            ("queued".into(), Json::Num(state.queue.len() as f64)),
            ("workers".into(), Json::Num(state.queue.shards() as f64)),
        ]),
    )
}

/// `GET /metrics`: the full registry in Prometheus text exposition
/// format — what the fleet coordinator's health probe scrapes, and what
/// an ordinary Prometheus can scrape unchanged. Pool gauges are
/// computed per scrape; every pre-obs series keeps its exact name and
/// type (see the compat test in `tests/obs_metrics.rs`).
fn handle_metrics(state: &Arc<ServerState>) -> Response {
    let (running, queued_jobs) = {
        let jobs = state.jobs.lock().expect("job store poisoned");
        let mut running = 0usize;
        let mut queued = 0usize;
        for job in jobs.values() {
            match job.status().state {
                JobState::Running => running += 1,
                JobState::Queued => queued += 1,
                _ => {}
            }
        }
        (running, queued)
    };
    let workers = state.queue.shards();
    let busy = state.metrics.busy.load(Ordering::Acquire).min(workers);
    let store_stats = state.store.stats().unwrap_or_default();
    let m = &state.metrics;
    m.queue_depth.set(state.queue.len() as f64);
    m.jobs_running.set(running as f64);
    m.jobs_queued.set(queued_jobs as f64);
    m.workers.set(workers as f64);
    m.workers_busy.set(busy as f64);
    m.worker_utilization.set(if workers == 0 {
        0.0
    } else {
        busy as f64 / workers as f64
    });
    m.draining.set(if state.draining.load(Ordering::Acquire) {
        1.0
    } else {
        0.0
    });
    m.store_bytes.set(store_stats.bytes as f64);
    m.store_objects.set(store_stats.objects as f64);
    if let (Some(t), JobQueue::Fair(q)) = (&state.tenancy, &state.queue) {
        // Lanes the scheduler has not seen yet keep their pre-registered
        // zero; the ownerless "" lane has no gauge and is skipped.
        for (tenant, queued, running) in q.snapshot() {
            if let Some(g) = t.queued.get(&tenant) {
                g.set(queued as f64);
            }
            if let Some(g) = t.running.get(&tenant) {
                g.set(running as f64);
            }
        }
    }
    Response::text(200, state.registry.render())
}

fn handle_list(state: &Arc<ServerState>) -> Response {
    let jobs = state.jobs.lock().expect("job store poisoned");
    let list: Vec<Json> = jobs.values().map(|job| status_json(job, false)).collect();
    Response::json(200, &Json::Obj(vec![("jobs".into(), Json::Arr(list))]))
}

fn status_json(job: &Arc<Job>, verbose: bool) -> Json {
    let status = job.status();
    let mut fields = vec![
        ("id".into(), Json::Num(job.id as f64)),
        ("state".into(), Json::Str(status.state.name().into())),
        ("circuit".into(), Json::Str(job.spec.source.name.clone())),
        (
            "backend".into(),
            Json::Str(job.spec.config.backend.to_string()),
        ),
        ("decided".into(), Json::Num(status.decided as f64)),
        ("total".into(), Json::Num(status.total as f64)),
        (
            "error".into(),
            match &status.error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
        (
            "report".into(),
            match &status.report {
                None => Json::Null,
                Some(r) => r.encode(),
            },
        ),
    ];
    if let Some(shard) = &job.spec.shard {
        fields.push(("shard".into(), shard.encode()));
    }
    if let Some(tenant) = &job.spec.tenant {
        fields.push(("tenant".into(), Json::Str(tenant.clone())));
    }
    if verbose {
        fields.extend(encode_config(&job.spec.config));
        fields.push(("parallelism".into(), Json::Num(job.spec.parallelism as f64)));
        if let Some(trace) = &status.trace {
            fields.push(("trace".into(), Json::Str(trace.header_value())));
        }
        if let Some(profile) = &status.profile {
            fields.push(("profile".into(), profile.clone()));
        }
    }
    Json::Obj(fields)
}

fn handle_submit(state: &Arc<ServerState>, request: &Request, tenant: Option<&str>) -> Response {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse_with_limits(body, ParseLimits::network()) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(400, format!("bad JSON: {e}")),
    };
    let mut spec = match decode_submission(&parsed, state.default_checkpoint_every) {
        Ok(spec) => spec,
        Err(message) => return Response::error(400, message),
    };
    spec.tenant = tenant.map(str::to_string);
    if state.stopping.load(Ordering::Acquire) {
        return Response::error(503, "server is stopping");
    }
    if state.draining.load(Ordering::Acquire) {
        // `Retry-After` marks this 503 as a deliberate drain verdict:
        // clients route elsewhere instead of retrying here.
        return Response::error(503, "server is draining; resubmit elsewhere").with_retry_after(5);
    }
    // Request-rate admission, before the cache peek: the rate limit
    // prices the *request*, not the work, so cache hits count too.
    if let (Some(t), Some(tenant)) = (&state.tenancy, tenant) {
        if let Err(wait) = t.take_rate_token(tenant) {
            t.record_rejected(tenant);
            return Response::error(
                429,
                format!("tenant `{tenant}` is over its request rate; retry later"),
            )
            .with_retry_after(wait.ceil().max(1.0) as u32);
        }
    }

    // Exact result cache: a stored artifact under the same
    // `(circuit, config)` key is byte-for-byte what this job would
    // compute (the determinism invariant), so answer it as an
    // instantly-Done job instead of burning a generation run. Any
    // validation failure falls through to the normal queue path.
    let cached: Option<(String, RunArtifact)> = match &spec.shard {
        Some(_) => None,
        None => state
            .store
            .get_named(&CacheKey::new(&spec.source, &spec.config).run_name())
            .ok()
            .flatten()
            .and_then(|text| {
                RunArtifact::decode(&text)
                    .ok()
                    .filter(|a| a.config() == spec.config && !a.partial && a.circuit == spec.source)
                    .map(|artifact| (text, artifact))
            }),
    };

    let id = state.next_id.fetch_add(1, Ordering::AcqRel);
    let job = Arc::new(Job::new(id, spec));
    if state.obs {
        // The job's trace context: the caller's `X-Gdf-Trace` (so fleet
        // shard jobs correlate under one campaign trace), or a root
        // derived from the job id + config digest — never random.
        let ctx = request
            .header(TRACE_HEADER)
            .and_then(TraceCtx::parse)
            .unwrap_or_else(|| {
                TraceCtx::root(&format!(
                    "gdf-job:{id}:{}",
                    gdf_core::digest::config_digest(&job.spec.config).hex()
                ))
            });
        job.status.lock().expect("job status poisoned").trace = Some(ctx);
    }
    let dir = Job::dir(&state.dir, id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return Response::error(500, format!("create {}: {e}", dir.display()));
    }
    state.persist(&job);
    {
        let mut jobs = state.jobs.lock().expect("job store poisoned");
        jobs.insert(id, Arc::clone(&job));
        state.persist_watermark();
    }
    let mut served_from_cache = false;
    if let Some((text, artifact)) = cached {
        // Materialize the cached bytes as the job's artifact so fetch,
        // patterns, and restart recovery see a normal completed job.
        match write_atomic(&Job::artifact_path(&state.dir, id), &text) {
            Ok(()) => {
                {
                    let mut status = job.status.lock().expect("job status poisoned");
                    status.decided = artifact.decided();
                    status.total = artifact.total();
                }
                let report = artifact.report().map(ReportSummary::from);
                state.metrics.cache_hits.inc();
                state.metrics.completed.inc();
                state.finalize(&job, JobState::Done, None, report);
                served_from_cache = true;
            }
            Err(e) => {
                // Cache unusable right now — run the job for real.
                eprintln!("gdf-serve: cached artifact write failed ({e}); generating");
            }
        }
    }
    if !served_from_cache {
        if let Err(e) = state.queue.push(job.spec.tenant.as_deref(), id) {
            state.jobs.lock().expect("job store poisoned").remove(&id);
            // A subscriber that raced onto /jobs/<id>/events in the
            // insert window must see the stream end, not keepalives
            // forever.
            job.events.close();
            let _ = std::fs::remove_dir_all(&dir);
            return match e {
                // Global capacity: the server's problem.
                PushError::Full => Response::error(503, "job queue is full; retry later"),
                // The tenant's own queued-job quota: their problem —
                // a slot frees as soon as one of their jobs dispatches.
                PushError::OverQuota => {
                    let tenant = job.spec.tenant.as_deref().unwrap_or("");
                    if let Some(t) = &state.tenancy {
                        t.record_rejected(tenant);
                    }
                    Response::error(
                        429,
                        format!("tenant `{tenant}` is at its queued-job quota; retry later"),
                    )
                    .with_retry_after(1)
                }
            };
        }
    }
    if let (Some(t), Some(tenant)) = (&state.tenancy, tenant) {
        t.record_admitted(tenant);
    }
    Response::json(
        201,
        &Json::Obj(vec![
            ("id".into(), Json::Num(id as f64)),
            ("url".into(), Json::Str(format!("/jobs/{id}"))),
            ("cached".into(), Json::Bool(served_from_cache)),
        ]),
    )
}

fn handle_delete(state: &Arc<ServerState>, job: &Arc<Job>, tenant: Option<&str>) -> Response {
    // Tenant mode: a job with an owner can only be cancelled/removed by
    // that owner. Ownerless jobs (recovered from an open-mode run) stay
    // manageable by any authenticated tenant.
    if state.tenancy.is_some() {
        if let Some(owner) = job.spec.tenant.as_deref() {
            if Some(owner) != tenant {
                return Response::error(403, format!("job {} belongs to another tenant", job.id));
            }
        }
    }
    let current = job.status().state;
    let action = match current {
        JobState::Queued => {
            if state.queue.remove(job.id) {
                state.finalize(job, JobState::Cancelled, None, None);
                "cancelled"
            } else {
                // Already popped by a worker: cancel cooperatively.
                job.cancel.store(true, Ordering::Release);
                "cancelling"
            }
        }
        JobState::Running => {
            job.cancel.store(true, Ordering::Release);
            "cancelling"
        }
        JobState::Done | JobState::Failed | JobState::Cancelled => {
            state
                .jobs
                .lock()
                .expect("job store poisoned")
                .remove(&job.id);
            let _ = std::fs::remove_dir_all(Job::dir(&state.dir, job.id));
            "removed"
        }
    };
    Response::json(
        200,
        &Json::Obj(vec![
            ("id".into(), Json::Num(job.id as f64)),
            ("action".into(), Json::Str(action.into())),
        ]),
    )
}

fn handle_artifact(state: &Arc<ServerState>, job: &Arc<Job>) -> Response {
    let status = job.status();
    if status.state != JobState::Done {
        return Response::error(
            409,
            format!("job {} is {}, artifact not available", job.id, status.state),
        );
    }
    let path = Job::artifact_path(&state.dir, job.id);
    if job.spec.shard.is_some() {
        // Shard jobs persist a `gdf-shard` document, already in its
        // byte-stable encoding — serve it verbatim (through the I/O
        // facade, so fault harnesses can corrupt served artifacts too;
        // the coordinator's harvest validation heals that by requeue).
        return match gdf_core::io::read_to_string(&path) {
            Ok(text) => Response::json_bytes(200, text.into_bytes()),
            Err(e) => Response::error(500, format!("{}: {e}", path.display())),
        };
    }
    match RunArtifact::load(path) {
        Ok(artifact) => Response::json_bytes(200, artifact.canonical_encode()),
        Err(e) => Response::error(500, e.to_string()),
    }
}

fn handle_patterns(state: &Arc<ServerState>, job: &Arc<Job>) -> Response {
    let status = job.status();
    if status.state != JobState::Done {
        return Response::error(
            409,
            format!("job {} is {}, patterns not available", job.id, status.state),
        );
    }
    if job.spec.shard.is_some() {
        return Response::error(
            409,
            format!(
                "job {} is a shard job; patterns come from the merged artifact",
                job.id
            ),
        );
    }
    let result = RunArtifact::load(Job::artifact_path(&state.dir, job.id)).and_then(|artifact| {
        let circuit = artifact.circuit.resolve()?;
        let run = artifact.to_run(&circuit)?;
        Ok(PatternSet::from_run(
            &circuit,
            &run,
            &job.spec.config.backend.to_string(),
            job.spec.config.seed,
            Some(job.spec.source.clone()),
        )
        .encode())
    });
    match result {
        Ok(encoded) => Response::json_bytes(200, encoded),
        Err(e) => Response::error(500, e.to_string()),
    }
}

/// Per-write cap on `/events` streams. A reader that stops draining
/// eventually blocks our writes; failing the write after 10 seconds
/// frees this connection slot instead of pinning a handler thread for
/// the job's lifetime ([`MAX_CONNECTIONS`] is a hard cap — a handful of
/// stalled streams must not brown the server out for everyone else).
const STREAM_WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// The keepalive payload on a silent stream: deliberately *padded* (a
/// KiB of blank lines — NDJSON consumers skip them). Tiny keepalives
/// let a stalled reader's TCP receive window absorb writes for hours
/// before anything blocks; padded ones fill it within a bounded number
/// of rounds, so the stall probe below fires in seconds.
const STREAM_KEEPALIVE: &[u8] = &[b'\n'; 1024];
/// Consecutive keepalive rounds with bytes still sitting in the
/// socket's send queue before the subscriber is declared stalled.
const STREAM_STALL_ROUNDS: u32 = 5;

/// Bytes unsent/unacknowledged in `stream`'s kernel send queue
/// (`TIOCOUTQ`), or `None` where the probe is unavailable. A healthy
/// subscriber drains to zero between keepalives; a stalled one keeps a
/// growing residue once its receive window is full.
#[cfg(target_os = "linux")]
fn send_queue_depth(stream: &TcpStream) -> Option<usize> {
    use std::os::fd::AsRawFd;
    const TIOCOUTQ: std::ffi::c_ulong = 0x5411;
    extern "C" {
        fn ioctl(fd: std::ffi::c_int, request: std::ffi::c_ulong, ...) -> std::ffi::c_int;
    }
    let mut pending: std::ffi::c_int = 0;
    match unsafe { ioctl(stream.as_raw_fd(), TIOCOUTQ, &mut pending) } {
        0 => Some(pending.max(0) as usize),
        _ => None,
    }
}

#[cfg(not(target_os = "linux"))]
fn send_queue_depth(_stream: &TcpStream) -> Option<usize> {
    None
}

/// Streams the job's event log as NDJSON chunks: full replay from the
/// start of this server process, then live until the job closes it.
/// Once a job is terminal its log is compacted to the last
/// [`TERMINAL_EVENT_TAIL`] events, so a late subscriber to a large
/// finished job replays the tail (the `finished` event included), not
/// the whole per-fault history — the artifact is the durable record.
///
/// Slow readers cannot pin the connection slot: a busy stream trips
/// [`STREAM_WRITE_TIMEOUT`] once the socket buffers fill, and a silent
/// stream (keepalives only — e.g. a queued job) is cut by the
/// `TIOCOUTQ` stall probe after [`STREAM_STALL_ROUNDS`] rounds.
fn stream_events(job: &Arc<Job>, stream: &mut TcpStream) {
    // Streams outlive ordinary requests; only cap per-write time.
    let _ = stream.set_write_timeout(Some(STREAM_WRITE_TIMEOUT));
    // A second handle onto the socket for the stall probe — the
    // ChunkedWriter borrows `stream` for the stream's lifetime.
    let probe = stream.try_clone().ok();
    let Ok(mut writer) = ChunkedWriter::start(&mut *stream, 200, "application/x-ndjson") else {
        return;
    };
    let mut position = 0usize;
    let mut stalled_rounds = 0u32;
    loop {
        let (batch, next, closed) = job.events.wait_from(position, EVENT_POLL);
        if batch.is_empty() && !closed {
            // Keepalive on a silent stream: keeps the subscriber's read
            // timeout from firing while the job sits in the queue, and
            // detects a vanished subscriber. Consumers skip blank lines.
            //
            // Probe *before* writing: the previous round's payload has
            // had a full EVENT_POLL to drain, so any residue means the
            // reader is not consuming — its kernel buffers would
            // otherwise absorb padded keepalives quietly until the
            // write timeout, and tiny ones nearly forever.
            match probe.as_ref().and_then(send_queue_depth) {
                Some(pending) if pending > 0 => {
                    stalled_rounds += 1;
                    if stalled_rounds >= STREAM_STALL_ROUNDS {
                        return; // stalled subscriber: free the slot
                    }
                }
                _ => stalled_rounds = 0,
            }
            if writer.chunk(STREAM_KEEPALIVE).is_err() {
                return;
            }
            continue;
        }
        for event in &batch {
            let mut line = event.encode().to_string();
            line.push('\n');
            if writer.chunk(line.as_bytes()).is_err() {
                return; // subscriber went away
            }
        }
        position = next;
        if closed && batch.is_empty() {
            break;
        }
    }
    let _ = writer.finish();
}

// ---------------------------------------------------------------------
// Submission codec
// ---------------------------------------------------------------------

/// Builds the `POST /jobs` body for a suite reference (`suite:s27`).
pub fn submission_for_suite(reference: &str, config: &RunConfig) -> Json {
    Json::Obj(vec![
        ("circuit".into(), Json::Str(reference.into())),
        ("config".into(), Json::Obj(encode_config(config))),
    ])
}

/// Builds the `POST /jobs` body for inline `.bench` text.
pub fn submission_for_bench(name: &str, bench: &str, config: &RunConfig) -> Json {
    Json::Obj(vec![
        (
            "circuit".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("bench".into(), Json::Str(bench.into())),
            ]),
        ),
        ("config".into(), Json::Obj(encode_config(config))),
    ])
}

/// Tags a submission body as a *shard job* covering universe indexes
/// `[lo, hi)`, with a free-form provenance label (the fleet coordinator
/// uses `fleet:<plan>/unit-<k>`). The job then produces a `gdf-shard`
/// document instead of a run artifact.
pub fn submission_with_shard(mut body: Json, lo: usize, hi: usize, tag: &str) -> Json {
    if let Json::Obj(fields) = &mut body {
        fields.push((
            "shard".into(),
            ShardSpec {
                lo,
                hi,
                tag: tag.into(),
            }
            .encode(),
        ));
    }
    body
}

/// Adds runtime options to a submission body built by the helpers
/// above. Pass `checkpoint_every: None` to leave the cadence to the
/// server's configured default.
pub fn submission_with_runtime(
    mut body: Json,
    parallelism: usize,
    checkpoint_every: Option<usize>,
) -> Json {
    if let Json::Obj(fields) = &mut body {
        fields.push(("parallelism".into(), Json::Num(parallelism as f64)));
        if let Some(every) = checkpoint_every {
            fields.push(("checkpoint_every".into(), Json::Num(every as f64)));
        }
    }
    body
}

/// Decodes a submission: `circuit` (suite ref string or `{name, bench}`
/// object) plus an optional, *partial* `config` object — absent fields
/// take the [`RunConfig::new`] defaults, and both the CLI-style short
/// forms (`"universe": "stems"`, decimal seeds) and the artifact-style
/// full forms (universe objects, hex seeds) are accepted.
pub fn decode_submission(j: &Json, default_checkpoint: usize) -> Result<JobSpec, String> {
    let source = match j.get("circuit") {
        Some(Json::Str(reference)) => {
            let Some(name) = reference.strip_prefix("suite:") else {
                return Err(format!(
                    "circuit string must be `suite:<name>`, got `{reference}`"
                ));
            };
            let circuit = gdf_netlist::suite::by_name(name)
                .ok_or_else(|| format!("unknown suite circuit `{name}`"))?;
            CircuitSource::suite(&circuit, name)
        }
        Some(obj @ Json::Obj(_)) => {
            if let Some(Json::Str(reference)) = obj.get("ref") {
                let Some(name) = reference.strip_prefix("suite:") else {
                    return Err(format!("unknown circuit reference `{reference}`"));
                };
                let circuit = gdf_netlist::suite::by_name(name)
                    .ok_or_else(|| format!("unknown suite circuit `{name}`"))?;
                CircuitSource::suite(&circuit, name)
            } else {
                let bench = obj
                    .get("bench")
                    .and_then(Json::as_str)
                    .ok_or("circuit object needs a `bench` field with .bench text")?;
                let name = obj
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("circuit")
                    .to_string();
                let circuit = gdf_netlist::parse_bench(&name, bench)
                    .map_err(|e| format!("bad .bench source: {e}"))?;
                CircuitSource::bench(&circuit, bench)
            }
        }
        _ => return Err("submission needs a `circuit` (suite ref or {name, bench})".into()),
    };
    // Both arms above already proved the source resolves (suite lookup /
    // parse_bench), so a bad submission fails here at POST time and the
    // worker's later resolve() cannot surprise.
    let config = decode_submission_config(j.get("config"))?;
    let shard = match j.get("shard") {
        None | Some(Json::Null) => None,
        Some(s) => {
            let shard = ShardSpec::decode(s)?;
            // Validate the range against the enumerated universe at POST
            // time, like every other submission field — a worker must
            // not be the first to notice a bad range.
            let circuit = source.resolve().map_err(|e| e.to_string())?;
            let total = config
                .model
                .model()
                .enumerate(&circuit, &config.universe)
                .len();
            if shard.hi > total {
                return Err(format!(
                    "shard range [{}‥{}) does not fit a universe of {total} faults",
                    shard.lo, shard.hi
                ));
            }
            Some(shard)
        }
    };
    Ok(JobSpec {
        source,
        config,
        // Stamped by the submit handler from the authorized token,
        // never taken from the body — a client cannot claim a tenant.
        tenant: None,
        parallelism: j
            .get("parallelism")
            .and_then(Json::as_usize)
            .unwrap_or(1)
            .clamp(1, 64),
        checkpoint_every: j
            .get("checkpoint_every")
            .and_then(Json::as_usize)
            .unwrap_or(default_checkpoint)
            .max(1),
        shard,
    })
}

fn decode_submission_config(j: Option<&Json>) -> Result<RunConfig, String> {
    // Backend/model/universe names go through the same parsers the CLI
    // uses (`Backend::from_str`, `ModelKind::from_str`,
    // `Sensitization::from_str`, `FaultUniverse::parse_name`), so a
    // spelling `gdf run` accepts can never be a 400 here.
    let backend = match j.and_then(|c| c.get("backend")).and_then(Json::as_str) {
        None => Backend::NonScan,
        Some(name) => name.parse()?,
    };
    let mut config = RunConfig::new(backend);
    let Some(j) = j else { return Ok(config) };
    if let Some(name) = j.get("model").and_then(Json::as_str) {
        // `RunConfig::apply_model_name` carries the compat shim: PR 4
        // clients sent the sensitization under `model`
        // (robust/non-robust), and those submissions keep working.
        config.apply_model_name(name)?;
    }
    if let Some(name) = j.get("sensitization").and_then(Json::as_str) {
        config.sensitization = name.parse()?;
    }
    config.validate().map_err(|e| e.to_string())?;
    match j.get("universe") {
        None => {}
        Some(Json::Str(name)) => config.universe = FaultUniverse::parse_name(name)?,
        Some(u @ Json::Obj(_)) => {
            let flag =
                |name: &str, default: bool| u.get(name).and_then(Json::as_bool).unwrap_or(default);
            let defaults = FaultUniverse::default();
            config.universe = FaultUniverse {
                include_pi_stems: flag("pi_stems", defaults.include_pi_stems),
                include_ppi_stems: flag("ppi_stems", defaults.include_ppi_stems),
                include_branches: flag("branches", defaults.include_branches),
            };
        }
        Some(_) => return Err("universe must be a string or an object".into()),
    }
    match j.get("seed") {
        None => {}
        Some(Json::Num(_)) => {
            config.seed = j
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("seed must be a non-negative integer")?;
        }
        // String seeds follow the CLI's `--seed` grammar: decimal, or
        // hex with an explicit `0x` prefix — "123" must mean 123.
        Some(Json::Str(s)) => {
            config.seed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            }
            .map_err(|_| format!("bad seed `{s}`"))?;
        }
        Some(_) => return Err("seed must be a number or hex string".into()),
    }
    if let Some(l) = j.get("limits") {
        let field = |name: &str| l.get(name).and_then(Json::as_usize);
        let field_u32 = |name: &str| -> Result<Option<u32>, String> {
            field(name)
                .map(|v| u32::try_from(v).map_err(|_| format!("limit `{name}` out of range")))
                .transpose()
        };
        let mut limits = Limits::new();
        if let Some(v) = field_u32("local_backtrack_limit")? {
            limits = limits.with_local_backtrack_limit(v);
        }
        if let Some(v) = field_u32("sequential_backtrack_limit")? {
            limits = limits.with_sequential_backtrack_limit(v);
        }
        if let Some(v) = field("max_propagation_frames") {
            limits = limits.with_max_propagation_frames(v);
        }
        if let Some(v) = field("max_sync_frames") {
            limits = limits.with_max_sync_frames(v);
        }
        if let Some(v) = field("max_observation_retries") {
            limits = limits.with_max_observation_retries(v);
        }
        if let Some(v) = field("max_stuckat_frames") {
            limits = limits.with_max_stuckat_frames(v);
        }
        config.limits = limits;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_round_trip_suite() {
        let config = RunConfig::new(Backend::StuckAt).with_seed(0xBEEF);
        let body = submission_with_runtime(submission_for_suite("suite:s27", &config), 2, Some(8));
        let spec = decode_submission(&body, 16).unwrap();
        assert_eq!(spec.config, config);
        assert_eq!(spec.source.reference.as_deref(), Some("suite:s27"));
        assert_eq!(spec.parallelism, 2);
        assert_eq!(spec.checkpoint_every, 8);
        // Without an explicit cadence, the server's default applies.
        let body = submission_with_runtime(submission_for_suite("suite:s27", &config), 2, None);
        let spec = decode_submission(&body, 16).unwrap();
        assert_eq!(spec.checkpoint_every, 16);
    }

    #[test]
    fn submission_partial_config_takes_defaults() {
        let body = Json::parse(
            r#"{"circuit": "suite:s27", "config": {"backend": "stuck-at", "seed": 7}}"#,
        )
        .unwrap();
        let spec = decode_submission(&body, 16).unwrap();
        assert_eq!(spec.config.backend, Backend::StuckAt);
        assert_eq!(spec.config.seed, 7);
        assert_eq!(spec.config.limits, Limits::default());
        assert_eq!(spec.checkpoint_every, 16);
    }

    #[test]
    fn submission_inline_bench() {
        let bench = gdf_netlist::to_bench(&gdf_netlist::suite::s27());
        let body = submission_for_bench("mine", &bench, &RunConfig::new(Backend::NonScan));
        let spec = decode_submission(&body, 16).unwrap();
        assert_eq!(spec.source.name, "mine");
        assert!(spec.source.reference.is_none());
        assert!(spec.source.resolve().is_ok());
    }

    #[test]
    fn submission_shard_tag() {
        let config = RunConfig::new(Backend::NonScan);
        let body = submission_with_shard(
            submission_for_suite("suite:s27", &config),
            2,
            9,
            "fleet:p/unit-0",
        );
        let spec = decode_submission(&body, 16).unwrap();
        let shard = spec.shard.expect("shard survives decoding");
        assert_eq!((shard.lo, shard.hi), (2, 9));
        assert_eq!(shard.tag, "fleet:p/unit-0");

        // A range beyond the enumerated universe is rejected at POST
        // time.
        let body = submission_with_shard(
            submission_for_suite("suite:s27", &config),
            0,
            1_000_000,
            "fleet:p/unit-1",
        );
        assert!(decode_submission(&body, 16).is_err());
    }

    #[test]
    fn submission_rejects_garbage() {
        for bad in [
            r#"{}"#,
            r#"{"circuit": "s27"}"#,
            r#"{"circuit": "suite:nope"}"#,
            r#"{"circuit": {"bench": "INPUT("}}"#,
            r#"{"circuit": "suite:s27", "config": {"backend": "quantum"}}"#,
            r#"{"circuit": "suite:s27", "config": {"universe": "everything"}}"#,
            r#"{"circuit": "suite:s27", "config": {"seed": "0xZZ"}}"#,
        ] {
            let parsed = Json::parse(bad).unwrap();
            assert!(decode_submission(&parsed, 16).is_err(), "accepted {bad}");
        }
    }
}
