//! Bloom-gated campaign-wide static compaction.
//!
//! [`gdf_core::compact_sequences`] compacts one run; a campaign has many
//! circuits, and the interesting question at campaign scale is the same
//! one at sequence scale: *does this sequence still contribute a fault
//! nothing kept so far covers?* This module runs the reverse-order
//! greedy pass over **all** circuits of a campaign, with one shared
//! seeded double-hashing [`Bloom`] over detected-fault signatures
//! (`circuit name ⊕ fault description`) gating the exact checks:
//!
//! * bloom says **definitely unseen** for any fault the sequence detects
//!   → the sequence provably contributes; keep it without touching the
//!   exact sets (the fast path — sound because the bloom is a superset
//!   of everything ever marked covered);
//! * bloom says **possibly seen** for all of them → consult the exact
//!   per-circuit covered set and keep only on a real contribution.
//!
//! Decisions are therefore *identical* to running
//! [`gdf_core::compact_sequences`] per circuit — the bloom changes the
//! cost, never the answer — so the emitted global [`CampaignSet`]
//! re-grades to coverage equal to (hence ≥) the per-circuit compacted
//! sets, which the integration tests assert through
//! [`gdf_core::session::grade_patterns`].

use crate::bloom::Bloom;
use crate::store::StoreError;
use gdf_core::driver::{DelayAtpg, DelayAtpgConfig, FaultClassification, FsimScratch};
use gdf_core::engine::Backend;
use gdf_core::json::Json;
use gdf_core::{PatternSet, RunArtifact};
use gdf_netlist::{Circuit, DelayFault};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// The global compacted pattern document: one compacted [`PatternSet`]
/// per campaign circuit, plus the compaction accounting.
#[derive(Debug, Clone)]
pub struct CampaignSet {
    /// Bloom seed the compaction ran with (reproducibility record).
    pub seed: u64,
    /// Total vectors across all circuits before compaction.
    pub patterns_before: u32,
    /// Total vectors across all circuits after compaction.
    pub patterns_after: u32,
    /// One compacted set per circuit, in campaign order.
    pub sets: Vec<PatternSet>,
}

impl CampaignSet {
    /// Pattern-count reduction, `0.0..1.0`.
    pub fn reduction(&self) -> f64 {
        if self.patterns_before == 0 {
            0.0
        } else {
            1.0 - self.patterns_after as f64 / self.patterns_before as f64
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("format".into(), Json::Str("gdf-campaign-patterns".into())),
            ("version".into(), Json::Num(1.0)),
            ("seed".into(), Json::Str(format!("{:#x}", self.seed))),
            (
                "patterns_before".into(),
                Json::Num(self.patterns_before as f64),
            ),
            (
                "patterns_after".into(),
                Json::Num(self.patterns_after as f64),
            ),
            (
                "sets".into(),
                Json::Arr(
                    self.sets
                        .iter()
                        .map(|s| Json::parse(&s.encode()).expect("pattern sets encode as JSON"))
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    /// Parses the document produced by [`CampaignSet::encode`].
    pub fn decode(text: &str) -> Result<Self, StoreError> {
        let corrupt = |what: &str| StoreError::Unsupported(format!("campaign set: {what}"));
        let j = Json::parse(text).map_err(|e| corrupt(&format!("bad JSON: {e}")))?;
        if j.get("format").and_then(Json::as_str) != Some("gdf-campaign-patterns") {
            return Err(corrupt("not a gdf-campaign-patterns document"));
        }
        let seed_text = j
            .get("seed")
            .and_then(Json::as_str)
            .ok_or_else(|| corrupt("missing seed"))?;
        let digits = seed_text.strip_prefix("0x").unwrap_or(seed_text);
        let seed = u64::from_str_radix(digits, 16).map_err(|_| corrupt("bad seed"))?;
        let num = |key: &str| -> Result<u32, StoreError> {
            j.get(key)
                .and_then(Json::as_f64)
                .map(|n| n as u32)
                .ok_or_else(|| corrupt(&format!("missing {key}")))
        };
        let mut sets = Vec::new();
        for set in j
            .get("sets")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupt("missing sets"))?
        {
            sets.push(
                PatternSet::decode(&set.pretty())
                    .map_err(|e| corrupt(&format!("embedded set: {e}")))?,
            );
        }
        Ok(CampaignSet {
            seed,
            patterns_before: num("patterns_before")?,
            patterns_after: num("patterns_after")?,
            sets,
        })
    }

    /// Writes the document atomically through the artifact I/O facade.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        gdf_core::io::write_atomic(path, &self.encode())
            .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and decodes a campaign-set file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let text = gdf_core::io::read_to_string(path)
            .map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&text)
    }
}

/// Result of [`compact_campaign`]: the compacted document plus the
/// bloom's work accounting.
#[derive(Debug, Clone)]
pub struct CampaignCompaction {
    /// The compacted pattern document.
    pub set: CampaignSet,
    /// Sequences kept via the bloom's sound "definitely unseen" fast
    /// path (no exact-set consultation needed).
    pub bloom_fast_keeps: u64,
    /// Sequences that needed the exact per-circuit covered set.
    pub exact_checks: u64,
    /// Distinct fault signatures inserted into the bloom.
    pub signatures: u64,
}

/// Compacts all runs of a campaign into one global pattern document.
///
/// Each entry pairs a resolved circuit with its **complete** non-scan
/// run artifact; anything else is an [`StoreError::Unsupported`] named
/// error. `bloom_seed` seeds the filter (the answer is seed-independent;
/// only which path derived it varies).
pub fn compact_campaign(
    runs: &[(Circuit, RunArtifact)],
    bloom_seed: u64,
) -> Result<CampaignCompaction, StoreError> {
    // Size the filter for every decided fault in the campaign.
    let universe: usize = runs.iter().map(|(_, a)| a.total()).sum();
    let mut bloom = Bloom::for_items(universe.max(1), bloom_seed);
    let mut result = CampaignCompaction {
        set: CampaignSet {
            seed: bloom_seed,
            patterns_before: 0,
            patterns_after: 0,
            sets: Vec::new(),
        },
        bloom_fast_keeps: 0,
        exact_checks: 0,
        signatures: 0,
    };

    for (circuit, artifact) in runs {
        let name = &artifact.circuit.name;
        if artifact.partial {
            return Err(StoreError::Unsupported(format!(
                "cannot compact `{name}`: artifact is a partial checkpoint"
            )));
        }
        let config = artifact.config();
        if config.backend != Backend::NonScan {
            return Err(StoreError::Unsupported(format!(
                "cannot compact `{name}`: compaction needs a non-scan run, got `{}`",
                config.backend
            )));
        }
        let run = artifact
            .to_run(circuit)
            .map_err(|e| StoreError::Unsupported(format!("`{name}`: {e}")))?;
        let atpg = DelayAtpg::with_config(
            circuit,
            DelayAtpgConfig::new()
                .with_model(config.model)
                .with_sensitization(config.sensitization)
                .with_universe(config.universe)
                .with_xfill_seed(config.seed)
                .with_limits(config.limits),
        );

        let tested: Vec<DelayFault> = run
            .records
            .iter()
            .filter(|r| r.classification == FaultClassification::Tested)
            .filter_map(|r| r.fault.as_delay())
            .collect();
        // Stable per-fault signature, disambiguated across circuits: two
        // circuits naming a net `G17` must not share bloom entries by
        // accident of spelling.
        let signature = |f: DelayFault| format!("{name}\u{1f}{}", f.describe(circuit));

        let mut scratch = FsimScratch::default();
        let detection: Vec<Vec<usize>> = run
            .sequences
            .iter()
            .enumerate()
            .map(|(i, seq)| {
                let relied: &[gdf_netlist::NodeId] = run.relied_ppos.get(i).map_or(&[], |r| r);
                let mut rng = StdRng::seed_from_u64(atpg.config().xfill_seed);
                atpg.fault_simulate_sequence(seq, relied, &tested, &mut rng, &mut scratch)
                    .expect("non-scan runs carry at-speed sequences")
            })
            .collect();

        // Reverse-order greedy with the bloom as the sound fast path.
        let mut covered = vec![false; tested.len()];
        let mut kept_rev: Vec<usize> = Vec::new();
        for idx in (0..run.sequences.len()).rev() {
            let hits = &detection[idx];
            if hits.is_empty() {
                continue;
            }
            let definitely_new = hits
                .iter()
                .any(|&f| !bloom.contains(signature(tested[f]).as_bytes()));
            let contributes = if definitely_new {
                result.bloom_fast_keeps += 1;
                true
            } else {
                result.exact_checks += 1;
                hits.iter().any(|&f| !covered[f])
            };
            if contributes {
                kept_rev.push(idx);
                for &f in hits {
                    if !covered[f] {
                        covered[f] = true;
                        bloom.insert(signature(tested[f]).as_bytes());
                        result.signatures += 1;
                    }
                }
            }
        }
        kept_rev.reverse();

        let full = PatternSet::from_run(
            circuit,
            &run,
            &config.backend.to_string(),
            config.seed,
            Some(artifact.circuit.clone()),
        );
        result.set.patterns_before += full.total_vectors() as u32;
        let compacted = PatternSet {
            circuit: full.circuit.clone(),
            backend: full.backend.clone(),
            seed: full.seed,
            patterns: kept_rev.iter().map(|&i| full.patterns[i].clone()).collect(),
        };
        result.set.patterns_after += compacted.total_vectors() as u32;
        result.set.sets.push(compacted);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_core::engine::{Atpg, RunConfig};
    use gdf_core::{compact_sequences, CircuitSource};
    use gdf_netlist::suite;

    fn run_with(circuit: &Circuit, config: RunConfig) -> gdf_core::AtpgRun {
        Atpg::builder(circuit)
            .backend(config.backend)
            .model(config.model)
            .sensitization(config.sensitization)
            .universe(config.universe)
            .limits(config.limits)
            .seed(config.seed)
            .build()
            .run()
    }

    fn non_scan_artifact(circuit: &Circuit, suite_name: &str) -> RunArtifact {
        let config = RunConfig::new(Backend::NonScan);
        let run = run_with(circuit, config);
        RunArtifact::from_run(
            circuit,
            &run,
            config,
            Some(CircuitSource::suite(circuit, suite_name)),
        )
    }

    #[test]
    fn campaign_compaction_matches_per_circuit_greedy() {
        let circuits = ["s27", "s42"];
        let runs: Vec<(Circuit, RunArtifact)> = circuits
            .iter()
            .map(|n| {
                let c = suite::by_name(n).expect("suite circuit");
                let a = non_scan_artifact(&c, n);
                (c, a)
            })
            .collect();
        let result = compact_campaign(&runs, 0xb1004).unwrap();
        assert_eq!(result.set.sets.len(), circuits.len());
        assert!(result.set.patterns_after <= result.set.patterns_before);
        assert!(result.bloom_fast_keeps + result.exact_checks > 0);

        // The bloom changes cost, never the answer: kept sets must equal
        // per-circuit reverse-greedy compaction exactly.
        for ((circuit, artifact), set) in runs.iter().zip(&result.set.sets) {
            let config = artifact.config();
            let atpg = DelayAtpg::with_config(
                circuit,
                DelayAtpgConfig::new()
                    .with_model(config.model)
                    .with_sensitization(config.sensitization)
                    .with_universe(config.universe)
                    .with_xfill_seed(config.seed)
                    .with_limits(config.limits),
            );
            let run = artifact.to_run(circuit).unwrap();
            let solo = compact_sequences(&atpg, &run);
            let solo_sequences: Vec<_> = solo
                .kept
                .iter()
                .map(|&i| run.sequences[i].clone())
                .collect();
            let ours: Vec<_> = set.patterns.iter().map(|p| p.sequence.clone()).collect();
            assert_eq!(ours, solo_sequences, "{}", artifact.circuit.name);
        }
    }

    #[test]
    fn campaign_set_document_round_trips() {
        let c = suite::s27();
        let runs = vec![(c.clone(), non_scan_artifact(&c, "s27"))];
        let result = compact_campaign(&runs, 1).unwrap();
        let text = result.set.encode();
        let back = CampaignSet::decode(&text).unwrap();
        assert_eq!(back.sets.len(), 1);
        assert_eq!(back.patterns_after, result.set.patterns_after);
        assert_eq!(
            back.sets[0].patterns.len(),
            result.set.sets[0].patterns.len()
        );
        assert_eq!(back.seed, 1);
    }

    #[test]
    fn partial_and_foreign_artifacts_are_named_errors() {
        let c = suite::s27();
        let mut artifact = non_scan_artifact(&c, "s27");
        artifact.partial = true;
        let err = compact_campaign(&[(c.clone(), artifact)], 0).unwrap_err();
        assert!(matches!(err, StoreError::Unsupported(_)), "{err}");

        let stuck_config = RunConfig::new(Backend::StuckAt);
        let run = run_with(&c, stuck_config);
        let stuck = RunArtifact::from_run(&c, &run, stuck_config, None);
        let err = compact_campaign(&[(c.clone(), stuck)], 0).unwrap_err();
        assert!(matches!(err, StoreError::Unsupported(_)), "{err}");
    }
}
