//! Seeded double-hashing bloom filter.
//!
//! The campaign compactor asks one question millions of times: *has any
//! kept sequence already detected this fault?* The exact answer lives in
//! per-circuit bit-sets, but consulting them means an O(candidates) scan
//! per sequence; the bloom filter answers "definitely not" in a handful
//! of probes. Its error is one-sided — a "no" is always true, a "maybe"
//! falls back to the exact set — which is exactly the shape a sound fast
//! path needs.
//!
//! Construction: the probe sequence for a key is classic double hashing,
//! `h1 + i·h2` over a power-of-two bit array. `h1` is seeded
//! SipHash-2-4, `h2` is seeded FNV-1a forced odd — odd strides over a
//! power-of-two table are full-cycle, so the `k` probes never collapse
//! onto fewer distinct bits. The seed makes filter behaviour (and any
//! false-positive pattern) reproducible run to run, like every other
//! randomized component in this workspace.

use gdf_core::digest::{fnv1a64, siphash24};

/// A fixed-size bloom filter with deterministic, seeded hashing.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    mask: u64,
    probes: u32,
    seed: u64,
    inserted: u64,
}

impl Bloom {
    /// A filter sized for `expected_items` at roughly 1% false-positive
    /// rate (10 bits/item, 7 probes — the standard operating point).
    pub fn for_items(expected_items: usize, seed: u64) -> Self {
        Self::with_bits(expected_items.saturating_mul(10).max(64), 7, seed)
    }

    /// A filter with at least `min_bits` bits (rounded up to a power of
    /// two) and `probes` probes per key.
    pub fn with_bits(min_bits: usize, probes: u32, seed: u64) -> Self {
        let nbits = min_bits.next_power_of_two().max(64);
        Bloom {
            bits: vec![0u64; nbits / 64],
            mask: (nbits - 1) as u64,
            probes: probes.max(1),
            seed,
            inserted: 0,
        }
    }

    fn h1(&self, key: &[u8]) -> u64 {
        siphash24(self.seed, 0x626c_6f6f_6d5f_6831, key)
    }

    fn h2(&self, key: &[u8]) -> u64 {
        // Forced odd: odd strides are coprime with the power-of-two
        // table size, so the probe walk is full-cycle.
        (fnv1a64(key) ^ self.seed.rotate_left(32)) | 1
    }

    /// Sets the key's bits. Returns `true` if the key was *possibly*
    /// present already (every probe bit was set before the insert).
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let (h1, h2) = (self.h1(key), self.h2(key));
        let mut was_present = true;
        for i in 0..self.probes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask;
            let (word, shift) = ((bit / 64) as usize, bit % 64);
            was_present &= self.bits[word] >> shift & 1 == 1;
            self.bits[word] |= 1 << shift;
        }
        self.inserted += 1;
        was_present
    }

    /// `false` means the key was definitely never inserted; `true` means
    /// possibly inserted.
    pub fn contains(&self, key: &[u8]) -> bool {
        let (h1, h2) = (self.h1(key), self.h2(key));
        (0..self.probes as u64).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2))) & self.mask;
            self.bits[(bit / 64) as usize] >> (bit % 64) & 1 == 1
        })
    }

    /// Number of `insert` calls so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set, `0.0..=1.0` — a saturation diagnostic.
    pub fn fill(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / ((self.mask + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = Bloom::for_items(1000, 42);
        let keys: Vec<String> = (0..1000).map(|i| format!("fault-sig-{i}")).collect();
        for k in &keys {
            bloom.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(
                bloom.contains(k.as_bytes()),
                "inserted key {k} reported absent"
            );
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable_at_design_load() {
        let mut bloom = Bloom::for_items(1000, 7);
        for i in 0..1000 {
            bloom.insert(format!("member-{i}").as_bytes());
        }
        let false_positives = (0..10_000)
            .filter(|i| bloom.contains(format!("outsider-{i}").as_bytes()))
            .count();
        // Design point is ~1%; accept an order of magnitude of slack so
        // the test never flakes on hash alignment.
        assert!(
            false_positives < 1000,
            "{false_positives}/10000 false positives"
        );
        assert!(bloom.fill() < 0.75);
    }

    #[test]
    fn seed_changes_the_probe_pattern_deterministically() {
        let mut a1 = Bloom::with_bits(256, 4, 1);
        let mut a2 = Bloom::with_bits(256, 4, 1);
        let mut b = Bloom::with_bits(256, 4, 2);
        for i in 0..20 {
            let key = format!("k{i}");
            a1.insert(key.as_bytes());
            a2.insert(key.as_bytes());
            b.insert(key.as_bytes());
        }
        assert_eq!(a1.bits, a2.bits, "same seed must reproduce exactly");
        assert_ne!(a1.bits, b.bits, "different seeds must differ");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bloom = Bloom::for_items(10, 0);
        assert!(!bloom.contains(b"anything"));
        assert_eq!(bloom.inserted(), 0);
    }
}
