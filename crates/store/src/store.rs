//! The content-addressed object store.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/objects/<32-hex-digest>.json   object content
//! <root>/refs/<name>.ref.json           named handle -> object digest
//! ```
//!
//! Objects are immutable and self-verifying — the file name *is* the
//! digest of the content, so a reader can always detect corruption
//! structurally. Refs are the liveness roots: [`Store::gc`] marks every
//! object reachable from a valid ref and sweeps the rest, plus any
//! `*.tmp` stragglers a crashed atomic write left behind.
//!
//! # Chaos posture
//!
//! All persistence goes through the `gdf_core::io` facade, so
//! `ChaosDisk` covers the store like every other artifact writer. Two
//! rules keep chaos survivable:
//!
//! * **Writes verify.** [`Store::put`] and [`Store::link`] read the
//!   destination back *raw* (bypassing the facade, as the fleet
//!   coordinator's `save_verified` does) and retry on mismatch, so a
//!   torn write that lied about success cannot leave a silently corrupt
//!   object or ref behind a returned `Ok`.
//! * **Destruction double-checks.** `gc()` and `get()` re-read raw
//!   before acting on an apparent corruption, so an injected *read*
//!   fault can never cause a live object to be swept or a good object to
//!   be reported corrupt.

use gdf_core::digest::Digest;
use gdf_core::json::Json;
use std::fmt;
use std::path::{Path, PathBuf};

/// How often a verifying write retries before reporting failure.
const WRITE_RETRIES: usize = 8;

/// Errors of the store. Hostile names are a named error, never a panic,
/// matching the hostile-bytes posture of the artifact decoders.
#[derive(Debug)]
pub enum StoreError {
    /// The object/ref name failed validation (path traversal, absolute
    /// path, separator, hidden-file prefix, or empty).
    BadName(String),
    /// A `link` targeted an object the store does not hold.
    MissingObject(Digest),
    /// On-disk content failed structural verification even on a raw
    /// re-read.
    Corrupt { what: String, path: PathBuf },
    /// An underlying I/O failure.
    Io(String),
    /// The operation does not apply to the given input (e.g. compacting
    /// a partial or non-delay artifact).
    Unsupported(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadName(name) => write!(
                f,
                "bad store name {name:?}: names are [A-Za-z0-9._-]+, no leading dot, \
                 no path separators"
            ),
            StoreError::MissingObject(d) => write!(f, "no object {d} in the store"),
            StoreError::Corrupt { what, path } => {
                write!(f, "corrupt {what} at {}", path.display())
            }
            StoreError::Io(msg) => write!(f, "store i/o: {msg}"),
            StoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{context} {}: {e}", path.display()))
}

/// Validates an externally-supplied ref name. The accepted alphabet
/// (`[A-Za-z0-9._-]`, no leading dot) makes traversal syntactically
/// impossible: no separators, no `..` path steps, no absolute paths, no
/// NUL — a valid name always resolves to a child of `refs/`.
pub fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 200
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_');
    if ok {
        Ok(())
    } else {
        Err(StoreError::BadName(name.to_string()))
    }
}

/// Summary of one [`Store::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Objects referenced by at least one valid ref (kept).
    pub live_objects: usize,
    /// Unreferenced objects deleted.
    pub swept_objects: usize,
    /// Bytes reclaimed from swept objects.
    pub swept_bytes: u64,
    /// `*.tmp` stragglers deleted (crashed atomic writes).
    pub swept_tmps: usize,
    /// Unreadable/undecodable refs renamed to `*.corrupt` — their names
    /// stop resolving, and their (unknowable) targets become sweepable
    /// next pass.
    pub quarantined_refs: usize,
}

impl fmt::Display for GcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: {} live, swept {} objects ({} bytes) + {} temps, quarantined {} refs",
            self.live_objects,
            self.swept_objects,
            self.swept_bytes,
            self.swept_tmps,
            self.quarantined_refs
        )
    }
}

/// Size summary of a store, as surfaced by `/metrics` and `gdf store
/// stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Object count.
    pub objects: usize,
    /// Ref count.
    pub refs: usize,
    /// Total object bytes (the `gdf_store_bytes` gauge).
    pub bytes: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects, {} refs, {} bytes",
            self.objects, self.refs, self.bytes
        )
    }
}

/// The content-addressed store.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let store = Store { root: root.into() };
        for dir in [store.objects_dir(), store.refs_dir()] {
            std::fs::create_dir_all(&dir).map_err(|e| io_err("create", &dir, &e))?;
        }
        Ok(store)
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn refs_dir(&self) -> PathBuf {
        self.root.join("refs")
    }

    fn object_path(&self, digest: &Digest) -> PathBuf {
        self.objects_dir().join(format!("{digest}.json"))
    }

    fn ref_path(&self, name: &str) -> PathBuf {
        self.refs_dir().join(format!("{name}.ref.json"))
    }

    /// Writes `want` to `path` through the facade and verifies the raw
    /// bytes landed, retrying a bounded number of times. Success means
    /// the destination *provably* holds `want`.
    fn write_verified(&self, path: &Path, want: &str) -> Result<(), StoreError> {
        let mut last: Option<std::io::Error> = None;
        for _ in 0..WRITE_RETRIES {
            match gdf_core::io::write_atomic(path, want) {
                Ok(()) => {}
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            }
            // Verify raw: chaos read faults must not fail a good write.
            if std::fs::read_to_string(path).is_ok_and(|got| got == want) {
                return Ok(());
            }
        }
        Err(StoreError::Io(format!(
            "write not durable after {WRITE_RETRIES} attempts at {}{}",
            path.display(),
            last.map(|e| format!(" (last error: {e})"))
                .unwrap_or_default()
        )))
    }

    /// Stores `text`, returning its digest. Idempotent: re-putting
    /// existing content verifies (and repairs, if a past torn write lied)
    /// rather than rewriting blindly.
    pub fn put(&self, text: &str) -> Result<Digest, StoreError> {
        let digest = Digest::of_text(text);
        let path = self.object_path(&digest);
        if let Ok(existing) = std::fs::read_to_string(&path) {
            if existing == text {
                return Ok(digest);
            }
        }
        self.write_verified(&path, text)?;
        Ok(digest)
    }

    /// Whether the store holds an object for `digest` (content verified).
    pub fn contains(&self, digest: &Digest) -> bool {
        std::fs::read_to_string(self.object_path(digest))
            .is_ok_and(|text| Digest::of_text(&text) == *digest)
    }

    /// Fetches an object, verifying its content against its address.
    /// `Ok(None)` when absent; [`StoreError::Corrupt`] when present but
    /// failing verification even on a raw re-read.
    pub fn get(&self, digest: &Digest) -> Result<Option<String>, StoreError> {
        let path = self.object_path(digest);
        if let Ok(text) = gdf_core::io::read_to_string(&path) {
            if Digest::of_text(&text) == *digest {
                return Ok(Some(text));
            }
        }
        // Facade read failed or mis-verified — decide on raw bytes.
        match std::fs::read_to_string(&path) {
            Ok(text) if Digest::of_text(&text) == *digest => Ok(Some(text)),
            Ok(_) => Err(StoreError::Corrupt {
                what: "object".into(),
                path,
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &path, &e)),
        }
    }

    fn encode_ref(name: &str, digest: &Digest) -> String {
        Json::Obj(vec![
            ("format".into(), Json::Str("gdf-store-ref".into())),
            ("version".into(), Json::Num(1.0)),
            ("name".into(), Json::Str(name.to_string())),
            ("object".into(), Json::Str(digest.hex())),
        ])
        .pretty()
    }

    fn decode_ref(text: &str) -> Option<Digest> {
        let j = Json::parse(text).ok()?;
        if j.get("format")?.as_str()? != "gdf-store-ref" {
            return None;
        }
        j.get("object")?.as_str()?.parse().ok()
    }

    /// Points `name` at `digest`. The object must already be stored; the
    /// ref write is verified, so a returned `Ok` means the name durably
    /// resolves.
    pub fn link(&self, name: &str, digest: &Digest) -> Result<(), StoreError> {
        validate_name(name)?;
        if !self.contains(digest) {
            return Err(StoreError::MissingObject(*digest));
        }
        self.write_verified(&self.ref_path(name), &Self::encode_ref(name, digest))
    }

    /// Resolves a name to its object digest. `Ok(None)` when absent;
    /// [`StoreError::Corrupt`] when the ref exists but cannot be decoded
    /// even from raw bytes (a `gc()` pass will quarantine it).
    pub fn resolve(&self, name: &str) -> Result<Option<Digest>, StoreError> {
        validate_name(name)?;
        let path = self.ref_path(name);
        if let Ok(text) = gdf_core::io::read_to_string(&path) {
            if let Some(digest) = Self::decode_ref(&text) {
                return Ok(Some(digest));
            }
        }
        match std::fs::read_to_string(&path) {
            Ok(text) => match Self::decode_ref(&text) {
                Some(digest) => Ok(Some(digest)),
                None => Err(StoreError::Corrupt {
                    what: "ref".into(),
                    path,
                }),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &path, &e)),
        }
    }

    /// `resolve` + `get` in one step — the cache-lookup primitive.
    pub fn get_named(&self, name: &str) -> Result<Option<String>, StoreError> {
        let _span = gdf_core::phase::start("store_get");
        match self.resolve(name)? {
            None => Ok(None),
            Some(digest) => self.get(&digest),
        }
    }

    /// `put` + `link` in one step — the cache-publish primitive.
    pub fn publish(&self, name: &str, text: &str) -> Result<Digest, StoreError> {
        let _span = gdf_core::phase::start("store_publish");
        validate_name(name)?;
        let digest = self.put(text)?;
        self.link(name, &digest)?;
        Ok(digest)
    }

    /// Removes a name (the object stays until the next `gc`). Returns
    /// whether the name existed.
    pub fn unlink(&self, name: &str) -> Result<bool, StoreError> {
        validate_name(name)?;
        let path = self.ref_path(name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", &path, &e)),
        }
    }

    /// All valid ref names, sorted.
    pub fn names(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = self
            .dir_files(&self.refs_dir())?
            .into_iter()
            .filter_map(|p| {
                p.file_name()?
                    .to_str()?
                    .strip_suffix(".ref.json")
                    .map(str::to_string)
            })
            .collect();
        names.sort();
        Ok(names)
    }

    fn dir_files(&self, dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        let entries = std::fs::read_dir(dir).map_err(|e| io_err("list", dir, &e))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", dir, &e))?;
            if entry
                .file_type()
                .map_err(|e| io_err("stat", dir, &e))?
                .is_file()
            {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// 1. Delete `*.tmp` stragglers in both directories — a temp file is
    ///    never authoritative (its rename either happened or never
    ///    will), so deleting one can neither orphan a live object nor
    ///    resurrect a dead one.
    /// 2. Mark: decode every ref; a ref unreadable even from raw bytes
    ///    is quarantined (renamed `*.corrupt`) so it stops resolving —
    ///    liveness is defined by *resolvable* names.
    /// 3. Sweep: delete every object file whose name is not a marked
    ///    digest (including files whose name is not a digest at all —
    ///    they are unreachable by construction).
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let mut report = GcReport::default();

        for dir in [self.objects_dir(), self.refs_dir()] {
            for path in self.dir_files(&dir)? {
                if path.extension().is_some_and(|e| e == "tmp")
                    && std::fs::remove_file(&path).is_ok()
                {
                    report.swept_tmps += 1;
                }
            }
        }

        let mut live: std::collections::BTreeSet<Digest> = std::collections::BTreeSet::new();
        for path in self.dir_files(&self.refs_dir())? {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.ends_with(".ref.json") {
                continue; // quarantined leftovers and foreign files
            }
            // Raw read: an injected read fault must not get a valid ref
            // quarantined (which would let its live target be swept).
            match std::fs::read_to_string(&path)
                .ok()
                .as_deref()
                .and_then(Self::decode_ref)
            {
                Some(digest) => {
                    live.insert(digest);
                }
                None => {
                    let mut quarantined = path.clone();
                    quarantined.as_mut_os_string().push(".corrupt");
                    if std::fs::rename(&path, &quarantined).is_ok() {
                        report.quarantined_refs += 1;
                    }
                }
            }
        }
        report.live_objects = live.len();

        for path in self.dir_files(&self.objects_dir())? {
            let digest: Option<Digest> = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|stem| stem.parse().ok());
            let is_live = digest.as_ref().is_some_and(|d| live.contains(d));
            if !is_live && path.extension().is_some_and(|e| e == "json") {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if std::fs::remove_file(&path).is_ok() {
                    report.swept_objects += 1;
                    report.swept_bytes += bytes;
                }
            }
        }
        Ok(report)
    }

    /// Current size counters.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut stats = StoreStats::default();
        for path in self.dir_files(&self.objects_dir())? {
            if path.extension().is_some_and(|e| e == "json") {
                stats.objects += 1;
                stats.bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            }
        }
        stats.refs = self.names()?.len();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("gdf-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let store = temp_store("roundtrip");
        let d1 = store.put("{\"doc\":1}").unwrap();
        let d2 = store.put("{\"doc\":1}").unwrap();
        assert_eq!(d1, d2, "identical content must share one address");
        assert_eq!(store.get(&d1).unwrap().as_deref(), Some("{\"doc\":1}"));
        assert_eq!(store.stats().unwrap().objects, 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn hostile_names_are_named_errors_not_panics() {
        let store = temp_store("hostile");
        let digest = store.put("x").unwrap();
        for name in [
            "",
            ".",
            "..",
            "../escape",
            "/etc/passwd",
            "a/b",
            "a\\b",
            ".hidden",
            "nul\0byte",
            "name with space",
            &"x".repeat(201),
        ] {
            assert!(
                matches!(store.link(name, &digest), Err(StoreError::BadName(_))),
                "{name:?} must be rejected"
            );
            assert!(matches!(store.resolve(name), Err(StoreError::BadName(_))));
        }
        // Nothing escaped into or out of the refs dir.
        assert_eq!(store.names().unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn link_requires_a_stored_object() {
        let store = temp_store("missing");
        let ghost = Digest::of_text("never stored");
        assert!(matches!(
            store.link("ghost", &ghost),
            Err(StoreError::MissingObject(_))
        ));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_sweeps_only_unreferenced_objects() {
        let store = temp_store("gc");
        let live = store.put("live content").unwrap();
        let dead = store.put("dead content").unwrap();
        store.link("keeper", &live).unwrap();
        // A straggler temp from a "crashed" write.
        std::fs::write(store.root().join("objects/half.json.tmp"), "part").unwrap();

        let report = store.gc().unwrap();
        assert_eq!(report.live_objects, 1);
        assert_eq!(report.swept_objects, 1);
        assert_eq!(report.swept_tmps, 1);
        assert!(report.swept_bytes > 0);
        assert_eq!(store.get(&live).unwrap().as_deref(), Some("live content"));
        assert_eq!(
            store.get(&dead).unwrap(),
            None,
            "dead object must stay dead"
        );

        // Unlink, then the object becomes sweepable.
        assert!(store.unlink("keeper").unwrap());
        let report = store.gc().unwrap();
        assert_eq!(report.swept_objects, 1);
        assert_eq!(store.stats().unwrap().objects, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_object_is_reported_not_trusted() {
        let store = temp_store("corrupt");
        let digest = store.put("authentic").unwrap();
        std::fs::write(
            store.root().join(format!("objects/{digest}.json")),
            "forged",
        )
        .unwrap();
        assert!(matches!(
            store.get(&digest),
            Err(StoreError::Corrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_ref_quarantines_and_heals() {
        let store = temp_store("refheal");
        let digest = store.put("the object").unwrap();
        store.link("good", &digest).unwrap();
        std::fs::write(store.root().join("refs/torn.ref.json"), "{\"form").unwrap();
        assert!(matches!(
            store.resolve("torn"),
            Err(StoreError::Corrupt { .. })
        ));
        let report = store.gc().unwrap();
        assert_eq!(report.quarantined_refs, 1);
        assert_eq!(report.live_objects, 1);
        // The torn name no longer resolves (heals to a miss), the good
        // name still does.
        assert_eq!(store.resolve("torn").unwrap(), None);
        assert_eq!(store.resolve("good").unwrap(), Some(digest));
        let _ = std::fs::remove_dir_all(store.root());
    }
}
