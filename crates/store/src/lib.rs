//! Content-addressed artifact store with exact result caching and
//! bloom-gated campaign compaction.
//!
//! The ROADMAP's service story ends with many users submitting the same
//! few benchmark circuits under the same few configurations — and the
//! determinism invariant (same circuit + config ⇒ byte-identical
//! canonical artifact, proven across serial/parallel/resumed/served/
//! fleet runs) turns that duplication into free work. This crate is the
//! piece that captures it:
//!
//! * [`Store`] — objects keyed by the 128-bit [`Digest`] of their
//!   canonical text under `objects/`, named handles under `refs/`,
//!   mark-and-sweep [`Store::gc`]. Every write and read goes through the
//!   `gdf_core::io` facade, so the chaos suite's torn-write/stale-temp
//!   faults exercise the store for free; destructive decisions (sweeps,
//!   quarantines) re-check raw bytes first so an injected *read* fault
//!   can never delete a live object.
//! * [`CacheKey`] — the exact result cache key,
//!   `(circuit digest, RunConfig digest)`. A hit is not a heuristic: the
//!   stored bytes are the bytes a fresh run would produce.
//! * [`Bloom`] + [`compact_campaign`] — a seeded double-hashing bloom
//!   filter over detected-fault signatures gates cross-circuit
//!   reverse-order compaction of a whole campaign. The bloom's one-sided
//!   error is aimed so the fast path is sound: "definitely not seen"
//!   keeps a sequence immediately; "possibly seen" falls back to the
//!   exact per-circuit covered set. Decisions are therefore identical to
//!   per-circuit [`gdf_core::compact_sequences`], and the emitted global
//!   [`gdf_core::PatternSet`]s re-grade to the same coverage.

pub mod bloom;
pub mod cache;
pub mod compact;
pub mod store;

pub use bloom::Bloom;
pub use cache::CacheKey;
pub use compact::{compact_campaign, CampaignCompaction, CampaignSet};
pub use gdf_core::digest::Digest;
pub use store::{GcReport, Store, StoreError, StoreStats};
