//! Exact result-cache keys.
//!
//! A cache entry is addressed by `(circuit digest, RunConfig digest)` —
//! the two inputs that fully determine a run's canonical artifact. The
//! determinism suite (serial ≡ parallel ≡ resumed ≡ served ≡ fleet)
//! is what upgrades this from "probably the same" to *exact*: the bytes
//! behind a hit are the bytes a fresh run would produce, so serving them
//! is indistinguishable from recomputing. Shard entries additionally pin
//! the `[lo, hi)` fault range, since a shard artifact's content depends
//! on it.

use gdf_core::artifact::CircuitSource;
use gdf_core::digest::{config_digest, Digest};
use gdf_core::engine::RunConfig;

/// The two-digest cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Digest of the circuit source's canonical encoding.
    pub circuit: Digest,
    /// Digest of the run configuration's canonical encoding.
    pub config: Digest,
}

impl CacheKey {
    /// The key for a full run of `source` under `config`.
    pub fn new(source: &CircuitSource, config: &RunConfig) -> Self {
        CacheKey {
            circuit: source.digest(),
            config: config_digest(config),
        }
    }

    /// Store ref name for the full-run artifact.
    pub fn run_name(&self) -> String {
        format!("run-{}-{}", self.circuit, self.config)
    }

    /// Store ref name for the `[lo, hi)` shard artifact.
    pub fn shard_name(&self, lo: usize, hi: usize) -> String {
        format!("shard-{}-{}-{lo}-{hi}", self.circuit, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::validate_name;
    use gdf_core::engine::Backend;
    use gdf_netlist::suite;

    #[test]
    fn key_separates_circuit_and_config() {
        let s27 = CircuitSource::suite(&suite::s27(), "s27");
        let s42 = CircuitSource::suite(&suite::by_name("s42").unwrap(), "s42");
        let base = RunConfig::new(Backend::NonScan);
        let a = CacheKey::new(&s27, &base);
        assert_eq!(a, CacheKey::new(&s27, &base), "stable across calls");
        assert_ne!(a, CacheKey::new(&s42, &base));
        assert_ne!(a, CacheKey::new(&s27, &base.with_seed(7)));
    }

    #[test]
    fn generated_names_pass_store_validation() {
        let source = CircuitSource::suite(&suite::s27(), "s27");
        let key = CacheKey::new(&source, &RunConfig::new(Backend::NonScan));
        validate_name(&key.run_name()).unwrap();
        validate_name(&key.shard_name(0, 17)).unwrap();
        assert_ne!(key.shard_name(0, 8), key.shard_name(8, 17));
    }
}
