//! `gdf-obs` — the unified observability layer: one metrics registry,
//! one trace format, one profiler, shared by every crate in the
//! workspace.
//!
//! Three pieces, all hand-rolled in the workspace's no-crates.io
//! discipline:
//!
//! - [`metrics`]: a [`Registry`] of counters, gauges, and log-bucketed
//!   [`Histogram`]s with exact p50/p90/p99 readout, behind the single
//!   Prometheus text-exposition encoder used by `GET /metrics`, the
//!   fleet coordinator, and the CLI dashboards.
//! - [`trace`]: digest-derived [`TraceId`] / [`SpanId`] identity (never
//!   wall-clock random), NDJSON trace documents, the `X-Gdf-Trace`
//!   propagation header, and chrome://tracing export.
//! - [`profile`]: the [`Profiler`] run observer and the
//!   [`RegistrySink`] bridging `gdf_core::phase` timings into
//!   histograms and per-job traces.
//!
//! Everything is a side channel: no canonical artifact byte depends on
//! anything this crate records, which is what keeps the determinism
//! invariants (serial ≡ parallel ≡ resumed ≡ served ≡ fleet) intact
//! with observability fully enabled.

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Kind, Registry};
pub use profile::{
    capture_begin, capture_take, install_phase_sink, PhaseRecord, PhaseStat, ProfileData,
    ProfileHandle, Profiler, RegistrySink, PHASE_HELP, PHASE_METRIC,
};
pub use trace::{
    chrome_trace, OpenSpan, SpanId, TraceCtx, TraceEvent, TraceId, Tracer, TRACE_HEADER,
};
