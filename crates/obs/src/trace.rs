//! Structured tracing: digest-derived span identity, NDJSON trace
//! documents, and chrome://tracing export.
//!
//! Identity never comes from wall-clock randomness: a [`TraceCtx`] root
//! is the `gdf_core::digest` of a caller-chosen seed string (job id +
//! spec digest, fleet plan digest, …), and children chain by digesting
//! the parent identity plus the span name. Two runs of the same campaign
//! therefore carry the same trace id — which is exactly what makes
//! cross-node correlation greppable — while span *timings* are ordinary
//! wall time, kept strictly outside every canonical artifact.
//!
//! The wire contract is one header: `X-Gdf-Trace: <32-hex trace>-<16-hex
//! span>`. A server receiving it parents the job's trace under the
//! caller's campaign; a server receiving nothing derives a fresh root.
//! Trace documents are NDJSON (one [`TraceEvent`] per line), written in
//! a single atomic pass through the `ArtifactIo` facade so a torn write
//! can lose a trace but never corrupt one partially.

use gdf_core::digest::{fnv1a64, Digest};
use gdf_core::json::Json;
use std::sync::Mutex;
use std::time::Instant;

/// The name of the trace propagation header.
pub const TRACE_HEADER: &str = "x-gdf-trace";

/// A 128-bit trace identifier (32 lowercase hex digits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub Digest);

impl TraceId {
    /// The 32-hex rendering.
    pub fn hex(&self) -> String {
        self.0.hex()
    }
}

/// A 64-bit span identifier (16 lowercase hex digits).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The 16-hex rendering.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// A propagation context: which trace, and which span is the current
/// parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The campaign-wide trace identifier.
    pub trace: TraceId,
    /// The span submissions made under this context parent to.
    pub span: SpanId,
}

impl TraceCtx {
    /// Derives a root context from a seed string — deterministic, never
    /// wall-clock random.
    pub fn root(seed: &str) -> Self {
        TraceCtx {
            trace: TraceId(Digest::of_text(seed)),
            span: SpanId(fnv1a64(seed.as_bytes())),
        }
    }

    /// Derives a child context (same trace, new span) by digesting the
    /// parent identity plus `name`.
    pub fn child(&self, name: &str) -> Self {
        let d = Digest::of_text(&format!(
            "{}/{}/{}",
            self.trace.hex(),
            self.span.hex(),
            name
        ));
        TraceCtx {
            trace: self.trace,
            span: SpanId(d.a),
        }
    }

    /// The `X-Gdf-Trace` header value: `<trace>-<span>`.
    pub fn header_value(&self) -> String {
        format!("{}-{}", self.trace.hex(), self.span.hex())
    }

    /// Parses a header value; `None` on any malformation (tracing is
    /// best-effort — a bad header means a fresh root, not an error).
    pub fn parse(s: &str) -> Option<Self> {
        let (trace, span) = s.trim().split_once('-')?;
        if span.len() != 16 || !span.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let digest: Digest = trace.parse().ok()?;
        let span = u64::from_str_radix(span, 16).ok()?;
        Some(TraceCtx {
            trace: TraceId(digest),
            span: SpanId(span),
        })
    }
}

/// One completed span, as serialized to the NDJSON trace document.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's identifier.
    pub span: SpanId,
    /// The parent span, if any.
    pub parent: Option<SpanId>,
    /// Stage name (`parse`, `generate`, `fill`, `fsim`, …).
    pub name: String,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceEvent {
    /// One compact NDJSON line (no trailing newline).
    pub fn encode_line(&self) -> String {
        let parent = match self.parent {
            Some(p) => format!("\"{}\"", p.hex()),
            None => "null".to_string(),
        };
        format!(
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            self.trace.hex(),
            self.span.hex(),
            parent,
            escape(&self.name),
            self.start_us,
            self.dur_us,
        )
    }

    /// Parses one NDJSON line; `None` on any malformation.
    pub fn decode_line(line: &str) -> Option<TraceEvent> {
        let json = Json::parse(line).ok()?;
        let trace: Digest = json.get("trace")?.as_str()?.parse().ok()?;
        let span = json.get("span")?.as_str()?;
        if span.len() != 16 {
            return None;
        }
        let span = u64::from_str_radix(span, 16).ok()?;
        let parent = match json.get("parent")? {
            Json::Null => None,
            Json::Str(p) => Some(SpanId(u64::from_str_radix(p, 16).ok()?)),
            _ => return None,
        };
        Some(TraceEvent {
            trace: TraceId(trace),
            span: SpanId(span),
            parent,
            name: json.get("name")?.as_str()?.to_string(),
            start_us: json.get("start_us")?.as_u64()?,
            dur_us: json.get("dur_us")?.as_u64()?,
        })
    }
}

/// Collects the spans of one traced unit of work (a job) and encodes
/// them as an NDJSON document. Span ids are derived from the context
/// plus a per-tracer sequence number — unique within the trace, never
/// random.
pub struct Tracer {
    ctx: TraceCtx,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    next: Mutex<u64>,
}

/// An open span handed out by [`Tracer::start`]; give it back to
/// [`Tracer::finish`] when the stage completes.
pub struct OpenSpan {
    span: SpanId,
    name: String,
    started: Instant,
}

impl Tracer {
    /// A tracer rooted at `ctx`; the epoch (t=0 of every `start_us`) is
    /// now.
    pub fn new(ctx: TraceCtx) -> Self {
        Tracer {
            ctx,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            next: Mutex::new(0),
        }
    }

    /// The context this tracer parents its spans under.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// The tracer's epoch instant (t=0 of `start_us`).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn next_span(&self, name: &str) -> SpanId {
        let mut next = self.next.lock().unwrap_or_else(|e| e.into_inner());
        let seq = *next;
        *next += 1;
        self.ctx.child(&format!("{name}#{seq}")).span
    }

    /// Opens a span named `name` starting now.
    pub fn start(&self, name: &str) -> OpenSpan {
        OpenSpan {
            span: self.next_span(name),
            name: name.to_string(),
            started: Instant::now(),
        }
    }

    /// Closes an open span and records it.
    pub fn finish(&self, open: OpenSpan) {
        let start_us = open
            .started
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_micros() as u64;
        let dur_us = open.started.elapsed().as_micros() as u64;
        self.push(open.span, &open.name, start_us, dur_us);
    }

    /// Records a completed span by explicit offsets (used when timings
    /// were captured elsewhere, e.g. the engine phase sink).
    pub fn record(&self, name: &str, start_us: u64, dur_us: u64) {
        self.push(self.next_span(name), name, start_us, dur_us);
    }

    fn push(&self, span: SpanId, name: &str, start_us: u64, dur_us: u64) {
        let event = TraceEvent {
            trace: self.ctx.trace,
            span,
            parent: Some(self.ctx.span),
            name: name.to_string(),
            start_us,
            dur_us,
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// Encodes the root span (named `root_name`, covering the whole
    /// epoch-to-now interval) followed by every recorded span, one
    /// NDJSON line each.
    pub fn encode(&self, root_name: &str) -> String {
        let root = TraceEvent {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: None,
            name: root_name.to_string(),
            start_us: 0,
            dur_us: self.epoch.elapsed().as_micros() as u64,
        };
        let events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        out.push_str(&root.encode_line());
        out.push('\n');
        for e in events.iter() {
            out.push_str(&e.encode_line());
            out.push('\n');
        }
        out
    }
}

/// Converts an NDJSON trace document to chrome://tracing JSON (the
/// "trace event format": complete `ph:"X"` events with microsecond
/// timestamps). Lines that fail to parse are skipped — a torn tail
/// never blocks exporting the intact prefix — but a document with no
/// valid line at all is an error.
pub fn chrome_trace(ndjson: &str) -> Result<Json, String> {
    let mut events = Vec::new();
    for line in ndjson.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(e) = TraceEvent::decode_line(line) else {
            continue;
        };
        let mut args = vec![
            ("trace".to_string(), Json::Str(e.trace.hex())),
            ("span".to_string(), Json::Str(e.span.hex())),
        ];
        if let Some(p) = e.parent {
            args.push(("parent".to_string(), Json::Str(p.hex())));
        }
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(e.name.clone())),
            ("cat".to_string(), Json::Str("gdf".to_string())),
            ("ph".to_string(), Json::Str("X".to_string())),
            ("ts".to_string(), Json::Num(e.start_us as f64)),
            ("dur".to_string(), Json::Num(e.dur_us as f64)),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(1.0)),
            ("args".to_string(), Json::Obj(args)),
        ]));
    }
    if events.is_empty() {
        return Err("no valid trace events in input".to_string());
    }
    Ok(Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_round_trips_through_the_header() {
        let root = TraceCtx::root("gdf-job:7:abc");
        let parsed = TraceCtx::parse(&root.header_value()).expect("parses");
        assert_eq!(parsed, root);
        // Derivation is deterministic and never from the clock.
        assert_eq!(TraceCtx::root("gdf-job:7:abc"), root);
        assert_ne!(TraceCtx::root("gdf-job:8:abc").trace, root.trace);
        let child = root.child("unit:3");
        assert_eq!(child.trace, root.trace);
        assert_ne!(child.span, root.span);
        assert_eq!(root.child("unit:3"), child);
    }

    #[test]
    fn malformed_headers_parse_to_none() {
        for bad in ["", "zz", "abc-def", "0123-0123456789abcdef", "x"] {
            assert!(TraceCtx::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn event_lines_round_trip() {
        let ctx = TraceCtx::root("seed");
        let e = TraceEvent {
            trace: ctx.trace,
            span: SpanId(42),
            parent: Some(ctx.span),
            name: "fsim".to_string(),
            start_us: 17,
            dur_us: 1000,
        };
        let line = e.encode_line();
        assert_eq!(TraceEvent::decode_line(&line), Some(e));
        assert!(TraceEvent::decode_line("{\"torn\":").is_none());
    }

    #[test]
    fn tracer_encodes_root_plus_spans_and_chrome_export_parses() {
        let t = Tracer::new(TraceCtx::root("job"));
        let s = t.start("parse");
        t.finish(s);
        t.record("fill", 5, 10);
        let doc = t.encode("job:1");
        assert_eq!(doc.lines().count(), 3);
        for line in doc.lines() {
            assert!(TraceEvent::decode_line(line).is_some(), "bad line {line}");
        }
        let chrome = chrome_trace(&doc).expect("exports");
        let events = chrome.get("traceEvents").and_then(|e| e.as_array());
        assert_eq!(events.map(|e| e.len()), Some(3));
        // The export survives a torn tail.
        let torn = format!("{}{}", doc, "{\"trace\":\"00");
        assert!(chrome_trace(&torn).is_ok());
        assert!(chrome_trace("").is_err());
    }
}
