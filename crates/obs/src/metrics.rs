//! The metrics registry: counters, gauges, and log-bucketed histograms
//! behind a single Prometheus text-exposition encoder.
//!
//! Everything is hand-rolled on `std::sync::atomic`, in the same
//! no-crates.io discipline as `gdf_core::json`. The registry is the one
//! place series are declared (name, help, type, labels); handles are
//! cheap `Arc`-backed clones that callers update lock-free. `render()`
//! walks families in registration order and emits valid Prometheus text
//! — the encoder shared by `GET /metrics`, the fleet coordinator, and
//! the CLI dashboards.
//!
//! The [`Histogram`] replaces window-sampled quantiles: values (in
//! microseconds) land in log-spaced buckets — 32 sub-buckets per
//! power of two, HDR style — so p50/p90/p99 read out exactly (to ~3%
//! bucket resolution) over *every* observation ever made, not a biased
//! most-recent window. Quantile readout is deterministic nearest-rank
//! over the cumulative bucket counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two,
/// bounding the relative quantile error at ~3%.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;

/// Bucket count for the full `u64` microsecond range: 32 linear buckets
/// below 32, then 32 per octave for each of the 59 octaves from 2^5
/// through 2^63 (top index: msb 63, sub 31 → 1919).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the log bucket holding `v` (microseconds).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (msb - SUB_BITS + 1) as usize * SUB + sub
    }
}

/// Lower bound of bucket `i` — the deterministic representative value
/// reported for any observation that landed in it.
fn bucket_value(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i / SUB) as u32;
        let sub = (i % SUB) as u64;
        let msb = octave + SUB_BITS - 1;
        (1u64 << msb) | (sub << (msb - SUB_BITS))
    }
}

/// A monotone counter. Clones share the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge storing an `f64`. Clones share the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log-bucketed histogram over microsecond values with exact
/// nearest-rank quantile readout. Rendered as a Prometheus `summary`
/// (quantile series plus `_sum`/`_count`).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one microsecond value.
    pub fn observe_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duration (saturating at `u64::MAX` microseconds).
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Nearest-rank quantile in microseconds; 0 when empty. Walks the
    /// cumulative bucket counts — deterministic for a fixed set of
    /// observations, no sampling window.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(BUCKETS - 1)
    }

    /// Nearest-rank quantile in seconds; 0.0 when empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_us(q) as f64 / 1e6
    }
}

/// The type of a metric family, for the `# TYPE` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotone counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Histogram rendered as a Prometheus summary.
    Summary,
}

impl Kind {
    fn text(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Summary => "summary",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Rendered label body (`key="value",...`, empty for unlabeled) →
    /// series, in insertion order; sorted at render time.
    series: Vec<(String, Series)>,
}

/// A shared registry of metric families. Cheap to clone; all clones see
/// the same families. Registration is get-or-create: asking twice for
/// the same (name, labels) returns a handle to the same cell, so crates
/// can register independently without coordinating.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Family>>>,
}

/// Renders a label value with Prometheus escaping.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_body(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out
}

/// Formats a sample value: finite floats via `Display`, anything
/// non-finite as 0 (the exposition must never carry NaN).
fn fmt_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Series {
        let key = label_body(labels);
        let mut fams = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        debug_assert_eq!(
            fam.kind, kind,
            "metric {name} re-registered with a new type"
        );
        if let Some((_, s)) = fam.series.iter().find(|(k, _)| *k == key) {
            return s.clone();
        }
        let s = match kind {
            Kind::Counter => Series::Counter(Counter::default()),
            Kind::Gauge => Series::Gauge(Gauge::default()),
            Kind::Summary => Series::Histogram(Arc::new(Histogram::default())),
        };
        fam.series.push((key, s.clone()));
        s
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Get-or-create an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.series(name, help, Kind::Summary, labels) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Encodes every family as Prometheus text exposition: `# HELP` and
    /// `# TYPE` headers, families in registration order, series within a
    /// family sorted by label body for a stable readout.
    pub fn render(&self) -> String {
        let fams = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for fam in fams.iter() {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.text()));
            let mut series: Vec<&(String, Series)> = fam.series.iter().collect();
            series.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, s) in series {
                match s {
                    Series::Counter(c) => {
                        push_sample(&mut out, &fam.name, labels, &format!("{}", c.get()));
                    }
                    Series::Gauge(g) => {
                        push_sample(&mut out, &fam.name, labels, &fmt_value(g.get()));
                    }
                    Series::Histogram(h) => {
                        for q in ["0.5", "0.9", "0.99"] {
                            let quantile = q.parse::<f64>().expect("static quantile");
                            let with_q = if labels.is_empty() {
                                format!("quantile=\"{q}\"")
                            } else {
                                format!("{labels},quantile=\"{q}\"")
                            };
                            push_sample(
                                &mut out,
                                &fam.name,
                                &with_q,
                                &fmt_value(h.quantile_seconds(quantile)),
                            );
                        }
                        push_sample(
                            &mut out,
                            &format!("{}_sum", fam.name),
                            labels,
                            &fmt_value(h.sum_seconds()),
                        );
                        push_sample(
                            &mut out,
                            &format!("{}_count", fam.name),
                            labels,
                            &format!("{}", h.count()),
                        );
                    }
                }
            }
        }
        out
    }
}

fn push_sample(out: &mut String, name: &str, labels: &str, value: &str) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_value_are_consistent() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 1_000_000, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let lo = bucket_value(i);
            assert!(lo <= v, "bucket lower bound {lo} above value {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_value(i + 1) > v, "value {v} beyond bucket {i}");
            }
        }
        // Lower bounds are strictly increasing — buckets never overlap.
        for i in 1..BUCKETS {
            assert!(bucket_value(i) > bucket_value(i - 1));
        }
    }

    #[test]
    fn histogram_quantiles_are_exact_at_bucket_resolution() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.5) as f64;
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 {p99}");
        // The empty histogram reads 0, never NaN.
        let empty = Histogram::default();
        assert_eq!(empty.quantile_seconds(0.5), 0.0);
    }

    #[test]
    fn histogram_is_not_window_biased() {
        // A window sampler would forget the early tail; the histogram
        // keeps every observation, so one huge late value cannot shift
        // p50 and an early outlier still shows at p99.
        let h = Histogram::default();
        h.observe_us(1_000_000); // early outlier
        for _ in 0..2000 {
            h.observe_us(100);
        }
        assert!(h.quantile_us(0.5) <= 104);
        assert!(h.quantile_us(0.9999) >= 900_000);
    }

    #[test]
    fn render_emits_valid_prometheus_text() {
        let r = Registry::new();
        let c = r.counter("gdf_test_total", "A counter.");
        c.add(3);
        let g = r.gauge("gdf_test_depth", "A gauge.");
        g.set(2.5);
        let h = r.histogram("gdf_test_seconds", "A summary.");
        h.observe_us(1500);
        let labeled = r.counter_with("gdf_test_http_total", "Labeled.", &[("code", "200")]);
        labeled.inc();
        let text = r.render();
        assert!(text.contains("# TYPE gdf_test_total counter"));
        assert!(text.contains("gdf_test_total 3\n"));
        assert!(text.contains("# TYPE gdf_test_depth gauge"));
        assert!(text.contains("gdf_test_depth 2.5\n"));
        assert!(text.contains("# TYPE gdf_test_seconds summary"));
        assert!(text.contains("gdf_test_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("gdf_test_seconds_count 1\n"));
        assert!(text.contains("gdf_test_http_total{code=\"200\"} 1\n"));
    }

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        r.counter("gdf_once_total", "Once.").inc();
        r.counter("gdf_once_total", "Once.").inc();
        assert_eq!(r.counter("gdf_once_total", "Once.").get(), 2);
        // Only one family line in the render.
        let text = r.render();
        assert_eq!(text.matches("# TYPE gdf_once_total").count(), 1);
    }
}
