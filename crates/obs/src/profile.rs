//! Engine profiling: the [`Profiler`] observer, the registry-backed
//! [`RegistrySink`] for `gdf_core::phase` timings, and the per-thread
//! phase capture that turns those timings into per-job trace spans and
//! profile summaries.
//!
//! Everything here is a side channel. The profiler only *reads* the
//! observer stream; phase records only *time* stages. Neither can
//! perturb a single canonical byte — that is tested, not asserted.

use crate::metrics::{Histogram, Registry};
use gdf_core::json::Json;
use gdf_core::phase::PhaseSink;
use gdf_core::report::CircuitReport;
use gdf_core::{FaultRecord, Observer};
use std::cell::RefCell;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One phase timing captured on the current thread.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRecord {
    /// Stage name (`generate`, `fill`, `fsim`, …).
    pub phase: &'static str,
    /// When the stage started.
    pub started: Instant,
    /// How long it ran.
    pub duration: Duration,
}

thread_local! {
    static CAPTURE: RefCell<Option<Vec<PhaseRecord>>> = const { RefCell::new(None) };
}

/// Starts capturing phase records on the current thread (in addition
/// to the registry histograms). The engine runs its merge loop on the
/// calling thread, so a server worker wrapping a job in
/// `capture_begin`/`capture_take` sees that job's phases and no
/// other's.
pub fn capture_begin() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Stops capturing and returns everything recorded since
/// [`capture_begin`].
pub fn capture_take() -> Vec<PhaseRecord> {
    CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
}

/// The `gdf_core::phase::PhaseSink` that folds phase timings into a
/// [`Registry`] (as `gdf_engine_phase_seconds{phase=...}` summaries)
/// and mirrors them into the current thread's capture buffer when one
/// is active.
pub struct RegistrySink {
    registry: Registry,
    /// Small read-mostly cache: the phase set is a handful of static
    /// names, so a linear scan under a read lock beats re-entering the
    /// registry's mutex on every record.
    cache: RwLock<Vec<(&'static str, Arc<Histogram>)>>,
}

/// Help text of the per-phase histogram family.
pub const PHASE_HELP: &str =
    "Wall time per engine/job phase (packed fsim phases 1-3 aggregate under `fsim`).";

/// Name of the per-phase histogram family.
pub const PHASE_METRIC: &str = "gdf_engine_phase_seconds";

impl RegistrySink {
    /// A sink recording into `registry`.
    pub fn new(registry: Registry) -> Self {
        RegistrySink {
            registry,
            cache: RwLock::new(Vec::new()),
        }
    }

    fn histogram(&self, phase: &'static str) -> Arc<Histogram> {
        if let Some((_, h)) = self
            .cache
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .find(|(p, _)| *p == phase)
        {
            return h.clone();
        }
        let h = self
            .registry
            .histogram_with(PHASE_METRIC, PHASE_HELP, &[("phase", phase)]);
        let mut cache = self.cache.write().unwrap_or_else(|e| e.into_inner());
        if !cache.iter().any(|(p, _)| *p == phase) {
            cache.push((phase, h.clone()));
        }
        h
    }
}

impl PhaseSink for RegistrySink {
    fn record(&self, phase: &'static str, started: Instant, duration: Duration) {
        self.histogram(phase).observe(duration);
        CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                buf.push(PhaseRecord {
                    phase,
                    started,
                    duration,
                });
            }
        });
    }
}

/// Installs a [`RegistrySink`] over `registry` as the process-global
/// phase sink.
pub fn install_phase_sink(registry: Registry) {
    gdf_core::phase::set_phase_sink(Arc::new(RegistrySink::new(registry)));
}

/// Aggregated per-phase wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans.
    pub count: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
}

/// What one profiled run looked like: observer-stream statistics plus
/// the per-phase wall-time breakdown. Serialized as the optional
/// `profile` block on job summaries — and *never* into
/// `canonical_encode()`.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Total run wall time, microseconds.
    pub wall_us: u64,
    /// Faults in the run's universe.
    pub total_faults: u64,
    /// Faults decided (targeted or credited).
    pub decided: u64,
    /// Faults credited by fault simulation.
    pub credited: u64,
    /// Test sequences emitted.
    pub sequences: u64,
    /// Checkpoints observed.
    pub checkpoints: u64,
    /// Per-phase stats in first-seen order.
    pub phases: Vec<(&'static str, PhaseStat)>,
}

impl ProfileData {
    /// Folds captured phase records into the per-phase stats.
    pub fn add_phases(&mut self, records: &[PhaseRecord]) {
        for r in records {
            let stat = match self.phases.iter_mut().find(|(p, _)| *p == r.phase) {
                Some((_, s)) => s,
                None => {
                    self.phases.push((r.phase, PhaseStat::default()));
                    &mut self.phases.last_mut().expect("just pushed").1
                }
            };
            stat.count += 1;
            stat.total_us += r.duration.as_micros() as u64;
        }
    }

    /// The JSON `profile` block.
    pub fn to_json(&self) -> Json {
        let mut phases: Vec<(&'static str, PhaseStat)> = self.phases.clone();
        phases.sort_by_key(|(p, _)| *p);
        Json::Obj(vec![
            ("wall_us".to_string(), Json::Num(self.wall_us as f64)),
            (
                "total_faults".to_string(),
                Json::Num(self.total_faults as f64),
            ),
            ("decided".to_string(), Json::Num(self.decided as f64)),
            ("credited".to_string(), Json::Num(self.credited as f64)),
            ("sequences".to_string(), Json::Num(self.sequences as f64)),
            (
                "checkpoints".to_string(),
                Json::Num(self.checkpoints as f64),
            ),
            (
                "phases".to_string(),
                Json::Obj(
                    phases
                        .iter()
                        .map(|(p, s)| {
                            (
                                p.to_string(),
                                Json::Obj(vec![
                                    ("count".to_string(), Json::Num(s.count as f64)),
                                    ("total_us".to_string(), Json::Num(s.total_us as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A shared handle to a [`Profiler`]'s accumulating data.
#[derive(Clone, Default)]
pub struct ProfileHandle(Arc<Mutex<ProfileData>>);

impl ProfileHandle {
    /// A copy of the data accumulated so far.
    pub fn snapshot(&self) -> ProfileData {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Folds captured phase records in.
    pub fn add_phases(&self, records: &[PhaseRecord]) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .add_phases(records);
    }
}

/// A lightweight run observer recording wall time and stream counts.
/// Attach to an engine via `AtpgBuilder::observe`; read results from
/// the paired [`ProfileHandle`].
pub struct Profiler {
    started: Option<Instant>,
    data: Arc<Mutex<ProfileData>>,
}

impl Profiler {
    /// A profiler and the handle its results land in.
    pub fn new() -> (Profiler, ProfileHandle) {
        let handle = ProfileHandle::default();
        (
            Profiler {
                started: None,
                data: handle.0.clone(),
            },
            handle,
        )
    }
}

impl Observer for Profiler {
    fn on_run_start(
        &mut self,
        _engine: &'static str,
        _circuit: &gdf_netlist::Circuit,
        total_faults: usize,
    ) {
        self.started = Some(Instant::now());
        self.data
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .total_faults = total_faults as u64;
    }

    fn on_fault(&mut self, record: &FaultRecord) {
        let mut data = self.data.lock().unwrap_or_else(|e| e.into_inner());
        data.decided += 1;
        if record.by_simulation {
            data.credited += 1;
        }
    }

    fn on_sequence(&mut self, _index: usize, _sequence: &gdf_core::TestSequence) {
        self.data
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sequences += 1;
    }

    fn on_checkpoint(&mut self, _snapshot: &gdf_core::RunSnapshot<'_>) {
        self.data
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .checkpoints += 1;
    }

    fn on_run_end(&mut self, _report: &CircuitReport) {
        if let Some(started) = self.started {
            self.data.lock().unwrap_or_else(|e| e.into_inner()).wall_us =
                started.elapsed().as_micros() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_per_thread_and_drains() {
        capture_begin();
        let registry = Registry::new();
        let sink = RegistrySink::new(registry.clone());
        sink.record("fill", Instant::now(), Duration::from_micros(10));
        sink.record("fsim", Instant::now(), Duration::from_micros(20));
        let records = capture_take();
        assert_eq!(records.len(), 2);
        assert!(capture_take().is_empty(), "capture drained");
        // The registry got the histograms regardless of capture state.
        let text = registry.render();
        assert!(text.contains("gdf_engine_phase_seconds{phase=\"fill\",quantile=\"0.5\"}"));
        assert!(text.contains("gdf_engine_phase_seconds_count{phase=\"fsim\"} 1"));
    }

    #[test]
    fn profile_data_folds_phases_and_encodes() {
        let mut data = ProfileData::default();
        let now = Instant::now();
        data.add_phases(&[
            PhaseRecord {
                phase: "fill",
                started: now,
                duration: Duration::from_micros(5),
            },
            PhaseRecord {
                phase: "fill",
                started: now,
                duration: Duration::from_micros(7),
            },
        ]);
        assert_eq!(
            data.phases,
            vec![(
                "fill",
                PhaseStat {
                    count: 2,
                    total_us: 12
                }
            )]
        );
        let json = data.to_json();
        let fill = json
            .get("phases")
            .and_then(|p| p.get("fill"))
            .expect("fill");
        assert_eq!(fill.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(fill.get("total_us").and_then(Json::as_u64), Some(12));
    }
}
