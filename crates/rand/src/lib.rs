//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded by SplitMix64 — deterministic across platforms,
//! which is all the ATPG needs (reproducible X-fill, not cryptography).
//!
//! The stream differs from upstream `rand`'s `StdRng`; every consumer in
//! this workspace treats the seed as an opaque determinism handle, so
//! only self-consistency matters.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (the shim's stand-in
/// for `rand::distributions::Standard`).
pub trait Fill: Sized {
    /// Draws one value.
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for bool {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 != 0
    }
}

impl Fill for u64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Fill for u32 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Fill for f64 {
    fn fill_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Multiply-shift (Lemire). All arithmetic is widened to
                // 128 bits so full-width ranges (e.g. i64::MIN..i64::MAX,
                // span ≈ 2^64) neither overflow the product nor the
                // `lo + offset` reconstruction.
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let x = rng.next_u64() as u128;
                let offset = (x * span) >> 64;
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill_from(self)
    }

    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The full internal state, for checkpointing: a generator rebuilt
        /// with [`StdRng::from_state`] continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is not a valid xoshiro256**
        /// state (the stream would be constant zero).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero state is not a valid xoshiro256** state"
            );
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let lo = rng.gen_range(5u32..6);
        assert_eq!(lo, 5);
    }

    #[test]
    fn gen_range_full_width_spans() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
            let n = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&n));
            let u = rng.gen_range(0u64..u64::MAX);
            assert!(u < u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads {heads}");
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
