//! The complete branch-and-bound search of TDgen.
//!
//! Decision variables are primary-input values (each PI takes one of
//! `{0, 1, R, F}`) and pseudo-primary-input *initial* bits; everything else
//! follows by implication. Objectives (fault-effect propagation through the
//! D-frontier) are backtraced through the implication tables to a decision,
//! guided by SCOAP testability measures.
//!
//! Two value networks cooperate:
//!
//! * the **implication network** ([`ImplicationNet`]) holds arc-consistent
//!   sets under all constraints (including the excitation requirement at
//!   the fault site) — it provides conflict detection, pruning and
//!   objective guidance;
//! * a **forward functional check** recomputes value sets purely forward
//!   from the *decided* inputs (undecided inputs keep their full domains).
//!   Only this check declares success: if the forward image of an
//!   observation point is entirely fault-carrying, then *every* completion
//!   of the remaining don't-cares detects the fault — which is what the
//!   emitted test with `X` positions promises.
//!
//! Completeness comes from the decision tree covering the full PI/PPI
//! space; objectives are heuristics only. The paper's backtrack-limit
//! abort (default 100) sits on top.

use crate::network::{ImplicationNet, Implied, Sensitization};
use crate::result::{LocalObservation, LocalTest, PpoValue};
use gdf_algebra::delay::{DelaySet, DelayValue};
use gdf_algebra::logic3::{eval_gate3, Logic3};
use gdf_netlist::scoap::Testability;
use gdf_netlist::{Circuit, DelayFault, GateKind, NodeId};

/// Configuration of the local test generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TdGenConfig {
    /// Abort the fault after this many backtracks (paper: 100).
    pub backtrack_limit: u32,
    /// Robust (paper default) or non-robust fault model.
    pub sensitization: Sensitization,
}

impl Default for TdGenConfig {
    fn default() -> Self {
        TdGenConfig {
            backtrack_limit: 100,
            sensitization: Sensitization::Robust,
        }
    }
}

/// Result of local test generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdGenOutcome {
    /// A (possibly partially specified) two-pattern test was found.
    Test(LocalTest),
    /// The complete search space was exhausted: no robust local test
    /// exists under the model in force.
    Untestable,
    /// The backtrack limit was hit before the search finished.
    Aborted,
}

impl TdGenOutcome {
    /// Convenience accessor for the successful case.
    pub fn test(&self) -> Option<&LocalTest> {
        match self {
            TdGenOutcome::Test(t) => Some(t),
            _ => None,
        }
    }
}

/// The TDgen local test generator for one circuit.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct TdGen<'c> {
    circuit: &'c Circuit,
    config: TdGenConfig,
    testability: Testability,
}

#[derive(Debug)]
struct Decision {
    node: NodeId,
    /// The restriction currently applied.
    applied: DelaySet,
    /// Remaining alternative restrictions, tried back-to-front.
    alts: Vec<DelaySet>,
    trail_mark: usize,
}

/// Forward functional image: one set per node, plus the observation found.
struct ForwardImage {
    f: Vec<DelaySet>,
}

impl<'c> TdGen<'c> {
    /// Creates a generator with the default configuration.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_config(circuit, TdGenConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(circuit: &'c Circuit, config: TdGenConfig) -> Self {
        TdGen {
            circuit,
            config,
            testability: Testability::compute(circuit),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TdGenConfig {
        self.config
    }

    /// The circuit under test.
    ///
    /// `TdGen` holds no interior mutability — per-search state lives in
    /// locals — so one instance is safely shared by the unified engine's
    /// parallel workers.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Generates a local two-pattern test for `fault`.
    pub fn generate(&self, fault: DelayFault) -> TdGenOutcome {
        self.generate_with_constraints(fault, &[])
    }

    /// Like [`TdGen::generate`], with extra per-net set constraints applied
    /// before the search. The driver uses this for two of Figure 4's
    /// feedback edges: *propagation justification* (forcing additional
    /// PPOs to steady, specifiable values) and inter-phase backtracking
    /// (banning an observation PPO whose sequential propagation failed).
    ///
    /// An outcome of `Untestable` under non-empty constraints only proves
    /// untestability *under those constraints*.
    pub fn generate_with_constraints(
        &self,
        fault: DelayFault,
        constraints: &[(NodeId, DelaySet)],
    ) -> TdGenOutcome {
        let mut net = ImplicationNet::new(self.circuit, fault, self.config.sensitization);
        for &(node, set) in constraints {
            if !net.assign(node, set) {
                return TdGenOutcome::Untestable;
            }
        }
        // Any test must provoke the fault: pin the site to the provoking
        // transition up front (completeness is unaffected — every test has
        // this value at the site).
        let t = net.provoking_value();
        if !net.assign(fault.site.stem, DelaySet::singleton(t)) {
            return TdGenOutcome::Untestable;
        }
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks: u32 = 0;

        loop {
            let consistent = net.propagate() == Implied::Consistent;
            if consistent {
                let restr: Vec<(NodeId, DelaySet)> =
                    stack.iter().map(|d| (d.node, d.applied)).collect();
                let image = self.forward_image(&net, &restr);
                if self.forward_success(&net, &image).is_some() {
                    // Drop every state-bit decision the observation does
                    // not actually need: each kept one becomes a burden on
                    // the initialization phase.
                    let (restr, image) = self.minimize_state_decisions(&net, restr);
                    let obs = self
                        .forward_success(&net, &image)
                        .expect("minimization preserves success");
                    return TdGenOutcome::Test(self.extract(&net, &restr, &image, obs, backtracks));
                }
                if self.may_reach_observable(&net)
                    && self.pick_decision(&mut net, &mut stack).is_some()
                {
                    continue;
                }
            }
            // Backtrack.
            backtracks += 1;
            if backtracks > self.config.backtrack_limit {
                return TdGenOutcome::Aborted;
            }
            let mut retried = false;
            while let Some(mut d) = stack.pop() {
                net.rollback(d.trail_mark);
                if let Some(alt) = d.alts.pop() {
                    let _ = net.assign(d.node, alt);
                    d.applied = alt;
                    stack.push(d);
                    retried = true;
                    break;
                }
            }
            if !retried {
                return TdGenOutcome::Untestable;
            }
        }
    }

    /// The leaf domain of a decision variable: its natural domain
    /// intersected with every restriction the decision stack applies.
    fn leaf_set(&self, node: NodeId, stack: &[Decision]) -> DelaySet {
        let mut s = DelaySet::HAZARD_FREE;
        for d in stack {
            if d.node == node {
                s = s.intersect(d.applied);
            }
        }
        s
    }

    /// Same, over a plain restriction list.
    fn leaf_set_r(&self, node: NodeId, restr: &[(NodeId, DelaySet)]) -> DelaySet {
        let mut s = DelaySet::HAZARD_FREE;
        for &(n, r) in restr {
            if n == node {
                s = s.intersect(r);
            }
        }
        s
    }

    /// Computes the forward functional image from the decided leaves:
    /// undecided PIs keep their full 4-value domain, PPI finals follow the
    /// functionally determined PPO initial bits, and the fault site
    /// converts on its faulted edges. Correlation between reconvergent
    /// signals is lost in the set domain, so the image over-approximates —
    /// which makes the success check conservative (sound).
    fn forward_image(
        &self,
        net: &ImplicationNet<'_>,
        restr: &[(NodeId, DelaySet)],
    ) -> ForwardImage {
        let circuit = self.circuit;
        let n = circuit.num_nodes();

        // Pass 1: 3-valued initial-frame values (functional in leaf inits).
        let mut init3 = vec![Logic3::X; n];
        for &pi in circuit.inputs() {
            init3[pi.index()] = component3(self.leaf_set_r(pi, restr), DelayValue::initial);
        }
        for &ff in circuit.dffs() {
            init3[ff.index()] = component3(self.leaf_set_r(ff, restr), DelayValue::initial);
        }
        for &g in circuit.topo_order() {
            let node = circuit.node(g);
            let ins: Vec<Logic3> = node.fanin().iter().map(|&f| init3[f.index()]).collect();
            init3[g.index()] = eval_gate3(node.kind(), &ins);
        }

        // Pass 2: 8-valued forward sets with the site conversion.
        let mut f = vec![DelaySet::EMPTY; n];
        for &pi in circuit.inputs() {
            f[pi.index()] = self.leaf_set_r(pi, restr);
        }
        for &ff in circuit.dffs() {
            let mut leaf = self.leaf_set_r(ff, restr);
            // Register coupling, forward direction only: the PPI's final
            // value is the PPO's (functionally determined) initial value.
            if let Some(b) = init3[circuit.ppo_of_dff(ff).index()].to_bool() {
                leaf = leaf.iter().filter(|v| v.final_value() == b).collect();
            }
            f[ff.index()] = leaf;
        }
        let fault = net.fault();
        for &g in circuit.topo_order() {
            let node = circuit.node(g);
            let ins: Vec<DelaySet> = node
                .fanin()
                .iter()
                .enumerate()
                .map(|(pin, &src)| {
                    let s = f[src.index()];
                    let converted = match fault.site.branch {
                        None => src == fault.site.stem,
                        Some((sink, fpin)) => {
                            src == fault.site.stem && sink == g && fpin == pin as u8
                        }
                    };
                    if converted {
                        net.convert(s)
                    } else {
                        s
                    }
                })
                .collect();
            f[g.index()] = net.eval_scratch(node.kind(), &ins);
        }
        ForwardImage { f }
    }

    /// Observed set at a PO in the forward image.
    fn forward_po_set(
        &self,
        net: &ImplicationNet<'_>,
        image: &ForwardImage,
        po: NodeId,
    ) -> DelaySet {
        let fault = net.fault();
        let s = image.f[po.index()];
        if fault.site.stem == po && fault.site.branch.is_none() {
            net.convert(s)
        } else {
            s
        }
    }

    /// Observed set at a PPO (flip-flop D input) in the forward image.
    fn forward_ppo_set(
        &self,
        net: &ImplicationNet<'_>,
        image: &ForwardImage,
        dff_index: usize,
    ) -> DelaySet {
        let fault = net.fault();
        let dff = self.circuit.dffs()[dff_index];
        let d = self.circuit.ppo_of_dff(dff);
        let s = image.f[d.index()];
        let converted = match fault.site.branch {
            None => d == fault.site.stem,
            Some((sink, pin)) => d == fault.site.stem && sink == dff && pin == 0,
        };
        if converted {
            net.convert(s)
        } else {
            s
        }
    }

    /// Declares success only from the forward image (PO first, then PPO).
    fn forward_success(
        &self,
        net: &ImplicationNet<'_>,
        image: &ForwardImage,
    ) -> Option<LocalObservation> {
        for &po in self.circuit.outputs() {
            let s = self.forward_po_set(net, image, po);
            if !s.is_empty() && s.must_carry_fault() {
                return Some(LocalObservation::AtPo(po));
            }
        }
        for i in 0..self.circuit.num_dffs() {
            match self.forward_ppo_set(net, image, i).as_singleton() {
                Some(DelayValue::Rc) => {
                    return Some(LocalObservation::AtPpo {
                        dff: i,
                        good_one: true,
                    })
                }
                Some(DelayValue::Fc) => {
                    return Some(LocalObservation::AtPpo {
                        dff: i,
                        good_one: false,
                    })
                }
                _ => {}
            }
        }
        None
    }

    /// Greedily removes decisions on flip-flop initial bits whose loss
    /// does not break the (forward-checked) observation. Returns the
    /// surviving restrictions and their forward image.
    fn minimize_state_decisions(
        &self,
        net: &ImplicationNet<'_>,
        mut restr: Vec<(NodeId, DelaySet)>,
    ) -> (Vec<(NodeId, DelaySet)>, ForwardImage) {
        let mut idx = restr.len();
        while idx > 0 {
            idx -= 1;
            let (node, _) = restr[idx];
            if self.circuit.node(node).kind() != GateKind::Dff {
                continue;
            }
            let mut trial = restr.clone();
            trial.remove(idx);
            let image = self.forward_image(net, &trial);
            if self.forward_success(net, &image).is_some() {
                restr = trial;
            }
        }
        let image = self.forward_image(net, &restr);
        (restr, image)
    }

    /// The X-path check on the arc-consistent network: every genuine test
    /// in this subtree satisfies all constraints, so if no observation
    /// point may carry, the subtree is dead.
    fn may_reach_observable(&self, net: &ImplicationNet<'_>) -> bool {
        self.circuit
            .outputs()
            .iter()
            .any(|&po| net.po_observed_set(po).may_carry_fault())
            || (0..self.circuit.num_dffs()).any(|i| net.ppo_observed_set(i).may_carry_fault())
    }

    /// Picks an objective, backtraces it to a decision variable, applies
    /// the first alternative and pushes the decision. Returns `None` when
    /// no decision variable remains.
    fn pick_decision(&self, net: &mut ImplicationNet<'c>, stack: &mut Vec<Decision>) -> Option<()> {
        let objective = self.pick_objective(net);
        let decision = objective
            .and_then(|(node, desired)| self.backtrace(net, node, desired, stack))
            .or_else(|| self.fallback_variable(net, stack));
        let (node, mut alts) = decision?;
        debug_assert!(!alts.is_empty());
        let trail_mark = net.checkpoint();
        let first = alts.pop().expect("non-empty alternatives");
        let _ = net.assign(node, first);
        stack.push(Decision {
            node,
            applied: first,
            alts,
            trail_mark,
        });
        Some(())
    }

    /// The D-frontier objective: the unresolved fault-effect gate closest
    /// to an output, or a not-yet-singleton observation point.
    fn pick_objective(&self, net: &ImplicationNet<'_>) -> Option<(NodeId, DelaySet)> {
        let mut best: Option<(u32, NodeId, DelaySet)> = None;
        for &g in self.circuit.topo_order() {
            let out = net.set(g);
            if out.must_carry_fault() || !out.may_carry_fault() {
                continue;
            }
            let arity = self.circuit.node(g).fanin().len();
            let has_carrying_input = (0..arity).any(|p| net.edge_set(g, p).must_carry_fault());
            if !has_carrying_input {
                continue;
            }
            let cost = self.testability.co[g.index()];
            let desired = out.intersect(DelaySet::CARRYING);
            if desired.is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|&(c, _, _)| cost < c) {
                best = Some((cost, g, desired));
            }
        }
        if let Some((_, g, desired)) = best {
            return Some((g, desired));
        }
        // No frontier gate: try to force a still-ambiguous observation
        // point toward a carrying value.
        for &po in self.circuit.outputs() {
            let s = net.po_observed_set(po);
            if s.may_carry_fault() && !s.must_carry_fault() {
                let desired = net.unconvert_within(s.intersect(DelaySet::CARRYING), net.set(po));
                if !desired.is_empty() {
                    return Some((po, desired));
                }
            }
        }
        for i in 0..self.circuit.num_dffs() {
            let s = net.ppo_observed_set(i);
            if s.may_carry_fault() && s.as_singleton().is_none() {
                let d = self.circuit.ppo_of_dff(self.circuit.dffs()[i]);
                let carrying = s.intersect(DelaySet::CARRYING);
                let pick = carrying.iter().next().expect("may_carry");
                let desired = net.unconvert_within(DelaySet::singleton(pick), net.set(d));
                if !desired.is_empty() {
                    return Some((d, desired));
                }
            }
        }
        None
    }

    /// Maps an objective `(node, desired ⊆ set(node))` to a decision on a
    /// PI or a PPI initial bit.
    fn backtrace(
        &self,
        net: &ImplicationNet<'_>,
        mut node: NodeId,
        mut desired: DelaySet,
        stack: &[Decision],
    ) -> Option<(NodeId, Vec<DelaySet>)> {
        let limit = 4 * self.circuit.num_nodes() + 16;
        for _ in 0..limit {
            desired = desired.intersect(net.set(node));
            if desired.is_empty() {
                return None;
            }
            let kind = self.circuit.node(node).kind();
            match kind {
                GateKind::Input => return self.pi_decision(net, node, desired, stack),
                GateKind::Dff => {
                    let leaf = self.leaf_set(node, stack);
                    let want_init: Vec<bool> = dedup_bools(desired.iter().map(|v| v.initial()));
                    let have_init: Vec<bool> = dedup_bools(leaf.iter().map(|v| v.initial()));
                    if want_init.len() == 1 && have_init.len() == 2 {
                        return self.ppi_decision(node, want_init[0], leaf);
                    }
                    // Redirect the final-value requirement through the
                    // register to the PPO's initial value.
                    let finals: Vec<bool> = dedup_bools(desired.iter().map(|v| v.final_value()));
                    let d = self.circuit.ppo_of_dff(node);
                    let d_set = net.set(d);
                    let redirected: DelaySet = d_set
                        .iter()
                        .filter(|u| finals.contains(&u.initial()))
                        .collect();
                    if redirected.is_empty() || redirected == d_set {
                        return None;
                    }
                    node = d;
                    desired = redirected;
                }
                _ => {
                    let arity = self.circuit.node(node).fanin().len();
                    let orig: Vec<DelaySet> = (0..arity).map(|p| net.edge_set(node, p)).collect();
                    let mut ins = orig.clone();
                    let mut out = desired;
                    net.narrow_scratch(kind, &mut out, &mut ins);
                    // Required inputs: those the desired output actually
                    // constrains. Pursue the hardest one (classic FAN
                    // heuristic).
                    let required: Vec<usize> = (0..arity)
                        .filter(|&p| ins[p] != orig[p] && !ins[p].is_empty())
                        .collect();
                    let mut advanced = false;
                    if let Some(&p) = required.iter().max_by_key(|&&p| self.edge_cost(node, p)) {
                        let stem = self.circuit.node(node).fanin()[p];
                        let pre = self.to_pre_conversion(net, node, p, ins[p]);
                        if !pre.is_empty() && pre != net.set(stem) {
                            node = stem;
                            desired = pre;
                            advanced = true;
                        }
                    }
                    if advanced {
                        continue;
                    }
                    // Disjunctive case: no single input is forced. Pick the
                    // easiest-to-control undetermined input and choose a
                    // value for it that keeps the desired output possible.
                    let candidates: Vec<usize> =
                        (0..arity).filter(|&p| orig[p].len() > 1).collect();
                    let &p = candidates
                        .iter()
                        .min_by_key(|&&p| self.edge_cost(node, p))?;
                    let chosen = self.choose_helping_value(net, kind, &orig, p, desired)?;
                    let stem = self.circuit.node(node).fanin()[p];
                    let pre = self.to_pre_conversion(net, node, p, DelaySet::singleton(chosen));
                    if pre.is_empty() {
                        return None;
                    }
                    node = stem;
                    desired = pre;
                }
            }
        }
        None
    }

    /// Maps an edge-view (post-conversion) requirement back to the stem's
    /// pre-conversion domain.
    fn to_pre_conversion(
        &self,
        net: &ImplicationNet<'_>,
        sink: NodeId,
        pin: usize,
        edge_desired: DelaySet,
    ) -> DelaySet {
        let stem = self.circuit.node(sink).fanin()[pin];
        let stem_set = net.set(stem);
        if net.edge_set(sink, pin) == stem_set {
            // Unconverted edge.
            edge_desired.intersect(stem_set)
        } else {
            net.unconvert_within(edge_desired, stem_set)
        }
    }

    /// SCOAP-ish priority of an input edge (used to order backtracing).
    fn edge_cost(&self, sink: NodeId, pin: usize) -> u32 {
        let stem = self.circuit.node(sink).fanin()[pin];
        self.testability.cc0[stem.index()].min(self.testability.cc1[stem.index()])
    }

    /// Picks a value for input `p` that keeps `desired` producible —
    /// preferring steady clean values (cheap to justify, robust-friendly).
    fn choose_helping_value(
        &self,
        net: &ImplicationNet<'_>,
        kind: GateKind,
        orig: &[DelaySet],
        p: usize,
        desired: DelaySet,
    ) -> Option<DelayValue> {
        const PREFERENCE: [DelayValue; 8] = [
            DelayValue::S1,
            DelayValue::S0,
            DelayValue::R,
            DelayValue::F,
            DelayValue::H1,
            DelayValue::H0,
            DelayValue::Rc,
            DelayValue::Fc,
        ];
        let mut fallback = None;
        for v in PREFERENCE {
            if !orig[p].contains(v) {
                continue;
            }
            let mut pinned = orig.to_vec();
            pinned[p] = DelaySet::singleton(v);
            let image = net.eval_scratch(kind, &pinned);
            if image.intersect(desired).is_empty() {
                continue;
            }
            if image.intersect(desired) == image {
                return Some(v); // forces the objective
            }
            if fallback.is_none() {
                fallback = Some(v);
            }
        }
        fallback
    }

    /// Decision alternatives for a PI: the desired values first, then the
    /// rest of the *leaf* domain (full coverage keeps the search
    /// complete). Alternatives are tried back-to-front.
    fn pi_decision(
        &self,
        net: &ImplicationNet<'_>,
        node: NodeId,
        desired: DelaySet,
        stack: &[Decision],
    ) -> Option<(NodeId, Vec<DelaySet>)> {
        let leaf = self.leaf_set(node, stack);
        if leaf.len() <= 1 {
            return None;
        }
        let arc = net.set(node);
        // Order (tried back-to-front): leaf-only values, then arc values,
        // then desired values last (tried first).
        let mut ordered: Vec<DelaySet> = Vec::new();
        let bucket = |v: DelayValue| -> u8 {
            if desired.contains(v) {
                2
            } else if arc.contains(v) {
                1
            } else {
                0
            }
        };
        for rank in 0..=2u8 {
            for v in leaf.iter() {
                if bucket(v) == rank {
                    ordered.push(DelaySet::singleton(v));
                }
            }
        }
        Some((node, ordered))
    }

    /// Decision alternatives for a PPI initial bit.
    fn ppi_decision(
        &self,
        node: NodeId,
        want: bool,
        leaf: DelaySet,
    ) -> Option<(NodeId, Vec<DelaySet>)> {
        let restrict = |b: bool| -> DelaySet { leaf.iter().filter(|v| v.initial() == b).collect() };
        let with = restrict(want);
        let without = restrict(!want);
        if with.is_empty() || without.is_empty() {
            return None; // init already determined
        }
        Some((node, vec![without, with])) // tried back-to-front: `with` first
    }

    /// Last-resort decision: prefer variables the implication network has
    /// already constrained (they matter for the pending objective), then
    /// any open variable.
    fn fallback_variable(
        &self,
        net: &ImplicationNet<'_>,
        stack: &[Decision],
    ) -> Option<(NodeId, Vec<DelaySet>)> {
        let mut open: Vec<(bool, NodeId)> = Vec::new();
        for &pi in self.circuit.inputs() {
            let leaf = self.leaf_set(pi, stack);
            if leaf.len() > 1 {
                let constrained = net.set(pi).len() < leaf.len();
                open.push((constrained, pi));
            }
        }
        for &ff in self.circuit.dffs() {
            let leaf = self.leaf_set(ff, stack);
            let inits = dedup_bools(leaf.iter().map(|v| v.initial()));
            if inits.len() == 2 {
                let arc_inits = dedup_bools(net.set(ff).iter().map(|v| v.initial()));
                open.push((arc_inits.len() < 2, ff));
            }
        }
        open.sort_by_key(|&(constrained, _)| !constrained);
        let (_, node) = *open.first()?;
        let leaf = self.leaf_set(node, stack);
        if self.circuit.node(node).kind() == GateKind::Input {
            let arc = net.set(node);
            let mut ordered: Vec<DelaySet> = Vec::new();
            for v in leaf.iter() {
                if !arc.contains(v) {
                    ordered.push(DelaySet::singleton(v));
                }
            }
            for v in leaf.iter() {
                if arc.contains(v) {
                    ordered.push(DelaySet::singleton(v));
                }
            }
            Some((node, ordered))
        } else {
            let arc_inits = dedup_bools(net.set(node).iter().map(|v| v.initial()));
            let want = arc_inits.first().copied().unwrap_or(false);
            self.ppi_decision(node, want, leaf)
        }
    }

    /// Builds the [`LocalTest`] from the decided leaves and the forward
    /// image (both of which the emitted `X` semantics are sound for).
    fn extract(
        &self,
        net: &ImplicationNet<'_>,
        restr: &[(NodeId, DelaySet)],
        image: &ForwardImage,
        observation: LocalObservation,
        backtracks: u32,
    ) -> LocalTest {
        let v1 = self
            .circuit
            .inputs()
            .iter()
            .map(|&pi| component3(self.leaf_set_r(pi, restr), DelayValue::initial))
            .collect();
        let v2 = self
            .circuit
            .inputs()
            .iter()
            .map(|&pi| component3(self.leaf_set_r(pi, restr), DelayValue::final_value))
            .collect();
        let required_state = self
            .circuit
            .dffs()
            .iter()
            .map(|&ff| component3(self.leaf_set_r(ff, restr), DelayValue::initial))
            .collect();
        let ppo_values = (0..self.circuit.num_dffs())
            .map(
                |i| match self.forward_ppo_set(net, image, i).as_singleton() {
                    Some(DelayValue::S0) => PpoValue::Steady0,
                    Some(DelayValue::S1) => PpoValue::Steady1,
                    Some(DelayValue::Rc) => PpoValue::FaultEffect { good_one: true },
                    Some(DelayValue::Fc) => PpoValue::FaultEffect { good_one: false },
                    _ => PpoValue::UnjustifiableX,
                },
            )
            .collect();
        LocalTest {
            v1,
            v2,
            required_state,
            observation,
            ppo_values,
            backtracks,
        }
    }
}

/// Projects a set onto one Boolean component: known only if all values
/// agree.
fn component3(s: DelaySet, f: fn(DelayValue) -> bool) -> Logic3 {
    let bits = dedup_bools(s.iter().map(f));
    match bits.as_slice() {
        [b] => Logic3::from_bool(*b),
        _ => Logic3::X,
    }
}

fn dedup_bools<I: Iterator<Item = bool>>(iter: I) -> Vec<bool> {
    let mut out = Vec::with_capacity(2);
    for b in iter {
        if !out.contains(&b) {
            out.push(b);
        }
        if out.len() == 2 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, DelayFaultKind, FaultSite, FaultUniverse};
    use gdf_sim::{detected_delay_faults, two_frame_values};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stem_fault(c: &Circuit, name: &str, kind: DelayFaultKind) -> DelayFault {
        DelayFault {
            site: FaultSite::on_stem(c.node_by_name(name).unwrap()),
            kind,
        }
    }

    /// X-fill a 3-valued vector deterministically.
    fn fill(v: &[Logic3], rng: &mut StdRng) -> Vec<bool> {
        v.iter()
            .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
            .collect()
    }

    /// Verify a generated test with the independent TDsim machinery, under
    /// several random completions of the don't-care positions.
    fn verify_test(c: &Circuit, fault: DelayFault, t: &LocalTest) {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let v1 = fill(&t.v1, &mut rng);
            let v2 = fill(&t.v2, &mut rng);
            let st = fill(&t.required_state, &mut rng);
            let w = two_frame_values(c, &v1, &v2, &st);
            let observable: Vec<NodeId> = match t.observation {
                LocalObservation::AtPo(_) => Vec::new(),
                LocalObservation::AtPpo { dff, .. } => {
                    vec![c.ppo_of_dff(c.dffs()[dff])]
                }
            };
            let hits = detected_delay_faults(c, &w, &[fault], &observable, &[]);
            assert_eq!(
                hits.len(),
                1,
                "test for {} failed under X-fill (v1={v1:?} v2={v2:?} st={st:?})",
                fault.describe(c)
            );
        }
    }

    #[test]
    fn combinational_and_gate() {
        // y = AND(a, b): StR on a needs a:R, b final 1.
        let mut b = CircuitBuilder::new("and2");
        b.add_input("a");
        b.add_input("b");
        b.add_gate("y", GateKind::And, &["a", "b"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fault = stem_fault(&c, "a", DelayFaultKind::SlowToRise);
        let outcome = TdGen::new(&c).generate(fault);
        let t = outcome.test().expect("testable");
        assert_eq!(t.v1[0], Logic3::Zero);
        assert_eq!(t.v2[0], Logic3::One);
        verify_test(&c, fault, t);
    }

    #[test]
    fn robust_fall_needs_steady_side() {
        // y = AND(a, b): StF on a needs b steady 1 (V1=V2=1 on b).
        let mut bld = CircuitBuilder::new("and2");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_gate("y", GateKind::And, &["a", "b"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let fault = stem_fault(&c, "a", DelayFaultKind::SlowToFall);
        let t = TdGen::new(&c).generate(fault);
        let t = t.test().expect("testable");
        assert_eq!(t.v1[1], Logic3::One, "side input steady 1 in frame 1");
        assert_eq!(t.v2[1], Logic3::One, "side input steady 1 in frame 2");
        verify_test(&c, fault, t);
    }

    #[test]
    fn redundant_fault_proven_untestable() {
        // y = OR(a, NOT(a)) is constant 1: no transition can be provoked
        // at y, and nothing propagates past it.
        let mut bld = CircuitBuilder::new("redundant");
        bld.add_input("a");
        bld.add_gate("n", GateKind::Not, &["a"]);
        bld.add_gate("y", GateKind::Or, &["a", "n"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let fault = stem_fault(&c, "y", DelayFaultKind::SlowToRise);
        assert_eq!(TdGen::new(&c).generate(fault), TdGenOutcome::Untestable);
    }

    #[test]
    fn sequential_observation_at_ppo() {
        // The only observation for d = NOT(a) is through the flip-flop.
        let mut bld = CircuitBuilder::new("latch");
        bld.add_input("a");
        bld.add_dff("q", "d");
        bld.add_gate("d", GateKind::Not, &["a"]);
        bld.add_gate("y", GateKind::Buf, &["q"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let fault = stem_fault(&c, "d", DelayFaultKind::SlowToFall);
        let outcome = TdGen::new(&c).generate(fault);
        let t = outcome.test().expect("locally testable via PPO");
        match t.observation {
            LocalObservation::AtPpo { dff: 0, good_one } => {
                // d falls: good machine latches 0 → D̄ (good 0 / faulty 1).
                assert!(!good_one);
            }
            other => panic!("expected PPO observation, got {other:?}"),
        }
        assert!(t.needs_propagation());
        verify_test(&c, fault, t);
    }

    #[test]
    fn required_state_extracted() {
        // y = AND(q, a): propagating a transition on `a` requires q's
        // frame-1 AND frame-2 value at 1; q's init bit becomes a state
        // requirement.
        let mut bld = CircuitBuilder::new("staterq");
        bld.add_input("a");
        bld.add_input("b");
        bld.add_dff("q", "d");
        bld.add_gate("d", GateKind::Buf, &["b"]);
        bld.add_gate("y", GateKind::And, &["q", "a"]);
        bld.mark_output("y");
        let c = bld.build().unwrap();
        let fault = stem_fault(&c, "a", DelayFaultKind::SlowToFall);
        let t = TdGen::new(&c).generate(fault);
        let t = t.test().expect("testable");
        // Robust StF through AND needs side steady 1: init(q)=1 and
        // fin(q)=1; fin(q)=init(d)=b's frame-1 value.
        assert_eq!(t.required_state[0], Logic3::One);
        assert_eq!(t.v1[1], Logic3::One, "b frame 1 feeds q's frame-2 value");
        verify_test(&c, fault, t);
    }

    #[test]
    fn s27_all_faults_classified_and_tests_verified() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let gen = TdGen::new(&c);
        let mut tested = 0;
        let mut untestable = 0;
        let mut aborted = 0;
        for f in &faults {
            match gen.generate(*f) {
                TdGenOutcome::Test(t) => {
                    tested += 1;
                    verify_test(&c, *f, &t);
                }
                TdGenOutcome::Untestable => untestable += 1,
                TdGenOutcome::Aborted => aborted += 1,
            }
        }
        assert!(tested > 0, "s27 has locally testable delay faults");
        assert_eq!(aborted, 0, "s27 is small enough to decide every fault");
        assert!(
            tested + untestable == faults.len(),
            "{tested}+{untestable} != {}",
            faults.len()
        );
    }

    #[test]
    fn nonrobust_model_tests_at_least_as_many_faults() {
        let c = suite::s27();
        let faults = FaultUniverse::default().delay_faults(&c);
        let robust = TdGen::new(&c);
        let nonrobust = TdGen::with_config(
            &c,
            TdGenConfig {
                sensitization: Sensitization::NonRobust,
                ..TdGenConfig::default()
            },
        );
        let mut robust_tested = 0;
        let mut nonrobust_tested = 0;
        for f in &faults {
            if robust.generate(*f).test().is_some() {
                robust_tested += 1;
            }
            if nonrobust.generate(*f).test().is_some() {
                nonrobust_tested += 1;
            }
        }
        assert!(
            nonrobust_tested >= robust_tested,
            "non-robust {nonrobust_tested} < robust {robust_tested}"
        );
    }

    #[test]
    fn branch_fault_generates_distinct_test() {
        let c = suite::s27();
        let g11 = c.node_by_name("G11").unwrap();
        // G11 fans out to G17 (PO path) and G10 (state path).
        let g17 = c.node_by_name("G17").unwrap();
        let fault = DelayFault {
            site: FaultSite::on_branch(g11, g17, 0),
            kind: DelayFaultKind::SlowToFall,
        };
        let outcome = TdGen::new(&c).generate(fault);
        if let Some(t) = outcome.test() {
            verify_test(&c, fault, t);
        }
        // Either outcome is legitimate; what matters is no abort on s27.
        assert_ne!(outcome, TdGenOutcome::Aborted);
    }

    #[test]
    fn backtrack_limit_respected() {
        // A tight limit must abort rather than loop.
        let c = suite::table3_circuit("s298").unwrap();
        let cfg = TdGenConfig {
            backtrack_limit: 1,
            ..TdGenConfig::default()
        };
        let gen = TdGen::with_config(&c, cfg);
        let faults = FaultUniverse::default().delay_faults(&c);
        // Just ensure every outcome terminates quickly.
        for f in faults.iter().take(40) {
            let _ = gen.generate(*f);
        }
    }
}
