//! The two-frame implication network: per-net 8-valued value sets with
//! forward/backward implication, fault-site conversion and state-register
//! coupling.
//!
//! The paper (§3, with its refs 8 and 20) describes exactly this machinery:
//! *"During local test pattern generation for each gate a set of values is
//! maintained that are possible for that gate. Using these sets, and the
//! truth tables for each gate, forward and backward implications can be
//! made."* The fault site is the *"only exception"* where a provoking `R`
//! (`F`) is converted into `Rc` (`Fc`); the state register contributes the
//! `final(PPI) = initial(PPO)` correlation.

use gdf_algebra::delay::{eval_gate, eval_gate_sets, narrow_inputs, DelaySet, DelayValue};
use gdf_netlist::{Circuit, DelayFault, DelayFaultKind, GateKind, NodeId};
use std::collections::VecDeque;

/// Which sensitization criterion the implication tables follow.
///
/// Before PR 5 this type was named `FaultModel`; the name now belongs to
/// `gdf_netlist::model::FaultModel` (the pluggable fault-*model* trait:
/// delay / stuck / transition), while this enum picks how strictly a
/// delay test must sensitize its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sensitization {
    /// The paper's strict robust model: off-path inputs of a falling
    /// on-path transition must be steady and hazard-free; parity-gate
    /// off-path inputs must be steady and hazard-free.
    #[default]
    Robust,
    /// The relaxed non-robust model the paper's conclusions announce:
    /// the fault effect propagates whenever flipping the carrying inputs'
    /// *final* values flips the gate's final value (hazards may invalidate
    /// such a test). Differences that leave the good-machine output steady
    /// are not representable in the 8-valued algebra and are conservatively
    /// dropped.
    NonRobust,
}

impl std::str::FromStr for Sensitization {
    type Err = String;

    /// The names every user-facing surface shares (`gdf
    /// --sensitization`, artifact configs, `gdf serve` submissions):
    /// `robust`, `non-robust` (alias `nonrobust`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "robust" => Ok(Sensitization::Robust),
            "non-robust" | "nonrobust" => Ok(Sensitization::NonRobust),
            other => Err(format!(
                "unknown sensitization `{other}` (robust|non-robust)"
            )),
        }
    }
}

/// Result of an implication pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implied {
    /// All sets consistent (none empty).
    Consistent,
    /// Some set became empty.
    Conflict,
}

/// Non-robust value-level gate evaluation (see [`Sensitization::NonRobust`]).
pub fn eval_gate_nonrobust(kind: GateKind, vals: &[DelayValue]) -> DelayValue {
    let robust = eval_gate(kind, vals);
    if !robust.is_transition() {
        return robust;
    }
    let good_fin: Vec<bool> = vals.iter().map(|v| v.final_value()).collect();
    let faulty_fin: Vec<bool> = vals
        .iter()
        .map(|v| {
            if v.carries_fault() {
                !v.final_value()
            } else {
                v.final_value()
            }
        })
        .collect();
    let differs = kind.eval_bool(&good_fin) != kind.eval_bool(&faulty_fin);
    if differs {
        robust.with_fault_mark().expect("transition")
    } else {
        robust.without_fault_mark()
    }
}

/// Set-level non-robust evaluation by direct enumeration (the non-robust
/// carry rule is not associative for parity gates, so no folding).
fn eval_sets_nonrobust(kind: GateKind, ins: &[DelaySet]) -> DelaySet {
    match kind {
        GateKind::Buf => return ins[0],
        GateKind::Not => return ins[0].not(),
        _ => {}
    }
    let mut out = DelaySet::EMPTY;
    let mut combo: Vec<DelayValue> = Vec::with_capacity(ins.len());
    enumerate(kind, ins, 0, &mut combo, &mut out);
    out
}

fn enumerate(
    kind: GateKind,
    ins: &[DelaySet],
    depth: usize,
    combo: &mut Vec<DelayValue>,
    out: &mut DelaySet,
) {
    if depth == ins.len() {
        out.insert(eval_gate_nonrobust(kind, combo));
        return;
    }
    for v in ins[depth].iter() {
        combo.push(v);
        enumerate(kind, ins, depth + 1, combo, out);
        combo.pop();
    }
}

/// Set-level non-robust backward narrowing by direct enumeration.
fn narrow_nonrobust(kind: GateKind, out_allowed: &mut DelaySet, ins: &mut [DelaySet]) -> bool {
    if matches!(kind, GateKind::Buf | GateKind::Not) {
        return narrow_inputs(kind, out_allowed, ins);
    }
    let mut changed = false;
    let n = ins.len();
    for i in 0..n {
        let mut keep = DelaySet::EMPTY;
        for v in ins[i].iter() {
            let mut pinned: Vec<DelaySet> = ins.to_vec();
            pinned[i] = DelaySet::singleton(v);
            let image = eval_sets_nonrobust(kind, &pinned);
            if !image.intersect(*out_allowed).is_empty() {
                keep.insert(v);
            }
        }
        if keep != ins[i] {
            ins[i] = keep;
            changed = true;
        }
    }
    let producible = eval_sets_nonrobust(kind, ins);
    let meet = out_allowed.intersect(producible);
    if meet != *out_allowed {
        *out_allowed = meet;
        changed = true;
    }
    changed
}

/// The implication network for one target fault.
///
/// Holds one [`DelaySet`] per net (pre-conversion at the fault stem),
/// records every narrowing on an undo trail, and propagates implications to
/// a fixpoint through gates, the fault-site conversion and the DFF
/// coupling.
///
/// # Example
///
/// ```
/// use gdf_netlist::{suite, DelayFault, DelayFaultKind, FaultSite};
/// use gdf_tdgen::network::{ImplicationNet, Implied};
///
/// let c = suite::s27();
/// let g14 = c.node_by_name("G14").unwrap();
/// let fault = DelayFault {
///     site: FaultSite::on_stem(g14),
///     kind: DelayFaultKind::SlowToRise,
/// };
/// let mut net = ImplicationNet::new(&c, fault, Default::default());
/// assert_eq!(net.propagate(), Implied::Consistent);
/// ```
#[derive(Debug, Clone)]
pub struct ImplicationNet<'c> {
    circuit: &'c Circuit,
    fault: DelayFault,
    model: Sensitization,
    sets: Vec<DelaySet>,
    trail: Vec<(NodeId, DelaySet)>,
    queue: VecDeque<Constraint>,
    queued: Vec<bool>,
    conflict: bool,
}

/// One implication constraint: a gate or a flip-flop coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Constraint {
    Gate(NodeId),
    Dff(usize),
}

impl Constraint {
    fn index(self, circuit: &Circuit) -> usize {
        match self {
            Constraint::Gate(id) => id.index(),
            Constraint::Dff(i) => circuit.num_nodes() + i,
        }
    }
}

impl<'c> ImplicationNet<'c> {
    /// Builds the network for `fault` under `model` and seeds the initial
    /// domains:
    ///
    /// * primary inputs and flip-flop outputs: `{0,1,R,F}` (hazard-free);
    /// * nets in the fault's output cone: all 8 values;
    /// * everything else: the 6 clean values.
    pub fn new(circuit: &'c Circuit, fault: DelayFault, model: Sensitization) -> Self {
        let n = circuit.num_nodes();
        let seed = match fault.site.branch {
            None => fault.site.stem,
            Some((sink, _)) => sink,
        };
        let cone = circuit.output_cone(seed);
        let mut sets = vec![DelaySet::CLEAN; n];
        for (i, set) in sets.iter_mut().enumerate() {
            if cone[i] {
                *set = DelaySet::ALL;
            }
        }
        for &pi in circuit.inputs() {
            sets[pi.index()] = DelaySet::HAZARD_FREE;
        }
        for &ff in circuit.dffs() {
            sets[ff.index()] = DelaySet::HAZARD_FREE;
        }
        // The stem itself holds pre-conversion (clean) values.
        if fault.site.branch.is_none() {
            let stem = fault.site.stem;
            sets[stem.index()] = sets[stem.index()].intersect(DelaySet::CLEAN);
        }
        let mut net = ImplicationNet {
            circuit,
            fault,
            model,
            sets,
            trail: Vec::new(),
            queue: VecDeque::new(),
            queued: vec![false; n + circuit.num_dffs()],
            conflict: false,
        };
        // Seed every constraint once.
        for &g in circuit.topo_order() {
            net.enqueue(Constraint::Gate(g));
        }
        for i in 0..circuit.num_dffs() {
            net.enqueue(Constraint::Dff(i));
        }
        net
    }

    /// The target fault.
    pub fn fault(&self) -> DelayFault {
        self.fault
    }

    /// The fault model in force.
    pub fn model(&self) -> Sensitization {
        self.model
    }

    /// The circuit.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The provoking transition the fault site must show (`R` for
    /// slow-to-rise, `F` for slow-to-fall).
    pub fn provoking_value(&self) -> DelayValue {
        match self.fault.kind {
            DelayFaultKind::SlowToRise => DelayValue::R,
            DelayFaultKind::SlowToFall => DelayValue::F,
        }
    }

    /// The fault-carrying value injected downstream of the site.
    pub fn marked_value(&self) -> DelayValue {
        self.provoking_value()
            .with_fault_mark()
            .expect("transition")
    }

    /// Current (pre-conversion) set of a net.
    pub fn set(&self, id: NodeId) -> DelaySet {
        self.sets[id.index()]
    }

    /// Applies the fault-site conversion to a set: the provoking transition
    /// becomes its fault-carrying form.
    pub fn convert(&self, s: DelaySet) -> DelaySet {
        let t = self.provoking_value();
        if s.contains(t) {
            let mut c = s;
            c.remove(t);
            c.insert(self.marked_value());
            c
        } else {
            s
        }
    }

    /// Inverse of [`ImplicationNet::convert`]: pre-image of a post-
    /// conversion set within `pre`.
    pub fn unconvert_within(&self, post: DelaySet, pre: DelaySet) -> DelaySet {
        let t = self.provoking_value();
        let m = self.marked_value();
        let mut keep = DelaySet::EMPTY;
        for v in pre.iter() {
            let seen = if v == t { m } else { v };
            if post.contains(seen) {
                keep.insert(v);
            }
        }
        keep
    }

    /// Whether the edge `(stem → sink, pin)` carries the conversion.
    fn edge_converted(&self, stem: NodeId, sink: NodeId, pin: u8) -> bool {
        if stem != self.fault.site.stem {
            return false;
        }
        match self.fault.site.branch {
            None => true,
            Some((fsink, fpin)) => fsink == sink && fpin == pin,
        }
    }

    /// The set a sink gate sees on one of its input pins.
    pub fn edge_set(&self, sink: NodeId, pin: usize) -> DelaySet {
        let stem = self.circuit.node(sink).fanin()[pin];
        let s = self.sets[stem.index()];
        if self.edge_converted(stem, sink, pin as u8) {
            self.convert(s)
        } else {
            s
        }
    }

    /// The value set observable at a primary output (post-conversion if the
    /// PO net is the fault stem itself).
    pub fn po_observed_set(&self, po: NodeId) -> DelaySet {
        let s = self.sets[po.index()];
        if self.fault.site.stem == po && self.fault.site.branch.is_none() {
            self.convert(s)
        } else {
            s
        }
    }

    /// The value set latched by flip-flop `dff_index` (post-conversion if
    /// the D net or the D branch is the fault site).
    pub fn ppo_observed_set(&self, dff_index: usize) -> DelaySet {
        let dff = self.circuit.dffs()[dff_index];
        let d = self.circuit.ppo_of_dff(dff);
        let s = self.sets[d.index()];
        if self.edge_converted(d, dff, 0) {
            self.convert(s)
        } else {
            s
        }
    }

    /// Narrows a net's set; records the old value on the trail and enqueues
    /// affected constraints. Returns `false` (and flags a conflict) if the
    /// new set is empty.
    pub fn assign(&mut self, id: NodeId, new: DelaySet) -> bool {
        let old = self.sets[id.index()];
        let meet = old.intersect(new);
        if meet == old {
            return !meet.is_empty();
        }
        self.trail.push((id, old));
        self.sets[id.index()] = meet;
        if meet.is_empty() {
            self.conflict = true;
            return false;
        }
        self.touch(id);
        true
    }

    /// Enqueues every constraint adjacent to a changed net.
    fn touch(&mut self, id: NodeId) {
        let node = self.circuit.node(id);
        if node.kind().is_combinational() {
            self.enqueue(Constraint::Gate(id));
        }
        if node.kind() == GateKind::Dff {
            if let Some(i) = self.circuit.dffs().iter().position(|&f| f == id) {
                self.enqueue(Constraint::Dff(i));
            }
        }
        // Collect first to avoid holding a borrow of the node while
        // enqueueing.
        let sinks: Vec<NodeId> = node.fanout().iter().map(|&(s, _)| s).collect();
        for sink in sinks {
            match self.circuit.node(sink).kind() {
                GateKind::Dff => {
                    if let Some(i) = self.circuit.dffs().iter().position(|&f| f == sink) {
                        self.enqueue(Constraint::Dff(i));
                    }
                }
                k if k.is_combinational() => self.enqueue(Constraint::Gate(sink)),
                _ => {}
            }
        }
    }

    fn enqueue(&mut self, c: Constraint) {
        let idx = c.index(self.circuit);
        if !self.queued[idx] {
            self.queued[idx] = true;
            self.queue.push_back(c);
        }
    }

    /// Number of trail entries — pass to [`ImplicationNet::rollback`].
    pub fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Undoes all narrowings past `mark` and clears any conflict.
    pub fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (id, old) = self.trail.pop().expect("trail entry");
            self.sets[id.index()] = old;
        }
        self.conflict = false;
        self.queue.clear();
        for q in &mut self.queued {
            *q = false;
        }
    }

    fn eval_sets_m(&self, kind: GateKind, ins: &[DelaySet]) -> DelaySet {
        match self.model {
            Sensitization::Robust => eval_gate_sets(kind, ins),
            Sensitization::NonRobust => eval_sets_nonrobust(kind, ins),
        }
    }

    fn narrow_m(&self, kind: GateKind, out: &mut DelaySet, ins: &mut [DelaySet]) -> bool {
        match self.model {
            Sensitization::Robust => narrow_inputs(kind, out, ins),
            Sensitization::NonRobust => narrow_nonrobust(kind, out, ins),
        }
    }

    /// Model-aware backward narrowing on caller-owned scratch sets — used
    /// by the backtrace heuristic to discover which input requirements a
    /// desired output set induces, without touching the network state.
    pub fn narrow_scratch(&self, kind: GateKind, out: &mut DelaySet, ins: &mut [DelaySet]) -> bool {
        self.narrow_m(kind, out, ins)
    }

    /// Model-aware forward image on caller-owned scratch sets.
    pub fn eval_scratch(&self, kind: GateKind, ins: &[DelaySet]) -> DelaySet {
        self.eval_sets_m(kind, ins)
    }

    /// Runs implications to a fixpoint.
    pub fn propagate(&mut self) -> Implied {
        while let Some(c) = self.queue.pop_front() {
            self.queued[c.index(self.circuit)] = false;
            if self.conflict {
                break;
            }
            match c {
                Constraint::Gate(g) => self.imply_gate(g),
                Constraint::Dff(i) => self.imply_dff(i),
            }
        }
        if self.conflict {
            Implied::Conflict
        } else {
            Implied::Consistent
        }
    }

    fn imply_gate(&mut self, g: NodeId) {
        let node = self.circuit.node(g);
        let kind = node.kind();
        let fanin: Vec<NodeId> = node.fanin().to_vec();
        let mut ins: Vec<DelaySet> = (0..fanin.len()).map(|p| self.edge_set(g, p)).collect();
        let mut out = self.sets[g.index()];
        // Forward: intersect output with the producible image.
        let image = self.eval_sets_m(kind, &ins);
        out = out.intersect(image);
        // Backward: narrow inputs against the (already tightened) output.
        self.narrow_m(kind, &mut out, &mut ins);
        if !self.assign(g, out) {
            return;
        }
        for (p, &stem) in fanin.iter().enumerate() {
            let pre = if self.edge_converted(stem, g, p as u8) {
                self.unconvert_within(ins[p], self.sets[stem.index()])
            } else {
                ins[p]
            };
            if !self.assign(stem, pre) {
                return;
            }
        }
    }

    fn imply_dff(&mut self, i: usize) {
        let q = self.circuit.dffs()[i];
        let d = self.circuit.ppo_of_dff(q);
        let q_set = self.sets[q.index()];
        let d_set = self.sets[d.index()];
        // final(q) must equal initial(d); conversion does not alter frame
        // components, so the pre-conversion d set is authoritative.
        let d_inits: Vec<bool> = d_set.iter().map(|v| v.initial()).collect();
        let q_keep: DelaySet = q_set
            .iter()
            .filter(|v| d_inits.contains(&v.final_value()))
            .collect();
        let q_finals: Vec<bool> = q_keep.iter().map(|v| v.final_value()).collect();
        let d_keep: DelaySet = d_set
            .iter()
            .filter(|v| q_finals.contains(&v.initial()))
            .collect();
        if !self.assign(q, q_keep) {
            return;
        }
        let _ = self.assign(d, d_keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, FaultSite};

    fn str_fault(c: &Circuit, name: &str) -> DelayFault {
        DelayFault {
            site: FaultSite::on_stem(c.node_by_name(name).unwrap()),
            kind: DelayFaultKind::SlowToRise,
        }
    }

    #[test]
    fn initial_domains() {
        let c = suite::s27();
        let net = ImplicationNet::new(&c, str_fault(&c, "G14"), Sensitization::Robust);
        let g0 = c.node_by_name("G0").unwrap();
        assert_eq!(net.set(g0), DelaySet::HAZARD_FREE);
        let g14 = c.node_by_name("G14").unwrap();
        assert_eq!(net.set(g14), DelaySet::CLEAN, "stem holds pre-fault values");
        let g8 = c.node_by_name("G8").unwrap();
        assert_eq!(net.set(g8), DelaySet::ALL, "cone nets may carry");
        let g12 = c.node_by_name("G12").unwrap();
        assert_eq!(net.set(g12), DelaySet::CLEAN, "off-cone nets never carry");
    }

    #[test]
    fn conversion_round_trip() {
        let c = suite::s27();
        let net = ImplicationNet::new(&c, str_fault(&c, "G14"), Sensitization::Robust);
        let s = DelaySet::from_values([DelayValue::R, DelayValue::S0]);
        let conv = net.convert(s);
        assert!(conv.contains(DelayValue::Rc));
        assert!(!conv.contains(DelayValue::R));
        assert!(conv.contains(DelayValue::S0));
        let back = net.unconvert_within(conv, DelaySet::CLEAN);
        assert_eq!(back, s);
    }

    #[test]
    fn excitation_implies_marked_downstream() {
        // y = NOT(s), s = NOT(a): StR at s; pinning s to {R} must make y's
        // set fault-carrying (Fc) after implication.
        let mut b = CircuitBuilder::new("tiny");
        b.add_input("a");
        b.add_gate("s", GateKind::Not, &["a"]);
        b.add_gate("y", GateKind::Not, &["s"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fault = str_fault(&c, "s");
        let mut net = ImplicationNet::new(&c, fault, Sensitization::Robust);
        assert_eq!(net.propagate(), Implied::Consistent);
        let s = c.node_by_name("s").unwrap();
        assert!(net.assign(s, DelaySet::singleton(DelayValue::R)));
        assert_eq!(net.propagate(), Implied::Consistent);
        let y = c.node_by_name("y").unwrap();
        assert_eq!(net.set(y), DelaySet::singleton(DelayValue::Fc));
        let a = c.node_by_name("a").unwrap();
        assert_eq!(net.set(a), DelaySet::singleton(DelayValue::F));
    }

    #[test]
    fn rollback_restores_state() {
        let c = suite::s27();
        let mut net = ImplicationNet::new(&c, str_fault(&c, "G14"), Sensitization::Robust);
        net.propagate();
        let g0 = c.node_by_name("G0").unwrap();
        let before = net.set(g0);
        let mark = net.checkpoint();
        assert!(net.assign(g0, DelaySet::singleton(DelayValue::R)));
        net.propagate();
        assert_ne!(net.set(g0), before);
        net.rollback(mark);
        assert_eq!(net.set(g0), before);
    }

    #[test]
    fn conflict_detected_and_cleared() {
        let mut b = CircuitBuilder::new("c");
        b.add_input("a");
        b.add_gate("y", GateKind::Buf, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fault = str_fault(&c, "y");
        let mut net = ImplicationNet::new(&c, fault, Sensitization::Robust);
        net.propagate();
        let a = c.node_by_name("a").unwrap();
        let y = c.node_by_name("y").unwrap();
        let mark = net.checkpoint();
        assert!(net.assign(a, DelaySet::singleton(DelayValue::S0)));
        // y (pre-conversion) must follow a.
        net.propagate();
        assert_eq!(net.set(y), DelaySet::singleton(DelayValue::S0));
        // Now force y to S1: conflict.
        assert!(!net.assign(y, DelaySet::singleton(DelayValue::S1)));
        assert_eq!(net.propagate(), Implied::Conflict);
        net.rollback(mark);
        assert_eq!(net.propagate(), Implied::Consistent);
    }

    #[test]
    fn dff_coupling_links_frames() {
        // q = DFF(d); d = NOT(q) (toggle). Pin q to {R} (init 0, fin 1):
        // then init(d) must be 1, so d ∈ {values with init 1}.
        let mut b = CircuitBuilder::new("t");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Not, &["q"]);
        b.add_gate("y", GateKind::And, &["a", "q"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fault = str_fault(&c, "y");
        let mut net = ImplicationNet::new(&c, fault, Sensitization::Robust);
        net.propagate();
        let q = c.node_by_name("q").unwrap();
        let d = c.node_by_name("d").unwrap();
        assert!(net.assign(q, DelaySet::singleton(DelayValue::R)));
        assert_eq!(net.propagate(), Implied::Consistent);
        for v in net.set(d).iter() {
            assert!(v.initial(), "init(d) must be 1, got {v}");
        }
        // And the toggle structure: d = NOT(q) with q=R means d=F — whose
        // init is indeed 1. Fully forced:
        assert_eq!(net.set(d), DelaySet::singleton(DelayValue::F));
    }

    #[test]
    fn dff_coupling_detects_impossible_state() {
        // q = DFF(d); d = BUF(q): q can never change value between frames.
        let mut b = CircuitBuilder::new("hold");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Buf, &["q"]);
        b.add_gate("y", GateKind::And, &["a", "q"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let fault = str_fault(&c, "y");
        let mut net = ImplicationNet::new(&c, fault, Sensitization::Robust);
        net.propagate();
        let q = c.node_by_name("q").unwrap();
        assert!(net.assign(q, DelaySet::singleton(DelayValue::R)));
        assert_eq!(net.propagate(), Implied::Conflict, "hold FF cannot toggle");
    }

    #[test]
    fn nonrobust_model_relaxes_and_rule() {
        use DelayValue::*;
        // Robust: Fc & 1h = F (mark dropped). Non-robust: faulty final of
        // AND(Fc,H1) is 1&1=1 vs good 0 → mark kept.
        assert_eq!(eval_gate_nonrobust(GateKind::And, &[Fc, H1]), Fc);
        assert_eq!(eval_gate(GateKind::And, &[Fc, H1]), F);
        // Both agree when the side input is controlling.
        assert_eq!(eval_gate_nonrobust(GateKind::And, &[Fc, S0]), S0);
    }

    #[test]
    fn nonrobust_set_eval_consistent_with_value_eval() {
        use DelayValue::*;
        let a = DelaySet::from_values([Fc, R]);
        let b = DelaySet::from_values([H1, S1]);
        let got = eval_sets_nonrobust(GateKind::And, &[a, b]);
        let mut expect = DelaySet::EMPTY;
        for va in a.iter() {
            for vb in b.iter() {
                expect.insert(eval_gate_nonrobust(GateKind::And, &[va, vb]));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn branch_fault_converts_single_edge() {
        // s fans out to y1, y2; branch fault on s→y1 only.
        let mut b = CircuitBuilder::new("br");
        b.add_input("a");
        b.add_gate("s", GateKind::Buf, &["a"]);
        b.add_gate("y1", GateKind::Buf, &["s"]);
        b.add_gate("y2", GateKind::Buf, &["s"]);
        b.mark_output("y1");
        b.mark_output("y2");
        let c = b.build().unwrap();
        let s = c.node_by_name("s").unwrap();
        let y1 = c.node_by_name("y1").unwrap();
        let fault = DelayFault {
            site: FaultSite::on_branch(s, y1, 0),
            kind: DelayFaultKind::SlowToRise,
        };
        let mut net = ImplicationNet::new(&c, fault, Sensitization::Robust);
        net.propagate();
        assert!(net.assign(s, DelaySet::singleton(DelayValue::R)));
        assert_eq!(net.propagate(), Implied::Consistent);
        let y2 = c.node_by_name("y2").unwrap();
        assert_eq!(net.set(y1), DelaySet::singleton(DelayValue::Rc));
        assert_eq!(net.set(y2), DelaySet::singleton(DelayValue::R));
    }
}
