//! TDgen — the combinational robust gate-delay-fault test generator
//! (paper §3).
//!
//! TDgen works on the combinational block of a sequential circuit over the
//! *two coupled time frames* of a two-pattern test, using the 8-valued
//! algebra of [`gdf_algebra::delay`]. One copy of the netlist suffices:
//! every 8-valued value already contains the frame-1 and frame-2
//! components, and the state registers add the coupling constraint
//! `final(PPI) = initial(PPO)` (the paper's extra "truth table for the
//! state register").
//!
//! The search is a complete branch-and-bound over primary-input values
//! (4-valued: `0`, `1`, `R`, `F`) and pseudo-primary-input *initial* bits
//! (the frame-2 PPI value is implied through the register coupling).
//! After every decision a forward/backward implication pass narrows the
//! per-net value sets; the fault site converts a provoking transition into
//! its fault-carrying form (`R → Rc` for slow-to-rise); the goal is a
//! guaranteed fault-carrying value at a primary output, or a
//! known-polarity fault effect at a pseudo primary output (which the
//! sequential propagation phase of SEMILET then drives to a real output).
//!
//! Classification follows the paper: a fault is *untestable* only when the
//! complete search space is exhausted; hitting the backtrack limit
//! (default 100) *aborts* the fault instead.
//!
//! # Example
//!
//! ```
//! use gdf_netlist::{suite, FaultUniverse};
//! use gdf_tdgen::{TdGen, TdGenOutcome};
//!
//! let c = suite::s27();
//! let faults = FaultUniverse::default().delay_faults(&c);
//! let mut any_test = false;
//! for f in &faults {
//!     if let TdGenOutcome::Test(t) = TdGen::new(&c).generate(*f) {
//!         any_test = true;
//!         assert_eq!(t.v1.len(), c.num_inputs());
//!     }
//! }
//! assert!(any_test, "s27 has locally testable delay faults");
//! ```

pub mod network;
pub mod podem;
pub mod result;

pub use network::{ImplicationNet, Sensitization};
pub use podem::{TdGen, TdGenConfig, TdGenOutcome};
pub use result::{LocalObservation, LocalTest, PpoValue};
