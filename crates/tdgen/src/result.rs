//! Output types of the local (combinational two-frame) test generation.

use gdf_algebra::logic3::Logic3;
use gdf_netlist::NodeId;
use std::fmt;

/// Where the local test observes the fault effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalObservation {
    /// The fault effect reaches a primary output within the fast frame —
    /// no sequential propagation needed.
    AtPo(NodeId),
    /// The fault effect is latched into the flip-flop with this index;
    /// `good_one` records the polarity (`true` = good machine latches 1,
    /// i.e. a `D`; `false` = a `D̄`). SEMILET's propagation phase must make
    /// this state bit observable.
    AtPpo {
        /// Index into [`gdf_netlist::Circuit::dffs`].
        dff: usize,
        /// `true` if the good machine latches 1 (classical `D`).
        good_one: bool,
    },
}

/// The value TDgen can specify to SEMILET for one pseudo primary output
/// after the fast frame (paper §6: only steady, hazard-free PPO values may
/// be specified robustly; everything else is an *unjustifiable* don't-care
/// that SEMILET must treat as fixed-but-unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpoValue {
    /// Steady, hazard-free 0 across both frames — usable by propagation.
    Steady0,
    /// Steady, hazard-free 1 across both frames — usable by propagation.
    Steady1,
    /// The latched fault effect (`true` = good machine 1 / faulty 0).
    FaultEffect {
        /// `true` for a classical `D` (good 1, faulty 0).
        good_one: bool,
    },
    /// A transition, hazard, or otherwise unspecifiable value: fixed but
    /// unknown (`Xf`). Propagation may not assume anything about it.
    UnjustifiableX,
}

impl PpoValue {
    /// The good-machine value after the fast frame, if specifiable.
    pub fn good_value(self) -> Logic3 {
        match self {
            PpoValue::Steady0 => Logic3::Zero,
            PpoValue::Steady1 => Logic3::One,
            PpoValue::FaultEffect { good_one } => Logic3::from_bool(good_one),
            PpoValue::UnjustifiableX => Logic3::X,
        }
    }

    /// Whether the propagation phase may rely on this value.
    pub fn is_specifiable(self) -> bool {
        !matches!(self, PpoValue::UnjustifiableX)
    }
}

impl fmt::Display for PpoValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpoValue::Steady0 => f.write_str("0"),
            PpoValue::Steady1 => f.write_str("1"),
            PpoValue::FaultEffect { good_one: true } => f.write_str("D"),
            PpoValue::FaultEffect { good_one: false } => f.write_str("D'"),
            PpoValue::UnjustifiableX => f.write_str("Xf"),
        }
    }
}

/// A successful local test for one gate delay fault.
///
/// `v1`/`v2` are the two PI vectors (frame 1 and frame 2); `X` entries are
/// don't-cares. `required_state` is the circuit state the initialization
/// phase must synchronize to before `v1` is applied (`X` = don't-care).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalTest {
    /// PI vector of the initial (slow) frame.
    pub v1: Vec<Logic3>,
    /// PI vector of the test (fast) frame.
    pub v2: Vec<Logic3>,
    /// Required flip-flop state when `v1` is applied.
    pub required_state: Vec<Logic3>,
    /// Where the fault effect is observed.
    pub observation: LocalObservation,
    /// Per-flip-flop interface value after the fast frame (see
    /// [`PpoValue`]).
    pub ppo_values: Vec<PpoValue>,
    /// Backtracks spent by the local search.
    pub backtracks: u32,
}

impl LocalTest {
    /// Whether sequential propagation is needed (effect latched in state).
    pub fn needs_propagation(&self) -> bool {
        matches!(self.observation, LocalObservation::AtPpo { .. })
    }

    /// Whether initialization is needed (some state bit is required).
    pub fn needs_initialization(&self) -> bool {
        self.required_state.iter().any(|v| v.is_known())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppo_value_semantics() {
        assert_eq!(PpoValue::Steady0.good_value(), Logic3::Zero);
        assert_eq!(
            PpoValue::FaultEffect { good_one: true }.good_value(),
            Logic3::One
        );
        assert!(!PpoValue::UnjustifiableX.is_specifiable());
        assert_eq!(PpoValue::UnjustifiableX.good_value(), Logic3::X);
        assert_eq!(PpoValue::FaultEffect { good_one: false }.to_string(), "D'");
        assert_eq!(PpoValue::Steady1.to_string(), "1");
    }

    #[test]
    fn local_test_flags() {
        let t = LocalTest {
            v1: vec![Logic3::Zero],
            v2: vec![Logic3::One],
            required_state: vec![Logic3::X, Logic3::One],
            observation: LocalObservation::AtPpo {
                dff: 0,
                good_one: true,
            },
            ppo_values: vec![
                PpoValue::FaultEffect { good_one: true },
                PpoValue::UnjustifiableX,
            ],
            backtracks: 3,
        };
        assert!(t.needs_propagation());
        assert!(t.needs_initialization());
        let t2 = LocalTest {
            observation: LocalObservation::AtPo(gdf_netlist::NodeId(0)),
            required_state: vec![Logic3::X, Logic3::X],
            ..t
        };
        assert!(!t2.needs_propagation());
        assert!(!t2.needs_initialization());
    }
}
