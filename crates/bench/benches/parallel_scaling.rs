//! Serial versus fault-parallel full-suite runs through the unified
//! engine builder — the seed benchmark for the scaling trajectory.
//!
//! The parallel orchestration only speculates on per-fault generation;
//! classification, fault-simulation credit and reporting stay serialized
//! on the merge thread, so speed-up is bounded by how much of a run is
//! generation (most of it on generation-heavy circuits) and by wasted
//! speculation on faults that fault simulation drops mid-wave.
//!
//! ```text
//! cargo bench -p gdf-bench --bench parallel_scaling
//! ```

use gdf_bench::criterion::{criterion_group, criterion_main, Criterion};
use gdf_core::{Atpg, Backend};
use gdf_netlist::suite;

fn bench_parallel_scaling(c: &mut Criterion) {
    let threads: usize = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));

    for name in ["s27", "s298"] {
        let circuit = suite::table3_circuit(name).expect("suite circuit");
        let mut group = c.benchmark_group(&format!("non-scan full run {}", circuit.name()));
        group.sample_size(10);
        group.bench_function("serial", |b| {
            b.iter(|| {
                Atpg::builder(&circuit)
                    .backend(Backend::NonScan)
                    .build()
                    .run()
            })
        });
        group.bench_function(&format!("parallelism({threads})"), |b| {
            b.iter(|| {
                Atpg::builder(&circuit)
                    .backend(Backend::NonScan)
                    .parallelism(threads)
                    .build()
                    .run()
            })
        });
        group.finish();
    }

    // The stuck-at backend has no cross-fault credit pass, so it scales
    // closest to linearly — the upper bound for the delay flow.
    let circuit = suite::table3_circuit("s298").expect("suite circuit");
    let mut group = c.benchmark_group("stuck-at full run s298_syn");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            Atpg::builder(&circuit)
                .backend(Backend::StuckAt)
                .build()
                .run()
        })
    });
    group.bench_function(&format!("parallelism({threads})"), |b| {
        b.iter(|| {
            Atpg::builder(&circuit)
                .backend(Backend::StuckAt)
                .parallelism(threads)
                .build()
                .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
