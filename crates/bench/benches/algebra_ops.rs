//! Micro-benchmarks (offline harness) for the multi-valued algebras: value-level
//! evaluation, set-level forward images and backward narrowing.

use gdf_algebra::delay::{self, DelaySet, DelayValue};
use gdf_algebra::static5::{self, StaticSet, StaticValue};
use gdf_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use gdf_netlist::GateKind;

fn bench_value_eval(c: &mut Criterion) {
    let vals = [
        DelayValue::Rc,
        DelayValue::H1,
        DelayValue::S1,
        DelayValue::R,
    ];
    c.bench_function("delay::eval_gate AND4", |b| {
        b.iter(|| delay::eval_gate(GateKind::And, black_box(&vals)))
    });
    c.bench_function("delay::eval_gate XOR4", |b| {
        b.iter(|| delay::eval_gate(GateKind::Xor, black_box(&vals)))
    });
    let svals = [StaticValue::D, StaticValue::S1, StaticValue::Db];
    c.bench_function("static5::eval_gate NAND3", |b| {
        b.iter(|| static5::eval_gate(GateKind::Nand, black_box(&svals)))
    });
}

fn bench_set_ops(c: &mut Criterion) {
    let ins = [
        DelaySet::ALL,
        DelaySet::CLEAN,
        DelaySet::from_values([DelayValue::Rc, DelayValue::S1, DelayValue::H0]),
    ];
    c.bench_function("delay::eval_gate_sets NOR3 (full sets)", |b| {
        b.iter(|| delay::eval_gate_sets(GateKind::Nor, black_box(&ins)))
    });
    c.bench_function("delay::narrow_inputs NAND3", |b| {
        b.iter(|| {
            let mut out = DelaySet::CARRYING;
            let mut scratch = ins;
            delay::narrow_inputs(GateKind::Nand, black_box(&mut out), black_box(&mut scratch))
        })
    });
    let sins = [StaticSet::ALL, StaticSet::GOOD, StaticSet::FAULT_EFFECT];
    c.bench_function("static5::eval_gate_sets OR3", |b| {
        b.iter(|| static5::eval_gate_sets(GateKind::Or, black_box(&sins)))
    });
    c.bench_function("static5::narrow_inputs AND3", |b| {
        b.iter(|| {
            let mut out = StaticSet::FAULT_EFFECT;
            let mut scratch = sins;
            static5::narrow_inputs(GateKind::And, black_box(&mut out), black_box(&mut scratch))
        })
    });
}

criterion_group!(benches, bench_value_eval, bench_set_ops);
criterion_main!(benches);
