//! Criterion wrapper around the Table 3 pipeline: the full extended-
//! FOGBUSTER run (generation + three-phase fault simulation + dropping)
//! on the small suite circuits. This is the end-to-end number the
//! `time[s]` column of the table binary reports.

use gdf_bench::criterion::{criterion_group, criterion_main, Criterion};
use gdf_core::DelayAtpg;
use gdf_netlist::suite;

fn bench_full_runs(c: &mut Criterion) {
    let s27 = suite::s27();
    c.bench_function("table3 full run s27", |b| {
        b.iter(|| DelayAtpg::new(&s27).run())
    });

    let s298 = suite::table3_circuit("s298").expect("suite circuit");
    let mut group = c.benchmark_group("table3 medium");
    group.sample_size(10);
    group.bench_function("full run s298_syn", |b| {
        b.iter(|| DelayAtpg::new(&s298).run())
    });
    group.finish();
}

criterion_group!(benches, bench_full_runs);
criterion_main!(benches);
