//! Criterion benchmarks for the simulation substrate: good-machine
//! simulation (scalar and 64-way parallel), two-frame waveform evaluation
//! and TDsim fault simulation over the full fault universe.

use gdf_algebra::Logic3;
use gdf_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use gdf_netlist::{suite, FaultUniverse};
use gdf_sim::{
    detected_delay_faults, detected_delay_faults_packed, two_frame_values, GoodSimulator,
    ParallelSimulator, SimScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_goodsim(c: &mut Criterion) {
    let circuit = suite::table3_circuit("s344").expect("suite circuit");
    let sim = GoodSimulator::new(&circuit);
    let pi = vec![Logic3::One; circuit.num_inputs()];
    let st = vec![Logic3::Zero; circuit.num_dffs()];
    c.bench_function("goodsim eval_comb s344_syn", |b| {
        b.iter(|| sim.eval_comb(black_box(&pi), black_box(&st)))
    });

    let psim = ParallelSimulator::new(&circuit);
    let mut rng = StdRng::seed_from_u64(1);
    let ppi: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
    let pst: Vec<u64> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
    c.bench_function("parallel eval_comb s344_syn (64 patterns)", |b| {
        b.iter(|| psim.eval_comb(black_box(&ppi), black_box(&pst)))
    });
}

fn bench_waveform_and_tdsim(c: &mut Criterion) {
    let circuit = suite::table3_circuit("s344").expect("suite circuit");
    let mut rng = StdRng::seed_from_u64(2);
    let v1: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
    let v2: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
    let st: Vec<bool> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
    c.bench_function("two_frame_values s344_syn", |b| {
        b.iter(|| two_frame_values(&circuit, black_box(&v1), black_box(&v2), black_box(&st)))
    });

    let w = two_frame_values(&circuit, &v1, &v2, &st);
    let faults = FaultUniverse::default().delay_faults(&circuit);
    c.bench_function("tdsim full universe s344_syn (one pattern)", |b| {
        b.iter(|| detected_delay_faults(&circuit, black_box(&w), black_box(&faults), &[], &[]))
    });

    let mut scratch = SimScratch::default();
    c.bench_function("tdsim packed full universe s344_syn (64/word)", |b| {
        b.iter(|| {
            detected_delay_faults_packed(
                &circuit,
                black_box(&w),
                black_box(&faults),
                &[],
                &[],
                &mut scratch,
            )
        })
    });
}

criterion_group!(benches, bench_goodsim, bench_waveform_and_tdsim);
criterion_main!(benches);
