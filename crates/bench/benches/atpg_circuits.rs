//! Criterion benchmarks for the test generators: TDgen per-fault search,
//! the SEMILET per-frame engine, and the synchronizer.

use gdf_algebra::static5::{StaticSet, StaticValue};
use gdf_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use gdf_netlist::{suite, DelayFault, DelayFaultKind, FaultSite, FaultUniverse};
use gdf_semilet::frame::{FrameEngine, FrameGoal, PpiConstraint};
use gdf_semilet::justify::{synchronize, SyncLimits};
use gdf_tdgen::TdGen;

fn bench_tdgen(c: &mut Criterion) {
    let s27 = suite::s27();
    let gen27 = TdGen::new(&s27);
    let g11 = s27.node_by_name("G11").expect("s27 net");
    let fault = DelayFault {
        site: FaultSite::on_stem(g11),
        kind: DelayFaultKind::SlowToFall,
    };
    c.bench_function("tdgen one fault s27", |b| {
        b.iter(|| gen27.generate(black_box(fault)))
    });

    let big = suite::table3_circuit("s344").expect("suite circuit");
    let gen_big = TdGen::new(&big);
    let faults = FaultUniverse::default().delay_faults(&big);
    let sample: Vec<DelayFault> = faults.iter().copied().take(8).collect();
    c.bench_function("tdgen 8 faults s344_syn", |b| {
        b.iter(|| {
            for &f in &sample {
                black_box(gen_big.generate(f));
            }
        })
    });
}

fn bench_semilet(c: &mut Criterion) {
    let circuit = suite::s27();
    let engine = FrameEngine::new(&circuit, 100);
    let ppis = vec![
        PpiConstraint::Fixed(StaticSet::singleton(StaticValue::S0)),
        PpiConstraint::Fixed(StaticSet::singleton(StaticValue::D)),
        PpiConstraint::Fixed(StaticSet::singleton(StaticValue::S0)),
    ];
    c.bench_function("frame engine propagate s27", |b| {
        b.iter(|| engine.solve(black_box(&ppis), &FrameGoal::ObserveAtPo, None))
    });

    let sr = gdf_netlist::generator::shift_register(6);
    c.bench_function("synchronize 6-stage shift register", |b| {
        b.iter(|| synchronize(&sr, black_box(&[(5, true)]), SyncLimits::default()))
    });
}

criterion_group!(benches, bench_tdgen, bench_semilet);
criterion_main!(benches);
