//! `BENCH_fsim.json` emitter: the fault-simulation performance trajectory.
//!
//! Measures the fault-grading hot path — classify the full delay-fault
//! universe against random two-pattern tests — with the scalar reference
//! simulator and the packed (64-fault-per-word) one, plus the raw
//! good-machine gate-evaluation rate, on three circuits: `s27`, `s208` and
//! a generated 1000-gate netlist. Since the serve subsystem landed, each
//! record also carries an **end-to-end jobs/sec** figure: N stuck-at s27
//! jobs submitted over real HTTP to an in-process `gdf_serve::JobServer`
//! and driven to completion by its worker pool. Appends one JSON record
//! per invocation so the perf curve is tracked PR over PR.
//!
//! With `--fleet`, the record additionally carries the **distributed
//! campaign throughput**: a 2-node in-process fleet (two real
//! `gdf_serve::JobServer`s behind a `gdf_fleet::Coordinator`) runs a
//! sharded stuck-at campaign end to end, recording cluster work-units/sec
//! and faults/sec/node — the orchestration overhead trajectory.
//!
//! ```text
//! cargo run --release -p gdf-bench --bin bench_fsim            # full run
//! cargo run --release -p gdf-bench --bin bench_fsim -- --smoke # CI smoke
//! cargo run --release -p gdf-bench --bin bench_fsim -- --fleet # + fleet bench
//! cargo run --release -p gdf-bench --bin bench_fsim -- --chaos # + chaos campaign
//! cargo run --release -p gdf-bench --bin bench_fsim -- --cache # + result-cache bench
//! cargo run --release -p gdf-bench --bin bench_fsim -- --obs   # + tracing-overhead bench
//! cargo run --release -p gdf-bench --bin bench_fsim -- --out path.json
//! ```

use gdf_algebra::Logic3;
use gdf_netlist::generator::{generate, CircuitProfile};
use gdf_netlist::{suite, Circuit, FaultUniverse};
use gdf_sim::{
    detected_delay_faults, detected_delay_faults_packed, two_frame_values, GoodSimulator,
    SimScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: String,
    gates: usize,
    faults: usize,
    patterns: usize,
    scalar_faults_per_sec: f64,
    packed_faults_per_sec: f64,
    speedup: f64,
    ns_per_gate_eval: f64,
}

fn grade(circuit: &Circuit, patterns: usize, packed: bool) -> (usize, f64) {
    let faults = FaultUniverse::default().delay_faults(circuit);
    let mut rng = StdRng::seed_from_u64(0x1995_0308);
    let mut scratch = SimScratch::default();
    let mut hits = 0usize;
    let start = Instant::now();
    for _ in 0..patterns {
        let v1: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let v2: Vec<bool> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let st: Vec<bool> = (0..circuit.num_dffs()).map(|_| rng.gen()).collect();
        let w = two_frame_values(circuit, &v1, &v2, &st);
        let detected = if packed {
            detected_delay_faults_packed(circuit, &w, &faults, &[], &[], &mut scratch)
        } else {
            detected_delay_faults(circuit, &w, &faults, &[], &[])
        };
        hits += detected.len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let classified = faults.len() * patterns;
    (hits, classified as f64 / elapsed)
}

fn gate_eval_rate(circuit: &Circuit, frames: usize) -> f64 {
    let sim = GoodSimulator::new(circuit);
    let mut rng = StdRng::seed_from_u64(7);
    let pi: Vec<Logic3> = (0..circuit.num_inputs())
        .map(|_| Logic3::from_bool(rng.gen()))
        .collect();
    let st: Vec<Logic3> = (0..circuit.num_dffs())
        .map(|_| Logic3::from_bool(rng.gen()))
        .collect();
    let mut values = Vec::new();
    let start = Instant::now();
    for _ in 0..frames {
        sim.eval_comb_into(&pi, &st, &mut values);
        std::hint::black_box(&values);
    }
    let elapsed = start.elapsed().as_secs_f64();
    elapsed * 1e9 / (frames * circuit.num_gates().max(1)) as f64
}

fn bench_circuit(circuit: &Circuit, patterns: usize, eval_frames: usize) -> Row {
    let faults = FaultUniverse::default().delay_faults(circuit);
    let (scalar_hits, scalar_rate) = grade(circuit, patterns, false);
    let (packed_hits, packed_rate) = grade(circuit, patterns, true);
    assert_eq!(
        scalar_hits,
        packed_hits,
        "packed and scalar grading disagree on {}",
        circuit.name()
    );
    Row {
        name: circuit.name().to_string(),
        gates: circuit.num_gates(),
        faults: faults.len(),
        patterns,
        scalar_faults_per_sec: scalar_rate,
        packed_faults_per_sec: packed_rate,
        speedup: packed_rate / scalar_rate,
        ns_per_gate_eval: gate_eval_rate(circuit, eval_frames),
    }
}

/// End-to-end serving throughput: `jobs` identical stuck-at `s27`
/// submissions pushed over HTTP into a fresh in-process server with
/// `workers` workers, timed from first submit to last completion.
fn serve_jobs_per_sec(jobs: usize, workers: usize) -> f64 {
    use gdf_serve::server::submission_for_suite;
    use gdf_serve::{Client, JobServer, ServeConfig};

    let dir = std::env::temp_dir().join(format!("gdf-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(workers)
            .with_queue_capacity(jobs.max(1)),
    )
    .expect("bench server starts");
    let client = Client::new(server.local_addr().to_string());
    let config = gdf_core::engine::RunConfig::new(gdf_core::engine::Backend::StuckAt);
    let submission = submission_for_suite("suite:s27", &config);

    let start = Instant::now();
    let ids: Vec<_> = (0..jobs)
        .map(|_| client.submit(&submission).expect("submit"))
        .collect();
    for id in ids {
        client
            .wait(
                id,
                std::time::Duration::from_millis(5),
                Some(std::time::Duration::from_secs(300)),
            )
            .expect("job completes");
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    jobs as f64 / elapsed
}

/// What the `--fleet` bench measured.
struct FleetFigures {
    nodes: usize,
    workers: usize,
    units: usize,
    cluster_units_per_sec: f64,
    faults_per_sec_per_node: f64,
}

/// Distributed campaign throughput: a stuck-at campaign over `s27` +
/// `s42`, split `units_per_circuit` ways per circuit, driven across
/// `nodes` in-process servers by a real coordinator (HTTP submissions,
/// shard harvesting, deterministic merge), timed end to end.
fn fleet_throughput(units_per_circuit: usize, nodes: usize, workers: usize) -> FleetFigures {
    use gdf_core::artifact::CircuitSource;
    use gdf_core::engine::{Backend, RunConfig};
    use gdf_fleet::{Coordinator, FleetPlan};
    use gdf_serve::{JobServer, ServeConfig};

    let base = std::env::temp_dir().join(format!("gdf-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let servers: Vec<JobServer> = (0..nodes)
        .map(|i| {
            JobServer::start(
                ServeConfig::new("127.0.0.1:0", base.join(format!("node-{i}")))
                    .with_workers(workers),
            )
            .expect("bench fleet node starts")
        })
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let config = RunConfig::new(Backend::StuckAt);
    let sources = ["s27", "s42"]
        .iter()
        .map(|name| CircuitSource::suite(&suite::by_name(name).expect("suite"), name))
        .collect();
    let plan = FleetPlan::new("bench", addrs, config, sources, units_per_circuit)
        .expect("bench fleet plan");
    let units = plan.units.len();

    let start = Instant::now();
    let report = Coordinator::create(base.join("coord"), plan)
        .expect("bench coordinator")
        .with_poll(std::time::Duration::from_millis(10))
        .run()
        .expect("bench fleet converges");
    let elapsed = start.elapsed().as_secs_f64();

    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    let faults: usize = report.nodes.iter().map(|n| n.faults).sum();
    FleetFigures {
        nodes,
        workers,
        units,
        cluster_units_per_sec: units as f64 / elapsed,
        faults_per_sec_per_node: faults as f64 / elapsed / nodes.max(1) as f64,
    }
}

/// What the `--chaos` bench measured.
struct ChaosFigures {
    nodes: usize,
    units: usize,
    faults_injected: usize,
    recoveries: usize,
    wall_secs: f64,
}

/// The fleet campaign again, but under seeded fault injection: a chaos
/// proxy on every node link plus disk chaos on the coordinator's own
/// documents. Reports how many faults were injected, how many recovery
/// actions the stack took (quarantines, requeues, steals, warnings),
/// and the wall time the chaos cost.
fn chaos_campaign(units_per_circuit: usize, nodes: usize, workers: usize) -> ChaosFigures {
    use gdf_chaos::{ChaosDisk, ChaosGuard, ChaosProxy, ChaosSchedule};
    use gdf_core::artifact::CircuitSource;
    use gdf_core::engine::{Backend, RunConfig};
    use gdf_fleet::{Coordinator, FleetPlan};
    use gdf_serve::{JobServer, ServeConfig};
    use std::sync::Arc;

    let base = std::env::temp_dir().join(format!("gdf-bench-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let servers: Vec<JobServer> = (0..nodes)
        .map(|i| {
            JobServer::start(
                ServeConfig::new("127.0.0.1:0", base.join(format!("node-{i}")))
                    .with_workers(workers),
            )
            .expect("bench chaos node starts")
        })
        .collect();
    let net: Vec<Arc<ChaosSchedule>> = (0..nodes)
        .map(|i| Arc::new(ChaosSchedule::new(0xBE7C + i as u64, 0.3)))
        .collect();
    let mut proxies: Vec<ChaosProxy> = servers
        .iter()
        .zip(&net)
        .map(|(server, schedule)| {
            ChaosProxy::start(
                server.local_addr(),
                Arc::clone(schedule),
                std::time::Duration::from_millis(75),
            )
            .expect("bench chaos proxy starts")
        })
        .collect();
    let coord_dir = base.join("coord");
    let addrs = proxies.iter().map(|p| p.local_addr().to_string()).collect();
    let config = RunConfig::new(Backend::StuckAt);
    let sources = ["s27", "s42"]
        .iter()
        .map(|name| CircuitSource::suite(&suite::by_name(name).expect("suite"), name))
        .collect();
    let plan = FleetPlan::new("bench-chaos", addrs, config, sources, units_per_circuit)
        .expect("bench chaos plan");
    let units = plan.units.len();

    let mut coordinator = Coordinator::create(&coord_dir, plan)
        .expect("bench chaos coordinator")
        .with_poll(std::time::Duration::from_millis(10));
    // Chaos starts with the campaign: `create` failing its very first
    // plan save is the documented fail-fast path, not a benchmark.
    let disk = Arc::new(ChaosSchedule::new(0xD15C, 0.15));
    let guard = ChaosGuard::install(ChaosDisk::new(Arc::clone(&disk), &coord_dir));
    let start = Instant::now();
    let report = coordinator.run().expect("bench chaos fleet converges");
    let wall_secs = start.elapsed().as_secs_f64();
    drop(guard);

    for proxy in &mut proxies {
        proxy.stop();
    }
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&base);
    ChaosFigures {
        nodes,
        units,
        faults_injected: disk.injected() + net.iter().map(|s| s.injected()).sum::<usize>(),
        recoveries: report.campaign.warnings.len() + report.stolen,
        wall_secs,
    }
}

/// What the `--cache` bench measured.
struct CacheFigures {
    jobs: usize,
    cold_jobs_per_sec: f64,
    warm_jobs_per_sec: f64,
    cache_hits: u64,
    compaction_ratio: f64,
}

/// The result-cache trajectory: two identical rounds of stuck-at `s27`
/// jobs against **one** server directory. Round one lands on an empty
/// store (cold — real generation); round two resubmits the same spec and
/// is answered from the exact result cache (warm). Also runs the
/// bloom-gated campaign compaction over fresh non-scan `s27`+`s42` runs
/// and records the global vectors-after/vectors-before ratio.
fn cache_throughput(jobs: usize, workers: usize) -> CacheFigures {
    use gdf_core::artifact::{CircuitSource, RunArtifact};
    use gdf_core::engine::{Atpg, Backend, RunConfig};
    use gdf_serve::server::submission_for_suite;
    use gdf_serve::{Client, JobServer, ServeConfig};
    use gdf_store::compact_campaign;

    let dir = std::env::temp_dir().join(format!("gdf-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(workers)
            .with_queue_capacity(jobs.max(1)),
    )
    .expect("bench cache server starts");
    let client = Client::new(server.local_addr().to_string());
    let config = RunConfig::new(Backend::StuckAt);
    let submission = submission_for_suite("suite:s27", &config);

    let round = || {
        let start = Instant::now();
        let ids: Vec<_> = (0..jobs)
            .map(|_| client.submit(&submission).expect("submit"))
            .collect();
        for id in ids {
            client
                .wait(
                    id,
                    std::time::Duration::from_millis(5),
                    Some(std::time::Duration::from_secs(300)),
                )
                .expect("job completes");
        }
        jobs as f64 / start.elapsed().as_secs_f64()
    };
    let cold_jobs_per_sec = round();
    let warm_jobs_per_sec = round();
    let cache_hits = client
        .metric("gdf_cache_hits_total")
        .ok()
        .flatten()
        .unwrap_or(0.0) as u64;
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let mut inputs = Vec::new();
    for name in ["s27", "s42"] {
        let circuit = suite::by_name(name).expect("suite circuit");
        let run = Atpg::builder(&circuit).build().run();
        let artifact = RunArtifact::from_run(
            &circuit,
            &run,
            RunConfig::new(Backend::NonScan),
            Some(CircuitSource::suite(&circuit, name)),
        );
        inputs.push((circuit, artifact));
    }
    let compaction = compact_campaign(&inputs, 0x1995).expect("bench compaction");
    let compaction_ratio = if compaction.set.patterns_before == 0 {
        1.0
    } else {
        compaction.set.patterns_after as f64 / compaction.set.patterns_before as f64
    };
    CacheFigures {
        jobs,
        cold_jobs_per_sec,
        warm_jobs_per_sec,
        cache_hits,
        compaction_ratio,
    }
}

/// What the `--obs` bench measured.
struct ObsFigures {
    jobs: usize,
    off_jobs_per_sec: f64,
    on_jobs_per_sec: f64,
    overhead_pct: f64,
    traces_written: u64,
}

/// One observability round: `jobs` distinct stuck-at `s27` submissions
/// (seed varied per job so every one is a real run, never a cache hit)
/// against a fresh server with observability on or off, timed from
/// first submit to last completion.
fn obs_round(jobs: usize, workers: usize, obs: bool) -> (f64, u64) {
    use gdf_core::engine::{Backend, RunConfig};
    use gdf_serve::server::submission_for_suite;
    use gdf_serve::{Client, JobServer, ServeConfig};

    let dir = std::env::temp_dir().join(format!(
        "gdf-bench-obs-{}-{}",
        if obs { "on" } else { "off" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(workers)
            .with_queue_capacity(jobs.max(1))
            .with_obs(obs),
    )
    .expect("bench obs server starts");
    let client = Client::new(server.local_addr().to_string());

    let start = Instant::now();
    let ids: Vec<_> = (0..jobs)
        .map(|i| {
            let mut config = RunConfig::new(Backend::StuckAt);
            config.seed = 0x0B5_0000 + i as u64;
            client
                .submit(&submission_for_suite("suite:s27", &config))
                .expect("submit")
        })
        .collect();
    for id in ids {
        client
            .wait(
                id,
                std::time::Duration::from_millis(5),
                Some(std::time::Duration::from_secs(300)),
            )
            .expect("job completes");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let traces = client
        .metric("gdf_traces_written_total")
        .ok()
        .flatten()
        .unwrap_or(0.0) as u64;
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (jobs as f64 / elapsed, traces)
}

/// The observability overhead trajectory: the same job mix with the
/// whole stack off and on (phase sink, per-phase histograms, per-job
/// tracer + profiler, trace documents). Three interleaved off/on pairs,
/// aggregated over total elapsed time, so a CPU-frequency or scheduler
/// swing hits both modes alike instead of biasing a percent-level
/// comparison. (Interleaving does leave the process-global phase sink
/// installed during the later off rounds; its cost — one histogram
/// observe per span — is nanoseconds against multi-millisecond jobs.)
fn obs_overhead(jobs: usize, workers: usize) -> ObsFigures {
    let mut elapsed = [0.0f64; 2];
    let mut traces_written = 0;
    for _ in 0..3 {
        for obs in [false, true] {
            let (rate, traces) = obs_round(jobs, workers, obs);
            elapsed[obs as usize] += jobs as f64 / rate;
            if obs {
                traces_written = traces;
            }
        }
    }
    let off_jobs_per_sec = 3.0 * jobs as f64 / elapsed[0];
    let on_jobs_per_sec = 3.0 * jobs as f64 / elapsed[1];
    ObsFigures {
        jobs,
        off_jobs_per_sec,
        on_jobs_per_sec,
        overhead_pct: (1.0 - on_jobs_per_sec / off_jobs_per_sec) * 100.0,
        traces_written,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let fleet = args.iter().any(|a| a == "--fleet");
    let chaos = args.iter().any(|a| a == "--chaos");
    let cache = args.iter().any(|a| a == "--cache");
    let obs = args.iter().any(|a| a == "--obs");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fsim.json".to_string());
    let (patterns, eval_frames) = if smoke { (4, 100) } else { (64, 20_000) };

    let gen1k = generate(&CircuitProfile::new("gen1k", 32, 16, 32, 1000, 0xF51));
    let circuits = [suite::s27(), suite::table3_circuit("s208").unwrap(), gen1k];

    let mut rows = Vec::new();
    for c in &circuits {
        // Small circuits get more patterns so timings are not noise.
        let scale = (2000 / c.num_gates().max(1)).clamp(1, 64);
        let row = bench_circuit(c, patterns * scale, eval_frames);
        println!(
            "{:<8} {:>5} gates {:>5} faults  scalar {:>12.0} f/s  packed {:>12.0} f/s  speedup {:>6.2}x  {:>7.2} ns/gate-eval",
            row.name,
            row.gates,
            row.faults,
            row.scalar_faults_per_sec,
            row.packed_faults_per_sec,
            row.speedup,
            row.ns_per_gate_eval,
        );
        rows.push(row);
    }

    let (serve_jobs, serve_workers) = if smoke { (8, 4) } else { (32, 4) };
    let jobs_per_sec = serve_jobs_per_sec(serve_jobs, serve_workers);
    println!(
        "serve    {serve_jobs} jobs / {serve_workers} workers  {jobs_per_sec:>8.1} jobs/s end-to-end"
    );

    let fleet_figures = fleet.then(|| {
        let (units_per_circuit, nodes, workers) = if smoke { (3, 2, 2) } else { (8, 2, 4) };
        let f = fleet_throughput(units_per_circuit, nodes, workers);
        println!(
            "fleet    {} units / {} nodes  {:>8.1} units/s cluster  {:>10.0} faults/s/node",
            f.units, f.nodes, f.cluster_units_per_sec, f.faults_per_sec_per_node
        );
        f
    });

    let chaos_figures = chaos.then(|| {
        let (units_per_circuit, nodes, workers) = if smoke { (3, 2, 2) } else { (6, 2, 4) };
        let c = chaos_campaign(units_per_circuit, nodes, workers);
        println!(
            "chaos    {} units / {} nodes  {} faults injected  {} recoveries  {:.2}s wall",
            c.units, c.nodes, c.faults_injected, c.recoveries, c.wall_secs
        );
        c
    });

    let cache_figures = cache.then(|| {
        let (jobs, workers) = if smoke { (8, 4) } else { (32, 4) };
        let c = cache_throughput(jobs, workers);
        println!(
            "cache    {} jobs  cold {:>8.1} jobs/s  warm {:>8.1} jobs/s  {} hits  compaction {:.2}x",
            c.jobs, c.cold_jobs_per_sec, c.warm_jobs_per_sec, c.cache_hits, c.compaction_ratio
        );
        c
    });

    let obs_figures = obs.then(|| {
        // Even the smoke rounds need enough work per round (~1s) for a
        // percent-level comparison to clear scheduler noise.
        let (jobs, workers) = if smoke { (24, 4) } else { (48, 4) };
        let o = obs_overhead(jobs, workers);
        println!(
            "obs      {} jobs  off {:>8.1} jobs/s  on {:>8.1} jobs/s  overhead {:>5.1}%  {} traces",
            o.jobs, o.off_jobs_per_sec, o.on_jobs_per_sec, o.overhead_pct, o.traces_written
        );
        o
    });

    // Timestamp each appended record so the accumulated trajectory in
    // BENCH_fsim.json stays ordered and attributable across PRs; the
    // shared `append_record` refuses records that forgot the stamp.
    let unix_time = gdf_bench::unix_time_now();
    let mut record = String::new();
    let _ = writeln!(record, "  {{");
    let _ = writeln!(record, "    \"bench\": \"fsim\",");
    let _ = writeln!(record, "    \"unix_time\": {unix_time},");
    let _ = writeln!(
        record,
        "    \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(record, "    \"circuits\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            record,
            "      {{\"name\": \"{}\", \"gates\": {}, \"faults\": {}, \"patterns\": {}, \
             \"scalar_faults_per_sec\": {:.0}, \"packed_faults_per_sec\": {:.0}, \
             \"speedup\": {:.2}, \"ns_per_gate_eval\": {:.2}}}{}",
            r.name,
            r.gates,
            r.faults,
            r.patterns,
            r.scalar_faults_per_sec,
            r.packed_faults_per_sec,
            r.speedup,
            r.ns_per_gate_eval,
            comma
        );
    }
    let _ = writeln!(record, "    ],");
    let _ = writeln!(
        record,
        "    \"serve\": {{\"circuit\": \"s27\", \"backend\": \"stuck-at\", \"jobs\": {serve_jobs}, \
         \"workers\": {serve_workers}, \"jobs_per_sec\": {jobs_per_sec:.1}}}{}",
        if fleet_figures.is_some()
            || chaos_figures.is_some()
            || cache_figures.is_some()
            || obs_figures.is_some()
        {
            ","
        } else {
            ""
        }
    );
    if let Some(f) = &fleet_figures {
        let _ = writeln!(
            record,
            "    \"fleet\": {{\"circuits\": [\"s27\", \"s42\"], \"backend\": \"stuck-at\", \
             \"nodes\": {}, \"workers\": {}, \"units\": {}, \
             \"cluster_units_per_sec\": {:.1}, \"faults_per_sec_per_node\": {:.0}}}{}",
            f.nodes,
            f.workers,
            f.units,
            f.cluster_units_per_sec,
            f.faults_per_sec_per_node,
            if chaos_figures.is_some() || cache_figures.is_some() || obs_figures.is_some() {
                ","
            } else {
                ""
            }
        );
    }
    if let Some(c) = &chaos_figures {
        let _ = writeln!(
            record,
            "    \"chaos\": {{\"circuits\": [\"s27\", \"s42\"], \"backend\": \"stuck-at\", \
             \"nodes\": {}, \"units\": {}, \"faults_injected\": {}, \
             \"recoveries\": {}, \"wall_secs\": {:.2}}}{}",
            c.nodes,
            c.units,
            c.faults_injected,
            c.recoveries,
            c.wall_secs,
            if cache_figures.is_some() || obs_figures.is_some() {
                ","
            } else {
                ""
            }
        );
    }
    if let Some(c) = &cache_figures {
        let _ = writeln!(
            record,
            "    \"cache\": {{\"circuit\": \"s27\", \"backend\": \"stuck-at\", \"jobs\": {}, \
             \"cold_jobs_per_sec\": {:.1}, \"warm_jobs_per_sec\": {:.1}, \"cache_hits\": {}, \
             \"compaction_ratio\": {:.3}}}{}",
            c.jobs,
            c.cold_jobs_per_sec,
            c.warm_jobs_per_sec,
            c.cache_hits,
            c.compaction_ratio,
            if obs_figures.is_some() { "," } else { "" }
        );
    }
    if let Some(o) = &obs_figures {
        let _ = writeln!(
            record,
            "    \"obs\": {{\"circuit\": \"s27\", \"backend\": \"stuck-at\", \"jobs\": {}, \
             \"off_jobs_per_sec\": {:.1}, \"on_jobs_per_sec\": {:.1}, \"overhead_pct\": {:.1}, \
             \"traces_written\": {}}}",
            o.jobs, o.off_jobs_per_sec, o.on_jobs_per_sec, o.overhead_pct, o.traces_written
        );
    }
    let _ = write!(record, "  }}");
    gdf_bench::append_record(&out_path, &record).expect("write bench record");
    println!("appended record to {out_path}");
}
