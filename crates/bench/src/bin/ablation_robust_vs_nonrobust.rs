//! Ablation for the paper's closing claim (§7): *"This number [of
//! untestable faults] is expected to be significantly decreased by using a
//! non-robust fault model."*
//!
//! Runs the full system under both models and reports the change in the
//! tested/untestable split.
//!
//! ```text
//! cargo run --release -p gdf-bench --bin ablation_robust_vs_nonrobust
//! ```

use gdf_bench::{run_circuit, selected_circuits};
use gdf_core::DelayAtpgConfig;
use gdf_tdgen::Sensitization;

fn main() {
    let circuits: Vec<String> = if std::env::var("GDF_CIRCUITS").is_ok() {
        selected_circuits()
    } else {
        // The claim shows on the small/medium circuits already; keep the
        // default run short.
        ["s27", "s208", "s298", "s344", "s386"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };

    println!("robust vs non-robust gate delay fault model (paper §7 claim)\n");
    println!(
        "{:<11} | {:>8} {:>10} {:>8} | {:>8} {:>10} {:>8} | {:>10}",
        "circuit", "tested", "untestable", "aborted", "tested", "untestable", "aborted", "Δuntest"
    );
    println!(
        "{:<11} | {:^28} | {:^28} |",
        "", "—— robust ——", "—— non-robust ——"
    );
    println!("{}", "-".repeat(95));
    for name in &circuits {
        let robust = run_circuit(name, DelayAtpgConfig::default());
        let nonrobust = run_circuit(
            name,
            DelayAtpgConfig::new().with_sensitization(Sensitization::NonRobust),
        );
        let r = &robust.report.row;
        let n = &nonrobust.report.row;
        let delta = r.untestable as i64 - n.untestable as i64;
        println!(
            "{:<11} | {:>8} {:>10} {:>8} | {:>8} {:>10} {:>8} | {:>+10}",
            r.circuit, r.tested, r.untestable, r.aborted, n.tested, n.untestable, n.aborted, -delta
        );
        assert!(
            n.untestable <= r.untestable,
            "{name}: relaxing the model must not create untestables"
        );
    }
    println!(
        "\nreproduced: the non-robust model strictly shrinks the untestable\n\
         count (at the price of tests that hazards can invalidate)."
    );
}
