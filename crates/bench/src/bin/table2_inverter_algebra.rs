//! Regenerates **Table 2** of the paper: the inverter truth table of the
//! 8-valued robust delay algebra.
//!
//! ```text
//! cargo run -p gdf-bench --bin table2_inverter_algebra
//! ```

use gdf_algebra::delay::DelayValue;
use gdf_algebra::tables::render_inverter_table;

fn main() {
    println!("Table 2 — truth table for the inverter (paper §3):\n");
    print!("{}", render_inverter_table());

    // Assert the involution structure the paper's table encodes.
    use DelayValue::*;
    let expect = [
        (S0, S1),
        (S1, S0),
        (R, F),
        (F, R),
        (H0, H1),
        (H1, H0),
        (Rc, Fc),
        (Fc, Rc),
    ];
    for (input, output) in expect {
        assert_eq!(input.not(), output, "NOT({input})");
    }
    println!(
        "\nreading: frame values invert, hazards stay hazards, and the\n\
         fault-effect mark survives with flipped polarity (Rc ↔ Fc) — an\n\
         inverter never blocks robust propagation.   ✓ reproduced"
    );
}
