//! Regenerates **Table 3** of the paper: per-circuit fault accounting for
//! the robust gate-delay-fault ATPG on the ISCAS'89 suite (exact `s27`,
//! synthetic profile-matched stand-ins for the rest — see `DESIGN.md` §5).
//!
//! ```text
//! cargo run --release -p gdf-bench --bin table3_benchmarks
//! GDF_QUICK=1    … only the circuits that finish in seconds
//! GDF_CIRCUITS=s27,s298,s344 … explicit selection
//! ```
//!
//! Absolute numbers cannot match a 1995 SPARCstation run on the original
//! netlists; the claims under reproduction are the *shape*: a large
//! untestable fraction caused by the strict robust model, non-negligible
//! aborts at the 100-backtrack limits, pattern counts that include
//! initialization and propagation frames, and runtime growth with circuit
//! size.

use gdf_bench::{paper_row, run_circuit, selected_circuits};
use gdf_core::DelayAtpgConfig;

fn main() {
    let circuits = selected_circuits();
    println!(
        "Table 3 — benchmark results (ours vs. paper; paper time is on a\n\
         Sun SPARCstation 10 against the original netlists)\n"
    );
    println!(
        "{:<11} | {:>7} {:>8} {:>8} {:>7} {:>8} | {:>7} {:>8} {:>8} {:>7} {:>8}",
        "circuit",
        "tested",
        "untstbl",
        "aborted",
        "#pat",
        "time[s]",
        "tested",
        "untstbl",
        "aborted",
        "#pat",
        "time[s]"
    );
    println!(
        "{:<11} | {:^41} | {:^41}",
        "", "—— this reproduction ——", "—— paper (1995) ——"
    );
    println!("{}", "-".repeat(101));

    let mut totals = (0u32, 0u32, 0u32);
    for name in &circuits {
        let run = run_circuit(name, DelayAtpgConfig::default());
        let r = &run.report.row;
        let (pt, pu, pa, pp, ps) = paper_row(name).unwrap_or((0, 0, 0, 0, 0));
        println!(
            "{:<11} | {:>7} {:>8} {:>8} {:>7} {:>8.1} | {:>7} {:>8} {:>8} {:>7} {:>8}",
            r.circuit,
            r.tested,
            r.untestable,
            r.aborted,
            r.patterns,
            r.elapsed.as_secs_f64(),
            pt,
            pu,
            pa,
            pp,
            ps
        );
        totals.0 += r.tested;
        totals.1 += r.untestable;
        totals.2 += r.aborted;
    }
    println!("{}", "-".repeat(101));
    let total = (totals.0 + totals.1 + totals.2).max(1);
    println!(
        "totals: {} tested ({:.0}%), {} untestable ({:.0}%), {} aborted ({:.0}%)",
        totals.0,
        100.0 * totals.0 as f64 / total as f64,
        totals.1,
        100.0 * totals.1 as f64 / total as f64,
        totals.2,
        100.0 * totals.2 as f64 / total as f64,
    );
    println!(
        "\nshape check (paper §6): \"the number of untestable faults due to a\n\
         strong robust delay fault model is large\" — reproduced: the\n\
         untestable fraction dominates on the sequential-heavy circuits."
    );
}
