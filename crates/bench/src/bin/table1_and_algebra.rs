//! Regenerates **Table 1** of the paper: the 8-valued AND-gate truth table
//! of the robust gate-delay-fault algebra, including the fault-carrying
//! `Rc`/`Fc` rows printed in the paper.
//!
//! ```text
//! cargo run -p gdf-bench --bin table1_and_algebra
//! ```

use gdf_algebra::delay::DelayValue;
use gdf_algebra::tables::{and_table_row, render_two_input_table};
use gdf_netlist::GateKind;

fn main() {
    println!("Table 1 — truth table for the AND gate (paper §3):\n");
    print!("{}", render_two_input_table(GateKind::And));

    // The two rows the paper prints explicitly, asserted verbatim.
    use DelayValue::*;
    let rc = and_table_row(Rc);
    let fc = and_table_row(Fc);
    assert_eq!(rc, [S0, Rc, Rc, H0, H0, Rc, Rc, H0], "Rc row");
    assert_eq!(fc, [S0, Fc, H0, F, H0, F, H0, Fc], "Fc row");
    println!("\npaper's Rc row: 0  Rc  Rc  0h  0h  Rc | Rc  0h   ✓ reproduced");
    println!("paper's Fc row: 0  Fc  0h  F   0h  F  | 0h  Fc   ✓ reproduced");

    println!(
        "\nreading: Rc propagates past any off-path input with final value 1\n\
         (columns 1, R, 1h, Rc), while Fc needs a steady, hazard-free 1\n\
         (columns 1 and Fc only) — the paper's robustness criterion."
    );

    println!("\nDe-Morgan-derived tables (paper: \"from these two truth tables\u{2026}\"):\n");
    for kind in [GateKind::Or, GateKind::Nand, GateKind::Nor] {
        print!("{}", render_two_input_table(kind));
        println!();
    }
}
