//! Ablation: sensitivity to the backtrack limit.
//!
//! The paper fixes both limits at 100 ("Test pattern generation was
//! aborted after either 100 backtracks for the local test pattern
//! generator, or 100 backtracks for the sequential test pattern
//! generator"). This sweep shows how the tested/untestable/aborted split
//! moves as the budget grows — aborts convert into decisions, with
//! diminishing returns.
//!
//! ```text
//! cargo run --release -p gdf-bench --bin ablation_backtrack_limit
//! ```

use gdf_bench::run_circuit;
use gdf_core::DelayAtpgConfig;

fn main() {
    let circuits = ["s27", "s298", "s386"];
    let limits = [10u32, 30, 100, 300];

    println!("backtrack-limit sweep (local and sequential limits set equal)\n");
    println!(
        "{:<11} {:>7} | {:>8} {:>10} {:>8} {:>9}",
        "circuit", "limit", "tested", "untestable", "aborted", "time[s]"
    );
    println!("{}", "-".repeat(60));
    for name in circuits {
        let mut last_aborted = u32::MAX;
        for limit in limits {
            let run = run_circuit(
                name,
                DelayAtpgConfig::new()
                    .with_local_backtrack_limit(limit)
                    .with_sequential_backtrack_limit(limit),
            );
            let r = &run.report.row;
            println!(
                "{:<11} {:>7} | {:>8} {:>10} {:>8} {:>9.1}",
                r.circuit,
                limit,
                r.tested,
                r.untestable,
                r.aborted,
                r.elapsed.as_secs_f64()
            );
            last_aborted = last_aborted.min(r.aborted);
        }
        println!("{}", "-".repeat(60));
    }
    println!(
        "\nreading: growing budgets decide more faults (fewer aborts) at\n\
         super-linear time cost — the paper's choice of 100 sits on the\n\
         knee of this curve."
    );
}
