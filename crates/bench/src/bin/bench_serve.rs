//! `bench_serve`: the multi-tenant serving load harness.
//!
//! Hammers an in-process [`gdf_serve::JobServer`] — running with a
//! two-tenant registry (`acme` at weight 2, `zeta` at weight 1) — with
//! many concurrent authenticated clients submitting distinct-seed
//! stuck-at `s27` jobs over real HTTP, plus a few `/events` streamers
//! riding along. Records end-to-end **jobs/sec**, **p50/p99 submit
//! latency**, and the **weight-normalized per-tenant fairness ratio**
//! (how close the contended completion shares track the configured
//! 2:1 weights; 1.0 is perfect) into `BENCH_fsim.json` as a
//! `"serve_load"` record.
//!
//! ```text
//! cargo run --release -p gdf-bench --bin bench_serve            # full load
//! cargo run --release -p gdf-bench --bin bench_serve -- --smoke # CI smoke
//! cargo run --release -p gdf-bench --bin bench_serve -- --out path.json
//! ```
//!
//! `--smoke` additionally *asserts* the fairness ratio lands within
//! `[1/3, 3]`, so CI fails if the weighted scheduler stops doing its
//! job under contention.

use gdf_core::engine::{Backend, RunConfig};
use gdf_core::json::Json;
use gdf_serve::server::submission_for_suite;
use gdf_serve::{Client, JobId, JobServer, ServeConfig};
use gdf_tenant::{TenantRegistry, TenantSpec};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Bearer tokens for the two bench tenants.
const TOKENS: [(&str, &str); 2] = [("acme", "bench-token-acme"), ("zeta", "bench-token-zeta")];

/// The shape of one load run.
struct LoadPlan {
    workers: usize,
    /// Submitting client threads per tenant, `(acme, zeta)` — 2:1 so
    /// the offered load matches the 2:1 scheduling weights.
    clients: (usize, usize),
    /// Jobs each client submits.
    jobs_per_client: usize,
    /// `/events` streamer threads riding along.
    streamers: usize,
}

/// What the run measured.
struct LoadFigures {
    jobs: usize,
    jobs_per_sec: f64,
    submit_p50_ms: f64,
    submit_p99_ms: f64,
    /// Per-tenant completions at the contended midpoint snapshot.
    acme_done: usize,
    zeta_done: usize,
    /// `(acme_done / weight) / (zeta_done / weight)`; 1.0 = the shares
    /// track the configured weights exactly.
    fairness_ratio: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn run_load(plan: &LoadPlan) -> LoadFigures {
    let registry = TenantRegistry::new(vec![
        TenantSpec::new("acme", TOKENS[0].1).with_weight(2),
        TenantSpec::new("zeta", TOKENS[1].1).with_weight(1),
    ])
    .expect("bench registry");
    let total_jobs = (plan.clients.0 + plan.clients.1) * plan.jobs_per_client;

    let dir = std::env::temp_dir().join(format!("gdf-bench-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = JobServer::start(
        ServeConfig::new("127.0.0.1:0", &dir)
            .with_workers(plan.workers)
            .with_queue_capacity(total_jobs.max(1))
            .with_tenants(registry),
    )
    .expect("bench load server starts");
    let addr = server.local_addr().to_string();

    // Every job gets a distinct seed so none is a cache hit: the bench
    // measures scheduling and real work, not the result cache.
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::with_capacity(total_jobs)));
    let ids: Arc<Mutex<Vec<(usize, JobId)>>> = Arc::new(Mutex::new(Vec::with_capacity(total_jobs)));

    let started = Instant::now();
    let mut handles = Vec::new();
    let mut client_index = 0usize;
    for (tenant, count) in [(0usize, plan.clients.0), (1usize, plan.clients.1)] {
        for _ in 0..count {
            let addr = addr.clone();
            let latencies = Arc::clone(&latencies);
            let ids = Arc::clone(&ids);
            let jobs_per_client = plan.jobs_per_client;
            let seed_base = 0x5E_4000 + (client_index * jobs_per_client) as u64;
            client_index += 1;
            let handle = std::thread::Builder::new()
                .name(format!("bench-client-{client_index}"))
                // Hundreds of submitters in full mode: keep stacks small.
                .stack_size(256 * 1024)
                .spawn(move || {
                    let client = Client::new(addr)
                        .with_token(TOKENS[tenant].1)
                        .with_timeout(Duration::from_secs(30));
                    for j in 0..jobs_per_client {
                        let mut config = RunConfig::new(Backend::StuckAt);
                        config.seed = seed_base + j as u64;
                        let submission = submission_for_suite("suite:s27", &config);
                        let at = Instant::now();
                        let id = client.submit(&submission).expect("bench submit");
                        let ms = at.elapsed().as_secs_f64() * 1e3;
                        latencies.lock().unwrap().push(ms);
                        ids.lock().unwrap().push((tenant, id));
                    }
                })
                .expect("spawn bench client");
            handles.push(handle);
        }
    }

    // A few streamers follow `/events` of early jobs while the load is
    // in flight, so the chunked-stream path is exercised under
    // contention too (they are observers, not part of the timing).
    let mut streamer_handles = Vec::new();
    for s in 0..plan.streamers {
        let addr = addr.clone();
        let ids = Arc::clone(&ids);
        let handle = std::thread::Builder::new()
            .name(format!("bench-streamer-{s}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                let client = Client::new(addr).with_timeout(Duration::from_secs(30));
                // Wait for a job to follow.
                let id = loop {
                    if let Some(&(_, id)) = ids.lock().unwrap().get(s) {
                        break id;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                };
                let mut seen = 0usize;
                let _ = client.events(id, |event| {
                    seen += 1;
                    // Stop at the terminal event (or a runaway stream).
                    !matches!(event, gdf_core::session::ProgressEvent::Finished { .. })
                        && seen < 10_000
                });
            })
            .expect("spawn bench streamer");
        streamer_handles.push(handle);
    }

    for handle in handles {
        handle.join().expect("bench client thread");
    }
    // Streamer threads still share the Arc; clone the finished list.
    let ids: Vec<(usize, JobId)> = ids.lock().unwrap().clone();
    assert_eq!(ids.len(), total_jobs, "every submit landed");

    // Poll completions. The fairness snapshot is taken at the midpoint
    // — while both tenants still have queued work, i.e. under real
    // contention — then the run continues to full drain for jobs/sec.
    let poll_client = Client::new(addr.clone()).with_timeout(Duration::from_secs(30));
    let mut midpoint: Option<(usize, usize)> = None;
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let mut done = [0usize; 2];
        for &(tenant, id) in &ids {
            let status = poll_client.status(id).expect("bench status");
            let state = status.get("state").and_then(Json::as_str).unwrap_or("");
            assert_ne!(state, "failed", "bench job failed");
            if state == "done" {
                done[tenant] += 1;
            }
        }
        let total_done = done[0] + done[1];
        if midpoint.is_none() && total_done * 2 >= total_jobs {
            midpoint = Some((done[0], done[1]));
        }
        if total_done == total_jobs {
            break;
        }
        assert!(Instant::now() < deadline, "bench load run timed out");
        std::thread::sleep(Duration::from_millis(10));
    }
    let elapsed = started.elapsed().as_secs_f64();
    for handle in streamer_handles {
        handle.join().expect("bench streamer thread");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let (acme_done, zeta_done) = midpoint.expect("midpoint snapshot taken");
    // Normalize by the configured 2:1 weights; guard the degenerate
    // zero so a wildly unfair run yields a huge ratio, not a panic.
    let fairness_ratio = (acme_done as f64 / 2.0) / (zeta_done as f64).max(0.5);
    let mut sorted: Vec<f64> = latencies.lock().unwrap().clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LoadFigures {
        jobs: total_jobs,
        jobs_per_sec: total_jobs as f64 / elapsed,
        submit_p50_ms: percentile(&sorted, 0.50),
        submit_p99_ms: percentile(&sorted, 0.99),
        acme_done,
        zeta_done,
        fairness_ratio,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fsim.json".to_string());

    let plan = if smoke {
        LoadPlan {
            workers: 2,
            clients: (16, 8),
            jobs_per_client: 2,
            streamers: 2,
        }
    } else {
        LoadPlan {
            workers: 4,
            clients: (48, 24),
            jobs_per_client: 4,
            streamers: 4,
        }
    };
    let figures = run_load(&plan);
    println!(
        "serve_load {} jobs / {} workers / {}+{} clients  {:>8.1} jobs/s  \
         submit p50 {:.2} ms  p99 {:.2} ms  fairness {}:{} (ratio {:.2})",
        figures.jobs,
        plan.workers,
        plan.clients.0,
        plan.clients.1,
        figures.jobs_per_sec,
        figures.submit_p50_ms,
        figures.submit_p99_ms,
        figures.acme_done,
        figures.zeta_done,
        figures.fairness_ratio,
    );
    if smoke {
        assert!(
            (1.0 / 3.0..=3.0).contains(&figures.fairness_ratio),
            "weighted fair scheduling drifted: normalized acme:zeta ratio {:.2} \
             (midpoint completions {}:{}) outside [1/3, 3]",
            figures.fairness_ratio,
            figures.acme_done,
            figures.zeta_done,
        );
        println!(
            "fairness bound holds: {:.2} within [1/3, 3]",
            figures.fairness_ratio
        );
    }

    let mut record = String::new();
    let _ = writeln!(record, "  {{");
    let _ = writeln!(record, "    \"bench\": \"serve_load\",");
    let _ = writeln!(record, "    \"unix_time\": {},", gdf_bench::unix_time_now());
    let _ = writeln!(
        record,
        "    \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        record,
        "    \"circuit\": \"s27\", \"backend\": \"stuck-at\", \"workers\": {}, \
         \"clients\": {{\"acme\": {}, \"zeta\": {}}}, \"jobs\": {},",
        plan.workers, plan.clients.0, plan.clients.1, figures.jobs
    );
    let _ = writeln!(
        record,
        "    \"jobs_per_sec\": {:.1}, \"submit_p50_ms\": {:.2}, \"submit_p99_ms\": {:.2},",
        figures.jobs_per_sec, figures.submit_p50_ms, figures.submit_p99_ms
    );
    let _ = writeln!(
        record,
        "    \"fairness\": {{\"weights\": \"2:1\", \"acme_done\": {}, \"zeta_done\": {}, \
         \"normalized_ratio\": {:.2}}}",
        figures.acme_done, figures.zeta_done, figures.fairness_ratio
    );
    let _ = write!(record, "  }}");
    gdf_bench::append_record(&out_path, &record).expect("write bench record");
    println!("appended record to {out_path}");
}
