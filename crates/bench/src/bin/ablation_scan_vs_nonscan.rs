//! Ablation: non-scan (this paper) versus enhanced-scan delay ATPG.
//!
//! The paper's motivation is avoiding "area expensive Design for
//! Testability circuitry"; the cost is the sequential propagation /
//! initialization machinery and its untestables and aborts. This bench
//! quantifies the trade on the same circuits and fault lists: with
//! enhanced scan, every fault reduces to a combinational two-pattern
//! problem.
//!
//! ```text
//! cargo run --release -p gdf-bench --bin ablation_scan_vs_nonscan
//! ```

use gdf_bench::run_circuit;
use gdf_core::scan::ScanDelayAtpg;
use gdf_core::DelayAtpgConfig;
use gdf_core::FaultOutcome;
use gdf_netlist::{suite, FaultUniverse};
use std::time::Instant;

fn main() {
    let circuits = ["s27", "s208", "s298", "s344", "s386"];

    println!("non-scan (paper) vs enhanced-scan delay-fault ATPG\n");
    println!(
        "{:<11} | {:>8} {:>10} {:>8} | {:>8} {:>10} {:>8} {:>9}",
        "circuit", "tested", "untestable", "aborted", "tested", "untestable", "aborted", "time[s]"
    );
    println!(
        "{:<11} | {:^28} | {:^38}",
        "", "—— non-scan ——", "—— enhanced scan ——"
    );
    println!("{}", "-".repeat(92));
    for name in circuits {
        let nonscan = run_circuit(name, DelayAtpgConfig::default());
        let circuit = suite::table3_circuit(name).expect("known circuit");
        let scan = ScanDelayAtpg::new(&circuit);
        let faults = FaultUniverse::default().delay_faults(&circuit);
        let t0 = Instant::now();
        let mut tested = 0u32;
        let mut untestable = 0u32;
        let mut aborted = 0u32;
        for &f in &faults {
            match scan.generate(f) {
                FaultOutcome::Detected(_) => tested += 1,
                FaultOutcome::Untestable => untestable += 1,
                FaultOutcome::Aborted => aborted += 1,
            }
        }
        let r = &nonscan.report.row;
        println!(
            "{:<11} | {:>8} {:>10} {:>8} | {:>8} {:>10} {:>8} {:>9.1}",
            r.circuit,
            r.tested,
            r.untestable,
            r.aborted,
            tested,
            untestable,
            aborted,
            t0.elapsed().as_secs_f64()
        );
        assert!(
            tested >= r.tested,
            "{name}: scan coverage can only be higher"
        );
    }
    println!(
        "\nreading: enhanced scan tests every fault the non-scan flow tests\n\
         and converts most sequential untestables/aborts into tests — the\n\
         trade that made scan-based delay testing the industry default,\n\
         bought with scan area the paper set out to avoid."
    );
}
