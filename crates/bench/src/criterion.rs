//! A minimal, dependency-free stand-in for the slice of the Criterion
//! benchmarking API this workspace uses.
//!
//! The build environment has no crates.io access, so the `benches/`
//! targets run with `harness = false` mains built on this module instead
//! of the real Criterion. The surface is API-compatible for what the
//! bench files need — `Criterion::bench_function`, `benchmark_group` +
//! `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — so swapping the real
//! crate back in later is a one-line import change per bench.
//!
//! Measurement model: each `iter` call first estimates the cost of one
//! iteration, picks a batch size that makes a sample take ≥ ~1 ms (so
//! nanosecond-scale operations are not timer-noise), then records
//! `sample_size` batched samples and reports min / median / mean.
//! `GDF_BENCH_SAMPLES` overrides the sample count.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exports of the harness macros under the familiar names.
pub use crate::{criterion_group, criterion_main};

/// Top-level driver handed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("GDF_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        if let Some(report) = b.report {
            report.print(name);
        }
        self
    }

    /// Opens a named group; group settings apply to its benchmarks only.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of recorded samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        if let Some(report) = b.report {
            report.print(name);
        }
        self
    }

    /// Ends the group (parity with Criterion; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    sample_size: usize,
    report: Option<Report>,
}

struct Report {
    per_iter: Vec<Duration>,
}

impl Report {
    fn print(&self, name: &str) {
        let mut sorted = self.per_iter.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

impl Bencher {
    /// Measures `f`, batching fast routines so each sample is ≥ ~1 ms.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up and batch-size estimation.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(1);
        let batch: u32 = if one >= target {
            1
        } else {
            (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u32
        };

        let mut per_iter = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed() / batch);
        }
        self.report = Some(Report { per_iter });
    }
}

/// Declares a benchmark *suite*: a function running each target against a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point running the listed suites.
#[macro_export]
macro_rules! criterion_main {
    ($($suite:ident),+ $(,)?) => {
        fn main() {
            $( $suite(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_runs_and_reports() {
        let mut c = super::Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
