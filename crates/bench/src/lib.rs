//! Shared helpers for the table-regeneration binaries and the offline
//! benches in `benches/`.

pub mod criterion;

use gdf_core::driver::AtpgRun;
use gdf_core::{DelayAtpg, DelayAtpgConfig};
use gdf_netlist::suite;

/// Circuits selected by the `GDF_CIRCUITS` environment variable
/// (comma-separated names), or the whole Table 3 list. `GDF_QUICK=1`
/// restricts to the circuits that finish in seconds.
pub fn selected_circuits() -> Vec<String> {
    if let Ok(list) = std::env::var("GDF_CIRCUITS") {
        return list.split(',').map(|s| s.trim().to_string()).collect();
    }
    let quick = std::env::var("GDF_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    suite::TABLE3_PROFILES
        .iter()
        .filter(|&&(_, _, _, _, gates, _)| !quick || gates <= 170)
        .map(|&(name, ..)| name.to_string())
        .collect()
}

/// Runs the full ATPG on one Table 3 circuit with the given configuration.
pub fn run_circuit(name: &str, config: DelayAtpgConfig) -> AtpgRun {
    let circuit = suite::table3_circuit(name).expect("known Table 3 circuit");
    DelayAtpg::with_config(&circuit, config).run()
}

/// The paper's reference row, if recorded:
/// `(tested, untestable, aborted, patterns, sparc10 seconds)`.
pub fn paper_row(name: &str) -> Option<(u32, u32, u32, u32, u32)> {
    suite::TABLE3_PAPER_RESULTS
        .iter()
        .find(|&&(n, ..)| n == name)
        .map(|&(_, t, u, a, p, s)| (t, u, a, p, s))
}
