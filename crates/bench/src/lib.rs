//! Shared helpers for the table-regeneration binaries and the offline
//! benches in `benches/`.

pub mod criterion;

use gdf_core::driver::AtpgRun;
use gdf_core::{DelayAtpg, DelayAtpgConfig};
use gdf_netlist::suite;

/// Appends `record` (one pre-formatted JSON object) to the JSON array in
/// `path`, creating `[ … ]` if the file is missing or empty.
///
/// Every appended record **must** carry a `"unix_time"` key — the
/// accumulated trajectory files (`BENCH_fsim.json`) are ordered and
/// attributed by it, and a record without a timestamp silently breaks
/// that ordering for every later reader. The bench bins stamp it via
/// [`unix_time_now`]; this helper refuses records that forgot to.
///
/// # Panics
///
/// Panics if `record` lacks a `"unix_time"` key, or if the existing file
/// is not a JSON array.
pub fn append_record(path: &str, record: &str) -> std::io::Result<()> {
    assert!(
        record.contains("\"unix_time\""),
        "bench record appended to {path} lacks the mandatory \"unix_time\" stamp"
    );
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim();
    let out = if trimmed.is_empty() || trimmed == "[]" {
        format!("[\n{record}\n]\n")
    } else {
        let body = trimmed
            .strip_suffix(']')
            .expect("existing bench file must be a JSON array")
            .trim_end()
            .to_string();
        format!("{body},\n{record}\n]\n")
    };
    std::fs::write(path, out)
}

/// Seconds since the Unix epoch, for stamping bench records.
pub fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Circuits selected by the `GDF_CIRCUITS` environment variable
/// (comma-separated names), or the whole Table 3 list. `GDF_QUICK=1`
/// restricts to the circuits that finish in seconds.
pub fn selected_circuits() -> Vec<String> {
    if let Ok(list) = std::env::var("GDF_CIRCUITS") {
        return list.split(',').map(|s| s.trim().to_string()).collect();
    }
    let quick = std::env::var("GDF_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    suite::TABLE3_PROFILES
        .iter()
        .filter(|&&(_, _, _, _, gates, _)| !quick || gates <= 170)
        .map(|&(name, ..)| name.to_string())
        .collect()
}

/// Runs the full ATPG on one Table 3 circuit with the given configuration.
pub fn run_circuit(name: &str, config: DelayAtpgConfig) -> AtpgRun {
    let circuit = suite::table3_circuit(name).expect("known Table 3 circuit");
    DelayAtpg::with_config(&circuit, config).run()
}

/// The paper's reference row, if recorded:
/// `(tested, untestable, aborted, patterns, sparc10 seconds)`.
pub fn paper_row(name: &str) -> Option<(u32, u32, u32, u32, u32)> {
    suite::TABLE3_PAPER_RESULTS
        .iter()
        .find(|&&(n, ..)| n == name)
        .map(|&(_, t, u, a, p, s)| (t, u, a, p, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("gdf-bench-append-{tag}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn append_record_grows_a_parseable_array() {
        let path = temp_path("grow");
        let _ = std::fs::remove_file(&path);
        append_record(&path, "  {\"bench\": \"a\", \"unix_time\": 1}").unwrap();
        append_record(&path, "  {\"bench\": \"b\", \"unix_time\": 2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = gdf_core::json::Json::parse(&text).expect("appended file stays valid JSON");
        let rows = parsed.as_array().expect("top level is an array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("unix_time").and_then(|t| t.as_f64()), Some(2.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "unix_time")]
    fn append_record_rejects_unstamped_records() {
        let path = temp_path("unstamped");
        let _ = append_record(&path, "  {\"bench\": \"oops\"}");
    }
}
