//! Rendering of the paper's truth tables (Tables 1 and 2).
//!
//! The benchmark binaries `table1_and_algebra` and `table2_inverter_algebra`
//! print these tables so the reproduction can be compared against the paper
//! line by line; the unit tests in [`crate::delay`] assert the entries.

use crate::delay::{eval2, DelayValue};
use gdf_netlist::GateKind;
use std::fmt::Write as _;

/// Renders the full 8×8 two-input table for `kind` in the paper's value
/// order (`0, 1, R, F, 0h, 1h, Rc, Fc`), as an ASCII table.
///
/// # Panics
///
/// Panics for non-combinational or single-input kinds.
///
/// # Example
///
/// ```
/// use gdf_algebra::tables::render_two_input_table;
/// use gdf_netlist::GateKind;
///
/// let t = render_two_input_table(GateKind::And);
/// assert!(t.contains("Rc"));
/// ```
pub fn render_two_input_table(kind: GateKind) -> String {
    assert!(
        kind.is_combinational() && !matches!(kind, GateKind::Buf | GateKind::Not),
        "two-input table requires a multi-input gate kind"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{kind} |  {}", header());
    let _ = writeln!(out, "---+{}", "-".repeat(8 * 5));
    for a in DelayValue::ALL {
        let _ = write!(out, "{:<3}|", a.symbol());
        for b in DelayValue::ALL {
            let _ = write!(out, " {:<4}", eval2(kind, a, b).symbol());
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the inverter table (the paper's Table 2).
pub fn render_inverter_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "in  |  {}", header());
    let _ = writeln!(out, "----+{}", "-".repeat(8 * 5));
    let _ = write!(out, "out |");
    for v in DelayValue::ALL {
        let _ = write!(out, " {:<4}", v.not().symbol());
    }
    let _ = writeln!(out);
    out
}

fn header() -> String {
    let mut h = String::new();
    for v in DelayValue::ALL {
        let _ = write!(h, "{:<5}", v.symbol());
    }
    h
}

/// The table-1 row for value `a` (AND gate), in column order — convenience
/// for tests and the bench binary.
pub fn and_table_row(a: DelayValue) -> [DelayValue; 8] {
    let mut row = [DelayValue::S0; 8];
    for (j, b) in DelayValue::ALL.into_iter().enumerate() {
        row[j] = eval2(GateKind::And, a, b);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use DelayValue::*;

    #[test]
    fn rendered_tables_contain_all_symbols() {
        let t = render_two_input_table(GateKind::And);
        for v in DelayValue::ALL {
            assert!(t.contains(v.symbol()), "{v} missing");
        }
        let inv = render_inverter_table();
        assert!(inv.contains("Fc"));
    }

    #[test]
    fn paper_rc_row_verbatim() {
        // The row printed in the paper for Rc: "0  Rc  Rc  0h  0h  Rc | Rc  0h"
        assert_eq!(and_table_row(Rc), [S0, Rc, Rc, H0, H0, Rc, Rc, H0]);
    }

    #[test]
    fn paper_fc_row_verbatim() {
        // The row printed in the paper for Fc: "0  Fc  0h  F  0h  F | 0h  Fc"
        assert_eq!(and_table_row(Fc), [S0, Fc, H0, F, H0, F, H0, Fc]);
    }

    #[test]
    #[should_panic]
    fn render_rejects_single_input_kinds() {
        let _ = render_two_input_table(GateKind::Not);
    }
}
