//! The 8-valued robust gate-delay-fault algebra of TDgen (paper §3).
//!
//! A [`DelayValue`] describes one signal across the two time frames of a
//! two-pattern delay test:
//!
//! | value | frame 1 | frame 2 | hazard possible | carries fault effect |
//! |-------|---------|---------|-----------------|----------------------|
//! | `0`   | 0       | 0       | no              | no |
//! | `1`   | 1       | 1       | no              | no |
//! | `R`   | 0       | 1       | —               | no |
//! | `F`   | 1       | 0       | —               | no |
//! | `0h`  | 0       | 0       | yes             | no |
//! | `1h`  | 1       | 1       | yes             | no |
//! | `Rc`  | 0       | 1       | —               | **yes** |
//! | `Fc`  | 1       | 0       | —               | **yes** |
//!
//! `Rc`/`Fc` play the role `D`/`D̄` play in static ATPG: they mark
//! transitions that still carry the (potential) delay-fault effect. The
//! tables implemented here encode the paper's robustness criterion — most
//! visibly, through an AND gate `Rc` propagates past any off-path input
//! whose *final* value is 1, while `Fc` propagates only past a *steady,
//! hazard-free* 1 (or another `Fc`).
//!
//! Only the AND and inverter tables are primitive (the paper's Tables 1 and
//! 2); OR/NAND/NOR/XOR/XNOR are derived by De Morgan's rules, exactly as the
//! paper prescribes.

use gdf_netlist::GateKind;
use std::fmt;

/// One value of the 8-valued robust delay algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum DelayValue {
    /// Steady 0 in both frames, hazard-free.
    S0 = 0,
    /// Steady 1 in both frames, hazard-free.
    S1 = 1,
    /// Rising: 0 in the first frame, 1 in the second.
    R = 2,
    /// Falling: 1 in the first frame, 0 in the second.
    F = 3,
    /// Steady 0 with a possible hazard (may glitch to 1 and back).
    H0 = 4,
    /// Steady 1 with a possible hazard (may glitch to 0 and back).
    H1 = 5,
    /// Rising transition carrying the fault effect (slow-to-rise provoked).
    Rc = 6,
    /// Falling transition carrying the fault effect (slow-to-fall provoked).
    Fc = 7,
}

impl DelayValue {
    /// All eight values, in table order `0, 1, R, F, 0h, 1h, Rc, Fc`.
    pub const ALL: [DelayValue; 8] = [
        DelayValue::S0,
        DelayValue::S1,
        DelayValue::R,
        DelayValue::F,
        DelayValue::H0,
        DelayValue::H1,
        DelayValue::Rc,
        DelayValue::Fc,
    ];

    /// Constructs from the `repr` index (0..8).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn from_index(i: u8) -> DelayValue {
        Self::ALL[i as usize]
    }

    /// Index of this value (its `repr`).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// The signal's logic value in the first (initial) time frame.
    pub fn initial(self) -> bool {
        matches!(
            self,
            DelayValue::S1 | DelayValue::F | DelayValue::H1 | DelayValue::Fc
        )
    }

    /// The signal's logic value in the second (test) time frame — in the
    /// *good* machine.
    pub fn final_value(self) -> bool {
        matches!(
            self,
            DelayValue::S1 | DelayValue::R | DelayValue::H1 | DelayValue::Rc
        )
    }

    /// Whether this value marks a possible hazard on a steady signal.
    pub fn has_hazard(self) -> bool {
        matches!(self, DelayValue::H0 | DelayValue::H1)
    }

    /// Whether this value carries the fault effect (`Rc` or `Fc`).
    pub fn carries_fault(self) -> bool {
        matches!(self, DelayValue::Rc | DelayValue::Fc)
    }

    /// Whether this is a transition (`R`, `F`, `Rc` or `Fc`).
    pub fn is_transition(self) -> bool {
        self.initial() != self.final_value()
    }

    /// Whether this is a steady, hazard-free value (`0` or `1`).
    pub fn is_steady_clean(self) -> bool {
        matches!(self, DelayValue::S0 | DelayValue::S1)
    }

    /// The clean (non-fault-carrying, hazard-free) value with the given
    /// frame values.
    pub fn from_frames(initial: bool, final_value: bool) -> DelayValue {
        match (initial, final_value) {
            (false, false) => DelayValue::S0,
            (true, true) => DelayValue::S1,
            (false, true) => DelayValue::R,
            (true, false) => DelayValue::F,
        }
    }

    /// Strips the fault-effect mark: `Rc → R`, `Fc → F`, others unchanged.
    pub fn without_fault_mark(self) -> DelayValue {
        match self {
            DelayValue::Rc => DelayValue::R,
            DelayValue::Fc => DelayValue::F,
            v => v,
        }
    }

    /// Adds the fault-effect mark to a transition: `R → Rc`, `F → Fc`.
    /// Returns `None` for non-transitions (steady values cannot provoke a
    /// delay fault).
    pub fn with_fault_mark(self) -> Option<DelayValue> {
        match self {
            DelayValue::R | DelayValue::Rc => Some(DelayValue::Rc),
            DelayValue::F | DelayValue::Fc => Some(DelayValue::Fc),
            _ => None,
        }
    }

    /// Boolean inversion of the value (the paper's Table 2).
    #[allow(clippy::should_implement_trait)] // method-call syntax without importing std::ops::Not
    pub fn not(self) -> DelayValue {
        match self {
            DelayValue::S0 => DelayValue::S1,
            DelayValue::S1 => DelayValue::S0,
            DelayValue::R => DelayValue::F,
            DelayValue::F => DelayValue::R,
            DelayValue::H0 => DelayValue::H1,
            DelayValue::H1 => DelayValue::H0,
            DelayValue::Rc => DelayValue::Fc,
            DelayValue::Fc => DelayValue::Rc,
        }
    }

    /// The paper's notation for the value.
    pub fn symbol(self) -> &'static str {
        match self {
            DelayValue::S0 => "0",
            DelayValue::S1 => "1",
            DelayValue::R => "R",
            DelayValue::F => "F",
            DelayValue::H0 => "0h",
            DelayValue::H1 => "1h",
            DelayValue::Rc => "Rc",
            DelayValue::Fc => "Fc",
        }
    }
}

impl fmt::Display for DelayValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// N-ary AND over the algebra — the paper's Table 1 generalized to any
/// arity (the 2-input specialization reproduces the printed table exactly;
/// see the tests and [`crate::tables`]).
///
/// Derivation from the value semantics:
/// * frame values combine as Boolean AND per frame;
/// * a steady-0 output is hazard-free only if some input is a steady,
///   hazard-free 0 (otherwise all inputs may be 1 simultaneously at some
///   interior moment);
/// * a steady-1 output has a hazard iff any input has one;
/// * a *rising* output carries the fault effect if any input does (every
///   off-path input necessarily has final value 1);
/// * a *falling* output carries the fault effect only if every off-path
///   input is a steady, hazard-free 1 — the paper's strict robustness rule.
pub fn and_n(vals: &[DelayValue]) -> DelayValue {
    debug_assert!(!vals.is_empty());
    let init = vals.iter().all(|v| v.initial());
    let fin = vals.iter().all(|v| v.final_value());
    if init != fin {
        let carries = vals.iter().any(|v| v.carries_fault());
        let robust = if fin {
            // Rising output: off-path inputs all have final value 1 here by
            // construction, which is exactly the paper's condition.
            true
        } else {
            // Falling output: every non-carrying input must be a steady 1.
            vals.iter()
                .all(|v| v.carries_fault() || *v == DelayValue::S1)
        };
        match (fin, carries && robust) {
            (true, true) => DelayValue::Rc,
            (true, false) => DelayValue::R,
            (false, true) => DelayValue::Fc,
            (false, false) => DelayValue::F,
        }
    } else if fin {
        if vals.contains(&DelayValue::H1) {
            DelayValue::H1
        } else {
            DelayValue::S1
        }
    } else if vals.contains(&DelayValue::S0) {
        DelayValue::S0
    } else {
        DelayValue::H0
    }
}

/// N-ary OR, derived by De Morgan: `OR(a,…) = NOT(AND(NOT a,…))`.
pub fn or_n(vals: &[DelayValue]) -> DelayValue {
    let inverted: Vec<DelayValue> = vals.iter().map(|v| v.not()).collect();
    and_n(&inverted).not()
}

/// N-ary XOR. A transition propagates the fault effect through a parity
/// gate only if every off-path input is steady and hazard-free (any side
/// activity flips the output and destroys robustness).
pub fn xor_n(vals: &[DelayValue]) -> DelayValue {
    debug_assert!(!vals.is_empty());
    let init = vals.iter().fold(false, |acc, v| acc ^ v.initial());
    let fin = vals.iter().fold(false, |acc, v| acc ^ v.final_value());
    if init != fin {
        // Through a parity gate the fault effect survives only when it is
        // the *sole* transition: any other non-steady input (even a second
        // fault-carrying one) can flip the output and mask the late edge.
        let carriers = vals.iter().filter(|v| v.carries_fault()).count();
        let robust = carriers == 1
            && vals
                .iter()
                .all(|v| v.carries_fault() || v.is_steady_clean());
        match (fin, carriers > 0 && robust) {
            (true, true) => DelayValue::Rc,
            (true, false) => DelayValue::R,
            (false, true) => DelayValue::Fc,
            (false, false) => DelayValue::F,
        }
    } else {
        let clean = vals.iter().all(|v| v.is_steady_clean());
        match (fin, clean) {
            (false, true) => DelayValue::S0,
            (true, true) => DelayValue::S1,
            (false, false) => DelayValue::H0,
            (true, false) => DelayValue::H1,
        }
    }
}

/// Evaluates any combinational gate kind over the algebra.
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `vals` is empty.
pub fn eval_gate(kind: GateKind, vals: &[DelayValue]) -> DelayValue {
    match kind {
        GateKind::Buf => vals[0],
        GateKind::Not => vals[0].not(),
        GateKind::And => and_n(vals),
        GateKind::Nand => and_n(vals).not(),
        GateKind::Or => or_n(vals),
        GateKind::Nor => or_n(vals).not(),
        GateKind::Xor => xor_n(vals),
        GateKind::Xnor => xor_n(vals).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate called on non-combinational kind {kind:?}")
        }
    }
}

/// Two-input convenience wrapper around [`eval_gate`].
pub fn eval2(kind: GateKind, a: DelayValue, b: DelayValue) -> DelayValue {
    eval_gate(kind, &[a, b])
}

// ---------------------------------------------------------------------------
// Value sets
// ---------------------------------------------------------------------------

/// A set of still-possible [`DelayValue`]s, stored as a bitmask.
///
/// This is the state the paper's implication engine maintains per gate.
///
/// # Example
///
/// ```
/// use gdf_algebra::delay::{DelaySet, DelayValue};
///
/// let s = DelaySet::HAZARD_FREE; // what a PI or flip-flop output may take
/// assert!(s.contains(DelayValue::R));
/// assert!(!s.contains(DelayValue::H0));
/// assert_eq!(s.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelaySet(u8);

impl DelaySet {
    /// The empty set (a conflict).
    pub const EMPTY: DelaySet = DelaySet(0);
    /// All eight values.
    pub const ALL: DelaySet = DelaySet(0xFF);
    /// All values except the fault-carrying ones — the domain of every
    /// signal outside the fault's output cone.
    pub const CLEAN: DelaySet = DelaySet(0b0011_1111);
    /// `{0, 1, R, F}` — hazard-free, non-carrying. The domain of primary
    /// inputs and flip-flop outputs (both change at most once per frame
    /// pair).
    pub const HAZARD_FREE: DelaySet = DelaySet(0b0000_1111);
    /// `{0, 1}` — steady hazard-free values.
    pub const STEADY_CLEAN: DelaySet = DelaySet(0b0000_0011);
    /// `{Rc, Fc}` — the fault-carrying values.
    pub const CARRYING: DelaySet = DelaySet(0b1100_0000);
    /// `{R, F}` — clean transitions.
    pub const TRANSITIONS: DelaySet = DelaySet(0b0000_1100);

    /// The singleton set `{v}`.
    pub fn singleton(v: DelayValue) -> DelaySet {
        DelaySet(1 << v.index())
    }

    /// Builds a set from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = DelayValue>>(values: I) -> DelaySet {
        let mut s = DelaySet::EMPTY;
        for v in values {
            s.insert(v);
        }
        s
    }

    /// The raw bitmask.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask.
    pub fn from_bits(bits: u8) -> DelaySet {
        DelaySet(bits)
    }

    /// Whether `v` is still possible.
    pub fn contains(self, v: DelayValue) -> bool {
        self.0 & (1 << v.index()) != 0
    }

    /// Adds `v`.
    pub fn insert(&mut self, v: DelayValue) {
        self.0 |= 1 << v.index();
    }

    /// Removes `v`.
    pub fn remove(&mut self, v: DelayValue) {
        self.0 &= !(1 << v.index());
    }

    /// Set union.
    pub fn union(self, other: DelaySet) -> DelaySet {
        DelaySet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: DelaySet) -> DelaySet {
        DelaySet(self.0 & other.0)
    }

    /// Complement within the 8-value universe.
    pub fn complement(self) -> DelaySet {
        DelaySet(!self.0)
    }

    /// Whether the set is empty (an implication conflict).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of values in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `Some(v)` if the set is the singleton `{v}`.
    pub fn as_singleton(self) -> Option<DelayValue> {
        if self.0.count_ones() == 1 {
            Some(DelayValue::from_index(self.0.trailing_zeros() as u8))
        } else {
            None
        }
    }

    /// Whether any value in the set carries the fault effect.
    pub fn may_carry_fault(self) -> bool {
        !self.intersect(DelaySet::CARRYING).is_empty()
    }

    /// Whether *every* value in the (non-empty) set carries the fault
    /// effect — i.e. the fault effect is guaranteed here.
    pub fn must_carry_fault(self) -> bool {
        !self.is_empty() && self.intersect(DelaySet::CARRYING) == self
    }

    /// Iterates over the values in the set, in table order.
    pub fn iter(self) -> impl Iterator<Item = DelayValue> {
        DelayValue::ALL
            .into_iter()
            .filter(move |v| self.contains(*v))
    }

    /// Applies the inverter table to every value in the set.
    #[allow(clippy::should_implement_trait)] // method-call syntax without importing std::ops::Not
    pub fn not(self) -> DelaySet {
        DelaySet::from_values(self.iter().map(DelayValue::not))
    }
}

impl fmt::Display for DelaySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<DelayValue> for DelaySet {
    fn from_iter<I: IntoIterator<Item = DelayValue>>(iter: I) -> Self {
        DelaySet::from_values(iter)
    }
}

/// The three associative core operations the gate kinds reduce to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreOp {
    And,
    Or,
    Xor,
}

/// Maps a gate kind to `(core op, output inverted)`; `None` for BUF/NOT.
fn core_of(kind: GateKind) -> Option<(CoreOp, bool)> {
    match kind {
        GateKind::And => Some((CoreOp::And, false)),
        GateKind::Nand => Some((CoreOp::And, true)),
        GateKind::Or => Some((CoreOp::Or, false)),
        GateKind::Nor => Some((CoreOp::Or, true)),
        GateKind::Xor => Some((CoreOp::Xor, false)),
        GateKind::Xnor => Some((CoreOp::Xor, true)),
        _ => None,
    }
}

fn core2(op: CoreOp, a: DelayValue, b: DelayValue) -> DelayValue {
    match op {
        CoreOp::And => and_n(&[a, b]),
        CoreOp::Or => or_n(&[a, b]),
        CoreOp::Xor => xor_n(&[a, b]),
    }
}

fn set_core2(op: CoreOp, a: DelaySet, b: DelaySet) -> DelaySet {
    let mut out = DelaySet::EMPTY;
    for va in a.iter() {
        for vb in b.iter() {
            out.insert(core2(op, va, vb));
        }
    }
    out
}

/// Forward implication: the set of output values reachable from the given
/// input sets. Exact (not an over-approximation): the two-input table is
/// associative, so the pairwise fold enumerates precisely the n-ary results
/// (property-tested in this module).
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn eval_gate_sets(kind: GateKind, ins: &[DelaySet]) -> DelaySet {
    debug_assert!(!ins.is_empty());
    match kind {
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_sets called on non-combinational kind {kind:?}")
        }
        _ => {
            let (op, inv) = core_of(kind).expect("combinational kind");
            let folded = ins[1..]
                .iter()
                .fold(ins[0], |acc, &b| set_core2(op, acc, b));
            if inv {
                folded.not()
            } else {
                folded
            }
        }
    }
}

/// Backward implication: narrows every input set to the values that can
/// still produce an output inside `out_allowed`, and narrows `out_allowed`
/// itself to what the inputs can still produce.
///
/// Returns `true` if any set changed. An emptied set signals a conflict the
/// caller must detect via [`DelaySet::is_empty`].
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn narrow_inputs(kind: GateKind, out_allowed: &mut DelaySet, ins: &mut [DelaySet]) -> bool {
    debug_assert!(!ins.is_empty());
    let mut changed = false;
    match kind {
        GateKind::Buf => {
            let meet = out_allowed.intersect(ins[0]);
            changed |= meet != ins[0] || meet != *out_allowed;
            ins[0] = meet;
            *out_allowed = meet;
        }
        GateKind::Not => {
            let meet_in = ins[0].intersect(out_allowed.not());
            let meet_out = out_allowed.intersect(ins[0].not());
            changed |= meet_in != ins[0] || meet_out != *out_allowed;
            ins[0] = meet_in;
            *out_allowed = meet_out;
        }
        GateKind::Input | GateKind::Dff => {
            panic!("narrow_inputs called on non-combinational kind {kind:?}")
        }
        _ => {
            let (op, inv) = core_of(kind).expect("combinational kind");
            let target = if inv { out_allowed.not() } else { *out_allowed };
            let n = ins.len();
            // Prefix/suffix folds of the core op over the input sets.
            let mut prefix = vec![DelaySet::EMPTY; n + 1];
            let mut suffix = vec![DelaySet::EMPTY; n + 1];
            prefix[0] = DelaySet::EMPTY; // identity handled positionally
            for i in 0..n {
                prefix[i + 1] = if i == 0 {
                    ins[0]
                } else {
                    set_core2(op, prefix[i], ins[i])
                };
            }
            for i in (0..n).rev() {
                suffix[i] = if i == n - 1 {
                    ins[n - 1]
                } else {
                    set_core2(op, ins[i], suffix[i + 1])
                };
            }
            for i in 0..n {
                let mut keep = DelaySet::EMPTY;
                for v in ins[i].iter() {
                    let sv = DelaySet::singleton(v);
                    let combined = match (i == 0, i == n - 1) {
                        (true, true) => sv,
                        (true, false) => set_core2(op, sv, suffix[1]),
                        (false, true) => set_core2(op, prefix[n - 1], sv),
                        (false, false) => {
                            set_core2(op, set_core2(op, prefix[i], sv), suffix[i + 1])
                        }
                    };
                    if !combined.intersect(target).is_empty() {
                        keep.insert(v);
                    }
                }
                if keep != ins[i] {
                    ins[i] = keep;
                    changed = true;
                }
            }
            // Narrow the output to what is actually producible.
            let producible_core = suffix[0];
            let producible = if inv {
                producible_core.not()
            } else {
                producible_core
            };
            let meet = out_allowed.intersect(producible);
            if meet != *out_allowed {
                *out_allowed = meet;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use DelayValue::*;

    #[test]
    fn value_semantics() {
        assert!(!S0.initial() && !S0.final_value());
        assert!(R.is_transition() && !R.carries_fault());
        assert!(Rc.is_transition() && Rc.carries_fault());
        assert!(H1.has_hazard() && H1.initial() && H1.final_value());
        assert_eq!(DelayValue::from_frames(false, true), R);
        assert_eq!(F.with_fault_mark(), Some(Fc));
        assert_eq!(S0.with_fault_mark(), None);
        assert_eq!(Fc.without_fault_mark(), F);
    }

    #[test]
    fn inverter_is_paper_table_2() {
        // 0↔1, R↔F, 0h↔1h, Rc↔Fc — an involution.
        for v in DelayValue::ALL {
            assert_eq!(v.not().not(), v);
            assert_eq!(v.not().initial(), !v.initial());
            assert_eq!(v.not().final_value(), !v.final_value());
            assert_eq!(v.not().carries_fault(), v.carries_fault());
        }
        assert_eq!(S0.not(), S1);
        assert_eq!(R.not(), F);
        assert_eq!(H0.not(), H1);
        assert_eq!(Rc.not(), Fc);
    }

    /// The paper's Table 1 — the full 8×8 AND table. Row = first operand,
    /// column order `0, 1, R, F, 0h, 1h, Rc, Fc`. The `Rc` and `Fc` rows
    /// are printed verbatim in the paper; the clean rows follow from the
    /// value semantics stated in §3.
    const PAPER_TABLE_1: [[DelayValue; 8]; 8] = [
        // a = 0
        [S0, S0, S0, S0, S0, S0, S0, S0],
        // a = 1
        [S0, S1, R, F, H0, H1, Rc, Fc],
        // a = R
        [S0, R, R, H0, H0, R, Rc, H0],
        // a = F
        [S0, F, H0, F, H0, F, H0, F],
        // a = 0h
        [S0, H0, H0, H0, H0, H0, H0, H0],
        // a = 1h
        [S0, H1, R, F, H0, H1, Rc, F],
        // a = Rc  (printed in the paper: 0 Rc Rc 0h 0h Rc Rc 0h)
        [S0, Rc, Rc, H0, H0, Rc, Rc, H0],
        // a = Fc  (printed in the paper: 0 Fc 0h F 0h F 0h Fc)
        [S0, Fc, H0, F, H0, F, H0, Fc],
    ];

    #[test]
    fn and_matches_paper_table_1() {
        for (i, &a) in DelayValue::ALL.iter().enumerate() {
            for (j, &b) in DelayValue::ALL.iter().enumerate() {
                assert_eq!(
                    eval2(GateKind::And, a, b),
                    PAPER_TABLE_1[i][j],
                    "AND({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn and_is_commutative_and_associative() {
        for a in DelayValue::ALL {
            for b in DelayValue::ALL {
                assert_eq!(eval2(GateKind::And, a, b), eval2(GateKind::And, b, a));
                for c in DelayValue::ALL {
                    let ab_c = eval2(GateKind::And, eval2(GateKind::And, a, b), c);
                    let a_bc = eval2(GateKind::And, a, eval2(GateKind::And, b, c));
                    assert_eq!(ab_c, a_bc, "({a}∧{b})∧{c}");
                    assert_eq!(ab_c, and_n(&[a, b, c]), "fold vs n-ary {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn or_xor_associativity_and_nary_agreement() {
        for a in DelayValue::ALL {
            for b in DelayValue::ALL {
                for c in DelayValue::ALL {
                    for (kind, f) in [
                        (GateKind::Or, or_n as fn(&[DelayValue]) -> DelayValue),
                        (GateKind::Xor, xor_n as fn(&[DelayValue]) -> DelayValue),
                    ] {
                        let fold = eval2(kind, eval2(kind, a, b), c);
                        assert_eq!(fold, f(&[a, b, c]), "{kind} {a},{b},{c}");
                    }
                }
            }
        }
    }

    #[test]
    fn de_morgan_duality() {
        for a in DelayValue::ALL {
            for b in DelayValue::ALL {
                assert_eq!(
                    eval2(GateKind::Or, a, b),
                    eval2(GateKind::And, a.not(), b.not()).not()
                );
                assert_eq!(
                    eval2(GateKind::Nand, a, b),
                    eval2(GateKind::And, a, b).not()
                );
                assert_eq!(eval2(GateKind::Nor, a, b), eval2(GateKind::Or, a, b).not());
                assert_eq!(
                    eval2(GateKind::Xnor, a, b),
                    eval2(GateKind::Xor, a, b).not()
                );
            }
        }
    }

    #[test]
    fn fault_effect_never_created_from_clean_inputs() {
        // "an Rc or Fc value never emerges at an output of a gate if there
        // wasn't already one or more of these values at the input."
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for a in DelayValue::ALL {
                for b in DelayValue::ALL {
                    if !a.carries_fault() && !b.carries_fault() {
                        assert!(
                            !eval2(kind, a, b).carries_fault(),
                            "{kind}({a},{b}) fabricated a fault effect"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn frame_values_always_respected() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            for a in DelayValue::ALL {
                for b in DelayValue::ALL {
                    let out = eval2(kind, a, b);
                    let init = kind.eval_bool(&[a.initial(), b.initial()]);
                    let fin = kind.eval_bool(&[a.final_value(), b.final_value()]);
                    assert_eq!(out.initial(), init, "{kind}({a},{b}) frame 1");
                    assert_eq!(out.final_value(), fin, "{kind}({a},{b}) frame 2");
                }
            }
        }
    }

    #[test]
    fn robustness_rules_quoted_in_the_paper() {
        // "Rc propagates from the on path input to the output of the gate
        //  with any value on the off path input that is 1 in its final
        //  value"
        for side in [S1, H1, R, Rc] {
            assert_eq!(eval2(GateKind::And, Rc, side), Rc, "side {side}");
        }
        // "but Fc propagates only with a steady one or Fc on the off path
        //  input."
        assert_eq!(eval2(GateKind::And, Fc, S1), Fc);
        assert_eq!(eval2(GateKind::And, Fc, Fc), Fc);
        for side in [H1, R, F] {
            assert_ne!(eval2(GateKind::And, Fc, side), Fc, "side {side}");
        }
    }

    #[test]
    fn set_basics() {
        let mut s = DelaySet::EMPTY;
        assert!(s.is_empty());
        s.insert(R);
        s.insert(Fc);
        assert_eq!(s.len(), 2);
        assert!(s.contains(R) && s.contains(Fc));
        assert!(s.may_carry_fault());
        assert!(!s.must_carry_fault());
        s.remove(R);
        assert_eq!(s.as_singleton(), Some(Fc));
        assert!(s.must_carry_fault());
        assert_eq!(DelaySet::ALL.len(), 8);
        assert_eq!(DelaySet::CLEAN.len(), 6);
        assert_eq!(DelaySet::HAZARD_FREE.len(), 4);
        assert_eq!(format!("{}", DelaySet::STEADY_CLEAN), "{0,1}");
    }

    #[test]
    fn set_eval_enumerates_exactly() {
        // Exactness of the set-level evaluation for 2 inputs: the result is
        // precisely the image of the Cartesian product.
        let a = DelaySet::from_values([S1, R]);
        let b = DelaySet::from_values([F, Fc]);
        let got = eval_gate_sets(GateKind::And, &[a, b]);
        let mut expect = DelaySet::EMPTY;
        for va in a.iter() {
            for vb in b.iter() {
                expect.insert(eval2(GateKind::And, va, vb));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn set_eval_nary_exact_via_associativity() {
        // For three inputs, the fold equals direct triple enumeration.
        let sets = [
            DelaySet::from_values([S0, R, Fc]),
            DelaySet::from_values([S1, H1]),
            DelaySet::from_values([F, Rc, H0]),
        ];
        for kind in [GateKind::And, GateKind::Nor, GateKind::Xor] {
            let got = eval_gate_sets(kind, &sets);
            let mut expect = DelaySet::EMPTY;
            for a in sets[0].iter() {
                for b in sets[1].iter() {
                    for c in sets[2].iter() {
                        expect.insert(eval_gate(kind, &[a, b, c]));
                    }
                }
            }
            assert_eq!(got, expect, "{kind}");
        }
    }

    #[test]
    fn narrow_inputs_basic_and() {
        // Output must be 1 (steady) => both AND inputs must be steady-1-ish.
        let mut out = DelaySet::singleton(S1);
        let mut ins = [DelaySet::ALL, DelaySet::ALL];
        narrow_inputs(GateKind::And, &mut out, &mut ins);
        for (i, input) in ins.iter().enumerate() {
            assert!(input.contains(S1));
            assert!(!input.contains(S0), "input {i}: {input}");
            assert!(!input.contains(R));
            assert!(!input.contains(F));
            assert!(!input.contains(H1), "H1∧H1=H1 ≠ S1 so H1 must go");
        }
    }

    #[test]
    fn narrow_inputs_propagation_requirement() {
        // To get Fc out of an AND whose first input is {Fc}, the second
        // input must become {S1, Fc}.
        let mut out = DelaySet::singleton(Fc);
        let mut ins = [DelaySet::singleton(Fc), DelaySet::ALL];
        narrow_inputs(GateKind::And, &mut out, &mut ins);
        assert_eq!(ins[1], DelaySet::from_values([S1, Fc]));
    }

    #[test]
    fn narrow_inputs_detects_conflicts() {
        // Output S1 from an AND with one input pinned to S0 → empty sets.
        let mut out = DelaySet::singleton(S1);
        let mut ins = [DelaySet::singleton(S0), DelaySet::ALL];
        narrow_inputs(GateKind::And, &mut out, &mut ins);
        assert!(out.is_empty());
    }

    #[test]
    fn narrow_inputs_not_gate() {
        let mut out = DelaySet::singleton(Rc);
        let mut ins = [DelaySet::ALL];
        narrow_inputs(GateKind::Not, &mut out, &mut ins);
        assert_eq!(ins[0], DelaySet::singleton(Fc));
    }

    #[test]
    fn narrow_output_to_producible() {
        // Inputs {0} and anything → AND output can only be 0.
        let mut out = DelaySet::ALL;
        let mut ins = [DelaySet::singleton(S0), DelaySet::ALL];
        narrow_inputs(GateKind::And, &mut out, &mut ins);
        assert_eq!(out, DelaySet::singleton(S0));
    }

    #[test]
    fn narrow_never_removes_feasible_values() {
        // Soundness: brute-force all 2-input AND cases with random-ish sets.
        let sample_sets = [
            DelaySet::ALL,
            DelaySet::CLEAN,
            DelaySet::HAZARD_FREE,
            DelaySet::from_values([R, Fc]),
            DelaySet::from_values([S0, H1, Rc]),
        ];
        for &a0 in &sample_sets {
            for &b0 in &sample_sets {
                for &o0 in &sample_sets {
                    let mut out = o0;
                    let mut ins = [a0, b0];
                    narrow_inputs(GateKind::Nand, &mut out, &mut ins);
                    for va in a0.iter() {
                        for vb in b0.iter() {
                            let r = eval2(GateKind::Nand, va, vb);
                            if o0.contains(r) {
                                assert!(ins[0].contains(va), "lost {va}");
                                assert!(ins[1].contains(vb), "lost {vb}");
                                assert!(out.contains(r), "lost out {r}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_symbols() {
        assert_eq!(Rc.to_string(), "Rc");
        assert_eq!(H0.to_string(), "0h");
    }
}
