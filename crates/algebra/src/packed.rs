//! Bit-parallel (64-lane) representation of the 8-valued delay algebra.
//!
//! A [`PackedWave`] holds **64 independent [`DelayValue`]s** — one per bit
//! lane — encoded in four u64 bit-planes that mirror the value semantics of
//! [`crate::delay`]:
//!
//! * `init` — the frame-1 logic value ([`DelayValue::initial`]);
//! * `fin` — the frame-2 logic value ([`DelayValue::final_value`]);
//! * `haz` — the hazard mark of steady values ([`DelayValue::has_hazard`]);
//! * `car` — the fault-effect mark of transitions
//!   ([`DelayValue::carries_fault`]).
//!
//! Two invariants keep the encoding canonical: `haz` may only be set on
//! lanes where `init == fin` (hazards exist on steady signals only) and
//! `car` only on lanes where `init != fin` (only transitions can carry the
//! fault effect). Every constructor and gate operation maintains them.
//!
//! The word-level gate operations are derived from the same semantics the
//! scalar tables encode (frame values combine Booleanly per frame; the
//! paper's robustness rules gate the `car` plane), and are proven identical
//! to [`crate::delay::eval_gate`] by exhaustive 8×8(×8) tests below. All
//! n-ary gates fold the two-input operation, which is exact because the
//! two-input tables are associative (property-tested in `delay`).
//!
//! This is the substrate of the word-parallel fault simulator: one packed
//! sweep over the netlist classifies up to 64 candidate faults at once.

use crate::delay::DelayValue;
use gdf_netlist::GateKind;

/// 64 delay-algebra values, one per bit lane, as four bit-planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedWave {
    /// Frame-1 value per lane.
    pub init: u64,
    /// Frame-2 value per lane.
    pub fin: u64,
    /// Hazard mark per lane (steady lanes only).
    pub haz: u64,
    /// Fault-effect mark per lane (transition lanes only).
    pub car: u64,
}

impl PackedWave {
    /// All 64 lanes holding the same value.
    pub fn splat(v: DelayValue) -> PackedWave {
        let all = |b: bool| if b { !0u64 } else { 0 };
        PackedWave {
            init: all(v.initial()),
            fin: all(v.final_value()),
            haz: all(v.has_hazard()),
            car: all(v.carries_fault()),
        }
    }

    /// Packs up to 64 values; lane `k` takes `lanes[k]`, the rest
    /// [`DelayValue::S0`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() > 64`.
    pub fn from_lanes(lanes: &[DelayValue]) -> PackedWave {
        assert!(lanes.len() <= 64, "at most 64 lanes per word");
        let mut w = PackedWave::default();
        for (k, &v) in lanes.iter().enumerate() {
            w.set_lane(k, v);
        }
        w
    }

    /// The value in lane `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    pub fn lane(self, k: usize) -> DelayValue {
        assert!(k < 64);
        let bit = |plane: u64| plane >> k & 1 == 1;
        let (i, f) = (bit(self.init), bit(self.fin));
        if i != f {
            match (f, bit(self.car)) {
                (true, true) => DelayValue::Rc,
                (true, false) => DelayValue::R,
                (false, true) => DelayValue::Fc,
                (false, false) => DelayValue::F,
            }
        } else {
            match (f, bit(self.haz)) {
                (true, true) => DelayValue::H1,
                (true, false) => DelayValue::S1,
                (false, true) => DelayValue::H0,
                (false, false) => DelayValue::S0,
            }
        }
    }

    /// Overwrites lane `k` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    pub fn set_lane(&mut self, k: usize, v: DelayValue) {
        assert!(k < 64);
        let mask = 1u64 << k;
        let put = |plane: &mut u64, b: bool| {
            if b {
                *plane |= mask;
            } else {
                *plane &= !mask;
            }
        };
        put(&mut self.init, v.initial());
        put(&mut self.fin, v.final_value());
        put(&mut self.haz, v.has_hazard());
        put(&mut self.car, v.carries_fault());
    }

    /// Replaces the lanes selected by `mask` with the corresponding lanes
    /// of `other` (a per-lane select).
    pub fn select(self, mask: u64, other: PackedWave) -> PackedWave {
        let blend = |a: u64, b: u64| (a & !mask) | (b & mask);
        PackedWave {
            init: blend(self.init, other.init),
            fin: blend(self.fin, other.fin),
            haz: blend(self.haz, other.haz),
            car: blend(self.car, other.car),
        }
    }

    /// Lanes whose value is a transition (`R`, `F`, `Rc`, `Fc`).
    pub fn transitions(self) -> u64 {
        self.init ^ self.fin
    }

    /// Lanes whose value is steady (`0`, `1`, `0h`, `1h`).
    pub fn steady(self) -> u64 {
        !self.transitions()
    }

    /// Lanes carrying the fault effect (`Rc`, `Fc`).
    pub fn carries(self) -> u64 {
        self.car
    }

    /// Lanes with a hazard mark (`0h`, `1h`).
    pub fn hazards(self) -> u64 {
        self.haz
    }

    /// Lanes that are steady and hazard-free (`0`, `1`).
    pub fn steady_clean(self) -> u64 {
        self.steady() & !self.haz
    }

    /// Lanes holding a steady, hazard-free 1.
    pub fn steady_one(self) -> u64 {
        self.steady_clean() & self.fin
    }

    /// Lanes holding a steady, hazard-free 0.
    pub fn steady_zero(self) -> u64 {
        self.steady_clean() & !self.fin
    }

    /// Lanes rising in the good machine (`R`, `Rc`).
    pub fn rising(self) -> u64 {
        self.transitions() & self.fin
    }

    /// Lanes falling in the good machine (`F`, `Fc`).
    pub fn falling(self) -> u64 {
        self.transitions() & !self.fin
    }

    /// Per-lane inverter — the paper's Table 2 on all 64 lanes.
    #[allow(clippy::should_implement_trait)] // mirror DelayValue::not's name
    pub fn not(self) -> PackedWave {
        PackedWave {
            init: !self.init,
            fin: !self.fin,
            haz: self.haz,
            car: self.car,
        }
    }

    /// Per-lane two-input AND — the paper's Table 1 on all 64 lanes.
    pub fn and2(self, other: PackedWave) -> PackedWave {
        let init = self.init & other.init;
        let fin = self.fin & other.fin;
        let t = init ^ fin;
        // Rising output: the fault effect propagates past any off-path
        // input with final value 1 (all inputs have final value 1 here by
        // construction). Falling output: every non-carrying input must be
        // a steady, hazard-free 1 — the paper's strict robustness rule.
        let robust_fall = (self.car | self.steady_one()) & (other.car | other.steady_one());
        let car = t & (self.car | other.car) & (fin | robust_fall);
        // Steady-1 output: hazard iff any (necessarily steady-1) input has
        // one. Steady-0 output: hazard-free only if some input is a
        // steady, hazard-free 0.
        let haz = !t
            & (fin & (self.haz | other.haz) | !fin & !(self.steady_zero() | other.steady_zero()));
        PackedWave {
            init,
            fin,
            haz,
            car,
        }
    }

    /// Per-lane two-input OR, by De Morgan over [`PackedWave::and2`].
    pub fn or2(self, other: PackedWave) -> PackedWave {
        self.not().and2(other.not()).not()
    }

    /// Per-lane two-input XOR. A transition propagates the fault effect
    /// through a parity gate only as the *sole* non-steady input.
    pub fn xor2(self, other: PackedWave) -> PackedWave {
        let init = self.init ^ other.init;
        let fin = self.fin ^ other.fin;
        let t = init ^ fin;
        let car = t & (self.car & other.steady_clean() | other.car & self.steady_clean());
        let haz = !t & !(self.steady_clean() & other.steady_clean());
        PackedWave {
            init,
            fin,
            haz,
            car,
        }
    }
}

/// Evaluates any combinational gate kind over packed operands, lane-wise
/// identical to [`crate::delay::eval_gate`].
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn eval_gate_packed(kind: GateKind, ins: &[PackedWave]) -> PackedWave {
    debug_assert!(!ins.is_empty());
    match kind {
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].not(),
        GateKind::And => ins[1..].iter().fold(ins[0], |a, &b| a.and2(b)),
        GateKind::Nand => ins[1..].iter().fold(ins[0], |a, &b| a.and2(b)).not(),
        GateKind::Or => ins[1..].iter().fold(ins[0], |a, &b| a.or2(b)),
        GateKind::Nor => ins[1..].iter().fold(ins[0], |a, &b| a.or2(b)).not(),
        GateKind::Xor => ins[1..].iter().fold(ins[0], |a, &b| a.xor2(b)),
        GateKind::Xnor => ins[1..].iter().fold(ins[0], |a, &b| a.xor2(b)).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_packed called on non-combinational kind {kind:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::{eval2, eval_gate};

    #[test]
    fn splat_and_lane_round_trip() {
        for v in DelayValue::ALL {
            let w = PackedWave::splat(v);
            for k in [0, 1, 31, 63] {
                assert_eq!(w.lane(k), v, "{v} lane {k}");
            }
        }
    }

    #[test]
    fn from_lanes_round_trip() {
        let lanes: Vec<DelayValue> = (0..64).map(|k| DelayValue::from_index(k % 8)).collect();
        let w = PackedWave::from_lanes(&lanes);
        for (k, &v) in lanes.iter().enumerate() {
            assert_eq!(w.lane(k), v, "lane {k}");
        }
    }

    #[test]
    fn set_lane_preserves_other_lanes() {
        let mut w = PackedWave::splat(DelayValue::H1);
        w.set_lane(5, DelayValue::Fc);
        assert_eq!(w.lane(5), DelayValue::Fc);
        assert_eq!(w.lane(4), DelayValue::H1);
        assert_eq!(w.lane(6), DelayValue::H1);
    }

    #[test]
    fn select_blends_per_lane() {
        let a = PackedWave::splat(DelayValue::S0);
        let b = PackedWave::splat(DelayValue::Rc);
        let out = a.select(0b1010, b);
        assert_eq!(out.lane(0), DelayValue::S0);
        assert_eq!(out.lane(1), DelayValue::Rc);
        assert_eq!(out.lane(2), DelayValue::S0);
        assert_eq!(out.lane(3), DelayValue::Rc);
    }

    #[test]
    fn predicates_match_scalar_semantics() {
        for v in DelayValue::ALL {
            let w = PackedWave::splat(v);
            let all = |b: bool| if b { !0u64 } else { 0 };
            assert_eq!(w.transitions(), all(v.is_transition()), "{v}");
            assert_eq!(w.carries(), all(v.carries_fault()), "{v}");
            assert_eq!(w.hazards(), all(v.has_hazard()), "{v}");
            assert_eq!(w.steady_clean(), all(v.is_steady_clean()), "{v}");
            assert_eq!(w.steady_one(), all(v == DelayValue::S1), "{v}");
            assert_eq!(w.steady_zero(), all(v == DelayValue::S0), "{v}");
            assert_eq!(
                w.rising(),
                all(matches!(v, DelayValue::R | DelayValue::Rc)),
                "{v}"
            );
            assert_eq!(
                w.falling(),
                all(matches!(v, DelayValue::F | DelayValue::Fc)),
                "{v}"
            );
        }
    }

    /// Encoding invariants: haz only on steady lanes, car only on
    /// transitions — for every op output over the full 8×8 input space.
    fn assert_canonical(w: PackedWave) {
        assert_eq!(w.haz & w.transitions(), 0, "hazard on a transition lane");
        assert_eq!(w.car & w.steady(), 0, "carry on a steady lane");
    }

    #[test]
    fn two_input_ops_match_scalar_tables_exhaustively() {
        // Pack one (a, b) pair per lane: all 64 combinations in one word.
        let a = PackedWave::from_lanes(
            &(0..64u8)
                .map(|k| DelayValue::from_index(k / 8))
                .collect::<Vec<_>>(),
        );
        let b = PackedWave::from_lanes(
            &(0..64u8)
                .map(|k| DelayValue::from_index(k % 8))
                .collect::<Vec<_>>(),
        );
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let packed = eval_gate_packed(kind, &[a, b]);
            assert_canonical(packed);
            for k in 0..64 {
                let (va, vb) = (a.lane(k), b.lane(k));
                assert_eq!(packed.lane(k), eval2(kind, va, vb), "{kind}({va}, {vb})");
            }
        }
        assert_canonical(a.not());
        for k in 0..64 {
            assert_eq!(a.not().lane(k), a.lane(k).not());
        }
    }

    #[test]
    fn three_input_folds_match_scalar_nary() {
        // 8^3 = 512 triples, two words of 256 lanes each... exhaustive by
        // looping the first operand scalar and packing the (b, c) pairs.
        for va in DelayValue::ALL {
            let a = PackedWave::splat(va);
            let b = PackedWave::from_lanes(
                &(0..64u8)
                    .map(|k| DelayValue::from_index(k / 8))
                    .collect::<Vec<_>>(),
            );
            let c = PackedWave::from_lanes(
                &(0..64u8)
                    .map(|k| DelayValue::from_index(k % 8))
                    .collect::<Vec<_>>(),
            );
            for kind in [
                GateKind::And,
                GateKind::Nand,
                GateKind::Or,
                GateKind::Nor,
                GateKind::Xor,
                GateKind::Xnor,
            ] {
                let packed = eval_gate_packed(kind, &[a, b, c]);
                assert_canonical(packed);
                for k in 0..64 {
                    let expect = eval_gate(kind, &[va, b.lane(k), c.lane(k)]);
                    assert_eq!(
                        packed.lane(k),
                        expect,
                        "{kind}({va}, {}, {})",
                        b.lane(k),
                        c.lane(k)
                    );
                }
            }
        }
    }

    #[test]
    fn buf_passes_through() {
        let a = PackedWave::splat(DelayValue::Rc);
        assert_eq!(eval_gate_packed(GateKind::Buf, &[a]), a);
    }
}
