//! Plain 3-valued (Kleene) logic `{0, 1, X}`.
//!
//! Used by the good-machine simulator (FAUSIM phase 1), by the
//! synchronizing-sequence search (an unknown power-up state is all-X), and
//! as the interface type for pattern vectors where unassigned positions are
//! don't-cares.

use gdf_netlist::GateKind;
use std::fmt;

/// A 3-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Logic3 {
    /// All three values.
    pub const ALL: [Logic3; 3] = [Logic3::Zero, Logic3::One, Logic3::X];

    /// Converts from a Boolean.
    pub fn from_bool(b: bool) -> Logic3 {
        if b {
            Logic3::One
        } else {
            Logic3::Zero
        }
    }

    /// `Some(bool)` if the value is known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic3::Zero => Some(false),
            Logic3::One => Some(true),
            Logic3::X => None,
        }
    }

    /// Whether the value is known (not `X`).
    pub fn is_known(self) -> bool {
        self != Logic3::X
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // method-call syntax without importing std::ops::Not
    pub fn not(self) -> Logic3 {
        match self {
            Logic3::Zero => Logic3::One,
            Logic3::One => Logic3::Zero,
            Logic3::X => Logic3::X,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::Zero, _) | (_, Logic3::Zero) => Logic3::Zero,
            (Logic3::One, Logic3::One) => Logic3::One,
            _ => Logic3::X,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::One, _) | (_, Logic3::One) => Logic3::One,
            (Logic3::Zero, Logic3::Zero) => Logic3::Zero,
            _ => Logic3::X,
        }
    }

    /// Kleene exclusive-or.
    pub fn xor(self, other: Logic3) -> Logic3 {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic3::from_bool(a ^ b),
            _ => Logic3::X,
        }
    }
}

impl fmt::Display for Logic3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic3::Zero => f.write_str("0"),
            Logic3::One => f.write_str("1"),
            Logic3::X => f.write_str("X"),
        }
    }
}

impl From<bool> for Logic3 {
    fn from(b: bool) -> Self {
        Logic3::from_bool(b)
    }
}

/// Evaluates a combinational gate over 3-valued inputs.
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `vals` is empty.
pub fn eval_gate3(kind: GateKind, vals: &[Logic3]) -> Logic3 {
    debug_assert!(!vals.is_empty());
    match kind {
        GateKind::Buf => vals[0],
        GateKind::Not => vals[0].not(),
        GateKind::And => vals.iter().fold(Logic3::One, |a, &b| a.and(b)),
        GateKind::Nand => vals.iter().fold(Logic3::One, |a, &b| a.and(b)).not(),
        GateKind::Or => vals.iter().fold(Logic3::Zero, |a, &b| a.or(b)),
        GateKind::Nor => vals.iter().fold(Logic3::Zero, |a, &b| a.or(b)).not(),
        GateKind::Xor => vals.iter().fold(Logic3::Zero, |a, &b| a.xor(b)),
        GateKind::Xnor => vals.iter().fold(Logic3::Zero, |a, &b| a.xor(b)).not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate3 called on non-combinational kind {kind:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic3::{One, Zero, X};

    #[test]
    fn kleene_tables() {
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(One.xor(Zero), One);
    }

    #[test]
    fn gate_eval_with_controlling_x() {
        assert_eq!(eval_gate3(GateKind::And, &[Zero, X, X]), Zero);
        assert_eq!(eval_gate3(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval_gate3(GateKind::Or, &[One, X]), One);
        assert_eq!(eval_gate3(GateKind::Nor, &[X, X]), X);
        assert_eq!(eval_gate3(GateKind::Xor, &[One, One, One]), One);
        assert_eq!(eval_gate3(GateKind::Xnor, &[One, X]), X);
    }

    #[test]
    fn agrees_with_bool_on_known_values() {
        for kind in GateKind::COMBINATIONAL {
            let arity = if matches!(kind, GateKind::Buf | GateKind::Not) {
                1
            } else {
                3
            };
            for pat in 0..(1u32 << arity) {
                let bools: Vec<bool> = (0..arity).map(|i| pat & (1 << i) != 0).collect();
                let vals: Vec<Logic3> = bools.iter().map(|&b| Logic3::from_bool(b)).collect();
                assert_eq!(
                    eval_gate3(kind, &vals).to_bool(),
                    Some(kind.eval_bool(&bools)),
                    "{kind:?} {bools:?}"
                );
            }
        }
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Logic3::from(true), One);
        assert_eq!(X.to_bool(), None);
        assert_eq!(format!("{Zero}{One}{X}"), "01X");
        assert_eq!(Logic3::default(), X);
    }
}
