//! The 5-valued static D-algebra `{0, 1, D, D̄}` (+ `X` as the full set)
//! used by SEMILET.
//!
//! A [`StaticValue`] is a pair (good-machine bit, faulty-machine bit):
//! `D` = good 1 / faulty 0, `D̄` = good 0 / faulty 1. Gate evaluation is
//! component-wise Boolean evaluation; the classical D-calculus tables fall
//! out automatically. As in [`crate::delay`], the ATPG works with *sets*
//! of still-possible values ([`StaticSet`]), and `X` is simply the full
//! set.

use gdf_netlist::GateKind;
use std::fmt;

/// One value of the static D-algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum StaticValue {
    /// 0 in both machines.
    S0 = 0,
    /// 1 in both machines.
    S1 = 1,
    /// Good 1, faulty 0.
    D = 2,
    /// Good 0, faulty 1.
    Db = 3,
}

impl StaticValue {
    /// All four values in table order `0, 1, D, D̄`.
    pub const ALL: [StaticValue; 4] = [
        StaticValue::S0,
        StaticValue::S1,
        StaticValue::D,
        StaticValue::Db,
    ];

    /// Constructs from the `repr` index (0..4).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: u8) -> StaticValue {
        Self::ALL[i as usize]
    }

    /// Index of this value (its `repr`).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds the value from its (good, faulty) bits.
    pub fn from_pair(good: bool, faulty: bool) -> StaticValue {
        match (good, faulty) {
            (false, false) => StaticValue::S0,
            (true, true) => StaticValue::S1,
            (true, false) => StaticValue::D,
            (false, true) => StaticValue::Db,
        }
    }

    /// The good-machine bit.
    pub fn good(self) -> bool {
        matches!(self, StaticValue::S1 | StaticValue::D)
    }

    /// The faulty-machine bit.
    pub fn faulty(self) -> bool {
        matches!(self, StaticValue::S1 | StaticValue::Db)
    }

    /// Whether the machines disagree (`D` or `D̄`).
    pub fn is_fault_effect(self) -> bool {
        matches!(self, StaticValue::D | StaticValue::Db)
    }

    /// Negation in both machines.
    #[allow(clippy::should_implement_trait)] // method-call syntax without importing std::ops::Not
    pub fn not(self) -> StaticValue {
        StaticValue::from_pair(!self.good(), !self.faulty())
    }

    /// The classical notation for the value.
    pub fn symbol(self) -> &'static str {
        match self {
            StaticValue::S0 => "0",
            StaticValue::S1 => "1",
            StaticValue::D => "D",
            StaticValue::Db => "D'",
        }
    }
}

impl fmt::Display for StaticValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Evaluates any combinational gate over the D-algebra (component-wise on
/// the good and faulty machines).
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `vals` is empty.
pub fn eval_gate(kind: GateKind, vals: &[StaticValue]) -> StaticValue {
    debug_assert!(!vals.is_empty());
    let good: Vec<bool> = vals.iter().map(|v| v.good()).collect();
    let faulty: Vec<bool> = vals.iter().map(|v| v.faulty()).collect();
    StaticValue::from_pair(kind.eval_bool(&good), kind.eval_bool(&faulty))
}

/// Two-input convenience wrapper around [`eval_gate`].
pub fn eval2(kind: GateKind, a: StaticValue, b: StaticValue) -> StaticValue {
    eval_gate(kind, &[a, b])
}

/// A set of still-possible [`StaticValue`]s; `X` is [`StaticSet::ALL`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticSet(u8);

impl StaticSet {
    /// The empty set (conflict).
    pub const EMPTY: StaticSet = StaticSet(0);
    /// All four values — the unknown `X`.
    pub const ALL: StaticSet = StaticSet(0b1111);
    /// `{0, 1}` — no fault effect (signals outside the faulty cone, or any
    /// signal in a fault-free time frame).
    pub const GOOD: StaticSet = StaticSet(0b0011);
    /// `{D, D̄}` — a guaranteed fault effect.
    pub const FAULT_EFFECT: StaticSet = StaticSet(0b1100);

    /// The singleton set `{v}`.
    pub fn singleton(v: StaticValue) -> StaticSet {
        StaticSet(1 << v.index())
    }

    /// Builds a set from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = StaticValue>>(values: I) -> StaticSet {
        let mut s = StaticSet::EMPTY;
        for v in values {
            s.insert(v);
        }
        s
    }

    /// The raw bitmask.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask (low 4 bits).
    pub fn from_bits(bits: u8) -> StaticSet {
        StaticSet(bits & 0b1111)
    }

    /// Whether `v` is still possible.
    pub fn contains(self, v: StaticValue) -> bool {
        self.0 & (1 << v.index()) != 0
    }

    /// Adds `v`.
    pub fn insert(&mut self, v: StaticValue) {
        self.0 |= 1 << v.index();
    }

    /// Removes `v`.
    pub fn remove(&mut self, v: StaticValue) {
        self.0 &= !(1 << v.index());
    }

    /// Set union.
    pub fn union(self, other: StaticSet) -> StaticSet {
        StaticSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: StaticSet) -> StaticSet {
        StaticSet(self.0 & other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of values in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `Some(v)` if the set is the singleton `{v}`.
    pub fn as_singleton(self) -> Option<StaticValue> {
        if self.0.count_ones() == 1 {
            Some(StaticValue::from_index(self.0.trailing_zeros() as u8))
        } else {
            None
        }
    }

    /// Whether a fault effect is still possible here.
    pub fn may_be_fault_effect(self) -> bool {
        !self.intersect(StaticSet::FAULT_EFFECT).is_empty()
    }

    /// Whether every remaining value is a fault effect.
    pub fn must_be_fault_effect(self) -> bool {
        !self.is_empty() && self.intersect(StaticSet::FAULT_EFFECT) == self
    }

    /// Iterates over the values in the set.
    pub fn iter(self) -> impl Iterator<Item = StaticValue> {
        StaticValue::ALL
            .into_iter()
            .filter(move |v| self.contains(*v))
    }

    /// Applies negation to every value in the set.
    #[allow(clippy::should_implement_trait)] // method-call syntax without importing std::ops::Not
    pub fn not(self) -> StaticSet {
        StaticSet::from_values(self.iter().map(StaticValue::not))
    }

    /// Restriction to the good-machine bit `b` (e.g. for slow-clock frames
    /// where the faulty machine equals the good machine the set is further
    /// intersected with [`StaticSet::GOOD`] by the caller).
    pub fn with_good(self, b: bool) -> StaticSet {
        StaticSet::from_values(self.iter().filter(|v| v.good() == b))
    }
}

impl fmt::Display for StaticSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<StaticValue> for StaticSet {
    fn from_iter<I: IntoIterator<Item = StaticValue>>(iter: I) -> Self {
        StaticSet::from_values(iter)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreOp {
    And,
    Or,
    Xor,
}

fn core_of(kind: GateKind) -> Option<(CoreOp, bool)> {
    match kind {
        GateKind::And => Some((CoreOp::And, false)),
        GateKind::Nand => Some((CoreOp::And, true)),
        GateKind::Or => Some((CoreOp::Or, false)),
        GateKind::Nor => Some((CoreOp::Or, true)),
        GateKind::Xor => Some((CoreOp::Xor, false)),
        GateKind::Xnor => Some((CoreOp::Xor, true)),
        _ => None,
    }
}

fn core2(op: CoreOp, a: StaticValue, b: StaticValue) -> StaticValue {
    let kind = match op {
        CoreOp::And => GateKind::And,
        CoreOp::Or => GateKind::Or,
        CoreOp::Xor => GateKind::Xor,
    };
    eval2(kind, a, b)
}

fn set_core2(op: CoreOp, a: StaticSet, b: StaticSet) -> StaticSet {
    let mut out = StaticSet::EMPTY;
    for va in a.iter() {
        for vb in b.iter() {
            out.insert(core2(op, va, vb));
        }
    }
    out
}

/// Forward implication over sets; exact because the component-wise algebra
/// is associative.
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn eval_gate_sets(kind: GateKind, ins: &[StaticSet]) -> StaticSet {
    debug_assert!(!ins.is_empty());
    match kind {
        GateKind::Buf => ins[0],
        GateKind::Not => ins[0].not(),
        GateKind::Input | GateKind::Dff => {
            panic!("eval_gate_sets called on non-combinational kind {kind:?}")
        }
        _ => {
            let (op, inv) = core_of(kind).expect("combinational kind");
            let folded = ins[1..]
                .iter()
                .fold(ins[0], |acc, &b| set_core2(op, acc, b));
            if inv {
                folded.not()
            } else {
                folded
            }
        }
    }
}

/// Backward implication: narrows input sets and the output set; returns
/// `true` if anything changed. See [`crate::delay::narrow_inputs`] for the
/// contract.
///
/// # Panics
///
/// Panics if `kind` is `Input`/`Dff` or `ins` is empty.
pub fn narrow_inputs(kind: GateKind, out_allowed: &mut StaticSet, ins: &mut [StaticSet]) -> bool {
    debug_assert!(!ins.is_empty());
    let mut changed = false;
    match kind {
        GateKind::Buf => {
            let meet = out_allowed.intersect(ins[0]);
            changed |= meet != ins[0] || meet != *out_allowed;
            ins[0] = meet;
            *out_allowed = meet;
        }
        GateKind::Not => {
            let meet_in = ins[0].intersect(out_allowed.not());
            let meet_out = out_allowed.intersect(ins[0].not());
            changed |= meet_in != ins[0] || meet_out != *out_allowed;
            ins[0] = meet_in;
            *out_allowed = meet_out;
        }
        GateKind::Input | GateKind::Dff => {
            panic!("narrow_inputs called on non-combinational kind {kind:?}")
        }
        _ => {
            let (op, inv) = core_of(kind).expect("combinational kind");
            let target = if inv { out_allowed.not() } else { *out_allowed };
            let n = ins.len();
            let mut prefix = vec![StaticSet::EMPTY; n + 1];
            let mut suffix = vec![StaticSet::EMPTY; n + 1];
            for i in 0..n {
                prefix[i + 1] = if i == 0 {
                    ins[0]
                } else {
                    set_core2(op, prefix[i], ins[i])
                };
            }
            for i in (0..n).rev() {
                suffix[i] = if i == n - 1 {
                    ins[n - 1]
                } else {
                    set_core2(op, ins[i], suffix[i + 1])
                };
            }
            for i in 0..n {
                let mut keep = StaticSet::EMPTY;
                for v in ins[i].iter() {
                    let sv = StaticSet::singleton(v);
                    let combined = match (i == 0, i == n - 1) {
                        (true, true) => sv,
                        (true, false) => set_core2(op, sv, suffix[1]),
                        (false, true) => set_core2(op, prefix[n - 1], sv),
                        (false, false) => {
                            set_core2(op, set_core2(op, prefix[i], sv), suffix[i + 1])
                        }
                    };
                    if !combined.intersect(target).is_empty() {
                        keep.insert(v);
                    }
                }
                if keep != ins[i] {
                    ins[i] = keep;
                    changed = true;
                }
            }
            let producible_core = suffix[0];
            let producible = if inv {
                producible_core.not()
            } else {
                producible_core
            };
            let meet = out_allowed.intersect(producible);
            if meet != *out_allowed {
                *out_allowed = meet;
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use StaticValue::{Db, D, S0, S1};

    #[test]
    fn classical_d_calculus() {
        // D & 1 = D; D & 0 = 0; D & D' = 0; D | D' = 1; !D = D'.
        assert_eq!(eval2(GateKind::And, D, S1), D);
        assert_eq!(eval2(GateKind::And, D, S0), S0);
        assert_eq!(eval2(GateKind::And, D, Db), S0);
        assert_eq!(eval2(GateKind::Or, D, Db), S1);
        assert_eq!(D.not(), Db);
        assert_eq!(eval2(GateKind::Xor, D, D), S0);
        assert_eq!(eval2(GateKind::Xor, D, S1), Db);
    }

    #[test]
    fn pair_round_trip() {
        for v in StaticValue::ALL {
            assert_eq!(StaticValue::from_pair(v.good(), v.faulty()), v);
        }
    }

    #[test]
    fn set_eval_and_narrow() {
        // AND output must be D with first input {D}: second must allow
        // good=1, faulty=1-or-fault → {1, D}.
        let mut out = StaticSet::singleton(D);
        let mut ins = [StaticSet::singleton(D), StaticSet::ALL];
        narrow_inputs(GateKind::And, &mut out, &mut ins);
        assert_eq!(ins[1], StaticSet::from_values([S1, D]));
    }

    #[test]
    fn narrow_conflict_detected() {
        let mut out = StaticSet::singleton(S1);
        let mut ins = [StaticSet::singleton(S0), StaticSet::ALL];
        narrow_inputs(GateKind::Or, &mut out, &mut ins);
        // OR with a 0 input can still be 1 through the other input.
        assert!(!out.is_empty());
        let mut out2 = StaticSet::singleton(S1);
        let mut ins2 = [StaticSet::singleton(S0), StaticSet::singleton(S0)];
        narrow_inputs(GateKind::Or, &mut out2, &mut ins2);
        assert!(out2.is_empty());
    }

    #[test]
    fn set_eval_exact() {
        let a = StaticSet::from_values([S0, D]);
        let b = StaticSet::from_values([S1, Db]);
        let got = eval_gate_sets(GateKind::Nand, &[a, b]);
        let mut expect = StaticSet::EMPTY;
        for va in a.iter() {
            for vb in b.iter() {
                expect.insert(eval2(GateKind::Nand, va, vb));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn narrow_sound_for_all_small_cases() {
        let sample = [
            StaticSet::ALL,
            StaticSet::GOOD,
            StaticSet::FAULT_EFFECT,
            StaticSet::from_values([S0, Db]),
        ];
        for &a0 in &sample {
            for &b0 in &sample {
                for &o0 in &sample {
                    for kind in [GateKind::And, GateKind::Nor, GateKind::Xor] {
                        let mut out = o0;
                        let mut ins = [a0, b0];
                        narrow_inputs(kind, &mut out, &mut ins);
                        for va in a0.iter() {
                            for vb in b0.iter() {
                                let r = eval2(kind, va, vb);
                                if o0.contains(r) {
                                    assert!(ins[0].contains(va));
                                    assert!(ins[1].contains(vb));
                                    assert!(out.contains(r));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_and_helpers() {
        assert_eq!(Db.to_string(), "D'");
        assert_eq!(format!("{}", StaticSet::FAULT_EFFECT), "{D,D'}");
        assert!(StaticSet::FAULT_EFFECT.must_be_fault_effect());
        assert!(StaticSet::ALL.may_be_fault_effect());
        assert!(!StaticSet::GOOD.may_be_fault_effect());
        assert_eq!(
            StaticSet::ALL.with_good(true),
            StaticSet::from_values([S1, D])
        );
    }
}
