//! Multi-valued algebras for delay-fault and static-fault test generation.
//!
//! Two algebras back the two test generators of the paper:
//!
//! * [`delay`] — the **8-valued robust gate-delay-fault algebra** of TDgen
//!   (Section 3, Tables 1 and 2): `{0, 1, R, F, 0h, 1h, Rc, Fc}`. One value
//!   describes a signal across *both* time frames of a two-pattern test —
//!   its initial-frame value, its final-frame value, whether a hazard is
//!   possible in between, and whether it carries the fault effect (the `c`
//!   in `Rc`/`Fc` plays the role D/D̄ play in static ATPG).
//! * [`static5`] — the **5-valued D-algebra** `{0, 1, D, D̄}` + X of SEMILET,
//!   encoded as (good-machine bit, faulty-machine bit) pairs; `X` is the
//!   full value set.
//!
//! Both algebras are exposed in the *set* form the paper works with
//! ("during test pattern generation for each gate a set of values is
//! maintained that are possible for that gate"): a signal's state is a
//! bitmask of still-possible values, and [`delay::eval_gate`] /
//! [`delay::narrow_inputs`] (and their `static5` twins) perform forward and
//! backward implications over those sets.
//!
//! [`logic3`] holds the plain 3-valued Kleene logic used by the good-machine
//! simulator and the synchronizing-sequence search.
//!
//! [`packed`] is the bit-parallel face of the delay algebra: 64 values per
//! [`packed::PackedWave`] as four u64 bit-planes, with word-level gate
//! evaluation lane-identical to the scalar tables — the substrate of the
//! word-parallel fault simulator.
//!
//! # Example
//!
//! ```
//! use gdf_algebra::delay::{DelayValue, eval2};
//! use gdf_netlist::GateKind;
//!
//! // The paper's robustness rule: a fault-carrying falling transition
//! // propagates through an AND gate only past a steady, hazard-free 1.
//! assert_eq!(eval2(GateKind::And, DelayValue::Fc, DelayValue::S1), DelayValue::Fc);
//! assert_eq!(eval2(GateKind::And, DelayValue::Fc, DelayValue::H1), DelayValue::F);
//! ```

pub mod delay;
pub mod logic3;
pub mod packed;
pub mod static5;
pub mod tables;

pub use delay::{DelaySet, DelayValue};
pub use logic3::Logic3;
pub use packed::PackedWave;
pub use static5::{StaticSet, StaticValue};
