//! The seeded decision stream every injector draws from.
//!
//! The scheduling problem: chaos sites are hit from many threads (the
//! server's worker pool, the proxy's per-connection threads), so a
//! single shared RNG would make the *decision for a given draw index*
//! depend on thread interleaving. Instead, each draw derives a fresh
//! generator from `(seed, index)` — decision `n` is a pure function of
//! the seed and its position in the stream, and replaying the same
//! number of draws replays the identical decisions regardless of which
//! thread made them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One injected fault, as recorded in the schedule's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Draw index in the decision stream.
    pub draw: u64,
    /// Which surface fired (`"disk"`, `"net"`).
    pub site: &'static str,
    /// The fault kind's display name.
    pub kind: String,
    /// What it hit (a path, a connection number).
    pub target: String,
}

/// A seeded, rate-limited decision stream with an injection log.
#[derive(Debug)]
pub struct ChaosSchedule {
    seed: u64,
    rate: f64,
    draws: AtomicU64,
    log: Mutex<Vec<Injection>>,
}

/// SplitMix64 finalizer — decorrelates consecutive draw indices before
/// they become RNG seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl ChaosSchedule {
    /// A schedule firing with probability `rate` per decision point.
    pub fn new(seed: u64, rate: f64) -> Self {
        ChaosSchedule {
            seed,
            rate: rate.clamp(0.0, 1.0),
            draws: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The seed this schedule derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Takes the next decision: `None` for "no fault", or a uniform
    /// pick from a menu of `kinds` fault variants. Thread-safe; the
    /// decision depends only on the seed and the draw index, never on
    /// which thread asked.
    pub fn decide(&self, kinds: usize) -> Option<usize> {
        let draw = self.draws.fetch_add(1, Ordering::AcqRel);
        self.decision_at(draw, kinds)
    }

    /// The decision at draw `index` — the pure function [`Self::decide`]
    /// advances through. Exposed so tests can replay a schedule and
    /// prove same-seed runs inject the identical sequence.
    pub fn decision_at(&self, index: u64, kinds: usize) -> Option<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ mix(index));
        if kinds == 0 || !rng.gen_bool(self.rate) {
            return None;
        }
        Some(rng.gen_range(0..kinds))
    }

    /// The current draw count (decision points visited so far).
    pub fn draws(&self) -> u64 {
        self.draws.load(Ordering::Acquire)
    }

    /// Appends to the injection log. Injectors call this once per fired
    /// fault.
    pub fn record(&self, draw: u64, site: &'static str, kind: String, target: String) {
        self.log
            .lock()
            .expect("chaos log poisoned")
            .push(Injection {
                draw,
                site,
                kind,
                target,
            });
    }

    /// Snapshot of everything injected so far.
    pub fn injections(&self) -> Vec<Injection> {
        self.log.lock().expect("chaos log poisoned").clone()
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.log.lock().expect("chaos log poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_seed_and_index() {
        let a = ChaosSchedule::new(42, 0.3);
        let b = ChaosSchedule::new(42, 0.3);
        let live: Vec<Option<usize>> = (0..500).map(|_| a.decide(4)).collect();
        let replayed: Vec<Option<usize>> = (0..500).map(|i| b.decision_at(i, 4)).collect();
        assert_eq!(live, replayed);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = ChaosSchedule::new(1, 0.5);
        let b = ChaosSchedule::new(2, 0.5);
        let sa: Vec<Option<usize>> = (0..200).map(|i| a.decision_at(i, 4)).collect();
        let sb: Vec<Option<usize>> = (0..200).map(|i| b.decision_at(i, 4)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn rate_bounds_hold() {
        let never = ChaosSchedule::new(7, 0.0);
        assert!((0..300).all(|i| never.decision_at(i, 4).is_none()));
        let always = ChaosSchedule::new(7, 1.0);
        assert!((0..300).all(|i| always.decision_at(i, 4).is_some()));
        // And the menu index is in range.
        assert!((0..300).all(|i| always.decision_at(i, 3).unwrap() < 3));
    }
}
