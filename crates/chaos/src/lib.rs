//! `gdf-chaos`: deterministic fault injection across disk and wire.
//!
//! The system's headline invariant — kill -9 anything, resume, and the
//! merged artifact is byte-identical — is only as strong as the set of
//! failures it has been exercised against. Hand-scripted crash tests
//! sample that space; this crate *enumerates* it from a seed, in the
//! same spirit as the exhaustive fault-universe discipline of the ATPG
//! core: prune no failure you cannot prove unreachable.
//!
//! Three pieces:
//!
//! * [`ChaosSchedule`] — the seeded decision stream. Decision `n` is a
//!   pure function of `(seed, n)`, so the injection sequence is
//!   reproducible run-to-run even when threads interleave differently,
//!   and every injection is logged for post-hoc assertions.
//! * [`ChaosDisk`] — an [`gdf_core::ArtifactIo`] implementation that
//!   tears writes, leaves stale temp files, fakes `ENOSPC`/`EIO`, and
//!   truncates reads, scoped to one directory tree. Installed via
//!   [`ChaosGuard`], which serializes tests and restores the production
//!   passthrough on drop.
//! * [`ChaosProxy`] — a TCP proxy that drops, delays, truncates
//!   mid-stream, and black-holes connections between a client (the
//!   fleet coordinator) and a real `gdf-serve` node.
//!
//! Everything here is test harness: production binaries never link it.

pub mod disk;
pub mod net;
pub mod schedule;

pub use disk::{ChaosDisk, ChaosGuard, DiskFault};
pub use net::{ChaosProxy, NetFault};
pub use schedule::{ChaosSchedule, Injection};
