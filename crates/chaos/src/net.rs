//! Wire chaos: a TCP proxy between a client and a real `gdf-serve`
//! node that misbehaves per schedule.
//!
//! Fault menu (see [`NetFault`]):
//!
//! * **Drop** — accept, close immediately (connection reset before the
//!   request is read).
//! * **Delay** — hold the connection briefly, then proxy faithfully
//!   (late but correct — exercises timeouts that should *not* fire).
//! * **Truncate** — proxy the request, then cut the server's response
//!   after a schedule-derived number of bytes (mid-status-line,
//!   mid-header or mid-body, depending on the cut).
//! * **BlackHole** — accept, read nothing, answer nothing until the
//!   hold expires, then close (exercises client read timeouts).
//!
//! Clean connections are pumped byte-for-byte in both directions, so a
//! zero-rate proxy is transparent. Each connection consumes exactly one
//! schedule decision.

use crate::schedule::ChaosSchedule;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The wire fault menu, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Close the client connection before reading the request.
    Drop,
    /// Hold briefly, then proxy faithfully.
    Delay,
    /// Proxy the request, truncate the response mid-stream.
    Truncate,
    /// Accept and go silent for the hold duration.
    BlackHole,
}

impl NetFault {
    const MENU: [NetFault; 4] = [
        NetFault::Drop,
        NetFault::Delay,
        NetFault::Truncate,
        NetFault::BlackHole,
    ];

    /// Display name, as it appears in the injection log.
    pub fn name(self) -> &'static str {
        match self {
            NetFault::Drop => "drop",
            NetFault::Delay => "delay",
            NetFault::Truncate => "truncate",
            NetFault::BlackHole => "black-hole",
        }
    }
}

/// A chaos TCP proxy in front of one upstream address.
pub struct ChaosProxy {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

/// How long reads inside the pump may block before re-checking flags —
/// also the upper bound on how stale a stop signal can go unnoticed.
const PUMP_TIMEOUT: Duration = Duration::from_millis(100);

impl ChaosProxy {
    /// Starts a proxy on `127.0.0.1:0` forwarding to `upstream`, with
    /// `hold` as the black-hole/delay duration (keep it shorter than
    /// the client timeout for delays to be survivable).
    pub fn start(
        upstream: SocketAddr,
        schedule: Arc<ChaosSchedule>,
        hold: Duration,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let connections = Arc::new(AtomicU64::new(0));
        let acceptor = std::thread::Builder::new()
            .name("gdf-chaos-proxy".into())
            .spawn(move || {
                for client in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(client) = client else { continue };
                    let n = connections.fetch_add(1, Ordering::AcqRel);
                    let schedule = Arc::clone(&schedule);
                    let _ = std::thread::Builder::new()
                        .name(format!("gdf-chaos-conn-{n}"))
                        .spawn(move || handle(client, upstream, &schedule, n, hold));
                }
            })?;
        Ok(ChaosProxy {
            local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients (and fleet plans) should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting and joins the acceptor. In-flight connection
    /// threads finish on their own (reads are bounded by
    /// `PUMP_TIMEOUT`-grained timeouts).
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.local);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle(
    client: TcpStream,
    upstream: SocketAddr,
    schedule: &ChaosSchedule,
    n: u64,
    hold: Duration,
) {
    let draw = schedule.draws();
    let Some(kind) = schedule.decide(NetFault::MENU.len()) else {
        proxy(client, upstream, None);
        return;
    };
    let fault = NetFault::MENU[kind];
    schedule.record(draw, "net", fault.name().to_string(), format!("conn-{n}"));
    match fault {
        NetFault::Drop => drop(client),
        NetFault::Delay => {
            std::thread::sleep(Duration::from_millis(25));
            proxy(client, upstream, None);
        }
        NetFault::Truncate => {
            // 1‥=512 bytes of response: cuts land in the status line,
            // the headers, or the body depending on the draw.
            let cap = 1 + (draw.wrapping_mul(0x9e3779b97f4a7c15) % 512) as usize;
            proxy(client, upstream, Some(cap));
        }
        NetFault::BlackHole => {
            std::thread::sleep(hold);
            drop(client);
        }
    }
}

/// Pumps `client` ⇄ `upstream`, optionally cutting the server→client
/// direction after `cap` bytes.
fn proxy(client: TcpStream, upstream: SocketAddr, cap: Option<usize>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = client.set_read_timeout(Some(PUMP_TIMEOUT));
    let _ = server.set_read_timeout(Some(PUMP_TIMEOUT));
    let (Ok(client_read), Ok(mut server_write)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Client → server: requests are small; pump until EOF/error.
    let up = std::thread::spawn(move || pump(client_read, &mut server_write, None));
    let mut client_write = client;
    pump(server, &mut client_write, cap);
    let _ = client_write.shutdown(std::net::Shutdown::Both);
    let _ = up.join();
}

/// Copies bytes until EOF, a hard error, or the optional cap; timeouts
/// retry so a half-open direction does not hang the thread forever.
fn pump(mut from: TcpStream, to: &mut TcpStream, cap: Option<usize>) {
    let mut buffer = [0u8; 4096];
    let mut sent = 0usize;
    let mut idle_rounds = 0u32;
    loop {
        match from.read(&mut buffer) {
            Ok(0) => return,
            Ok(mut n) => {
                idle_rounds = 0;
                if let Some(cap) = cap {
                    if sent + n > cap {
                        n = cap - sent;
                    }
                }
                if n > 0 && to.write_all(&buffer[..n]).is_err() {
                    return;
                }
                sent += n;
                if cap.is_some_and(|c| sent >= c) {
                    // The cut: drop both directions mid-stream.
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    let _ = from.shutdown(std::net::Shutdown::Both);
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle_rounds += 1;
                // ~30 s of silence: the peer is gone or black-holed.
                if idle_rounds > 300 {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A one-line echo upstream: reads a line, answers `echo: <line>`.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().take(20) {
                let Ok(stream) = stream else { continue };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).is_ok() {
                    let mut stream = stream;
                    let _ = write!(stream, "echo: {line}");
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn zero_rate_proxy_is_transparent() {
        let (upstream, _server) = echo_server();
        let schedule = Arc::new(ChaosSchedule::new(5, 0.0));
        let mut proxy =
            ChaosProxy::start(upstream, Arc::clone(&schedule), Duration::from_millis(50)).unwrap();
        for i in 0..3 {
            let mut stream = TcpStream::connect(proxy.local_addr()).unwrap();
            writeln!(stream, "hello-{i}").unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, format!("echo: hello-{i}\n"));
        }
        assert_eq!(schedule.injected(), 0);
        proxy.stop();
    }

    #[test]
    fn full_rate_proxy_injects_and_never_hangs() {
        let (upstream, _server) = echo_server();
        let schedule = Arc::new(ChaosSchedule::new(6, 1.0));
        let mut proxy =
            ChaosProxy::start(upstream, Arc::clone(&schedule), Duration::from_millis(20)).unwrap();
        for i in 0..10 {
            let Ok(mut stream) = TcpStream::connect(proxy.local_addr()) else {
                continue;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = writeln!(stream, "hello-{i}");
            let mut out = String::new();
            // Any outcome is legal — full echo, truncation, reset —
            // except a hang past the read timeout.
            let _ = stream.read_to_string(&mut out);
            assert!(out.is_empty() || format!("echo: hello-{i}\n").starts_with(&out));
        }
        assert_eq!(schedule.injected(), 10);
        proxy.stop();
    }
}
