//! Disk chaos: an [`ArtifactIo`] implementation that breaks the atomic
//! write/read contract on purpose, per schedule.
//!
//! Fault menu (see [`DiskFault`]):
//!
//! * **Torn write** — a prefix of the document lands *at the
//!   destination* and the call reports success: the one failure the
//!   rename dance is supposed to make impossible (a crashed `fsync`-less
//!   filesystem can still produce it). Readers must detect the
//!   corruption structurally — JSON parse failure, schema mismatch —
//!   and heal by resume/requeue/quarantine, never trust it.
//! * **Stale temp** — the temp file is fully written but the rename
//!   never happens (crash between the two syscalls): the destination
//!   keeps its old content, a `*.tmp` straggler is left behind, and the
//!   call errors.
//! * **ENOSPC / EIO** — the write fails cleanly with a real OS error
//!   code before touching the destination.
//! * **Partial read / read EIO** — the read returns a prefix of the
//!   true content (truncated at a char boundary) or fails with `EIO`.
//!
//! Injection is scoped: only paths under the configured root are
//! touched, so a chaos test never perturbs a neighbouring test's files.

use crate::schedule::ChaosSchedule;
use gdf_core::io::{tmp_path, ArtifactIo, ProductionIo};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The disk fault menu, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Prefix at the destination, call succeeds (silent corruption).
    TornWrite,
    /// Temp fully written, no rename, call errors (crash window).
    StaleTemp,
    /// `ENOSPC` before anything is written.
    NoSpace,
    /// `EIO` on write.
    WriteIo,
    /// Read returns a prefix of the content.
    PartialRead,
    /// `EIO` on read.
    ReadIo,
}

impl DiskFault {
    const WRITE_MENU: [DiskFault; 4] = [
        DiskFault::TornWrite,
        DiskFault::StaleTemp,
        DiskFault::NoSpace,
        DiskFault::WriteIo,
    ];
    const READ_MENU: [DiskFault; 2] = [DiskFault::PartialRead, DiskFault::ReadIo];

    /// Display name, as it appears in the injection log.
    pub fn name(self) -> &'static str {
        match self {
            DiskFault::TornWrite => "torn-write",
            DiskFault::StaleTemp => "stale-temp",
            DiskFault::NoSpace => "enospc",
            DiskFault::WriteIo => "write-eio",
            DiskFault::PartialRead => "partial-read",
            DiskFault::ReadIo => "read-eio",
        }
    }
}

const ENOSPC: i32 = 28;
const EIO: i32 = 5;

/// The chaos [`ArtifactIo`]: injects [`DiskFault`]s for paths under its
/// root, passes everything else through untouched.
#[derive(Debug)]
pub struct ChaosDisk {
    schedule: Arc<ChaosSchedule>,
    root: PathBuf,
}

impl ChaosDisk {
    /// Chaos for every artifact path under `root`, drawing from
    /// `schedule`.
    pub fn new(schedule: Arc<ChaosSchedule>, root: impl Into<PathBuf>) -> Self {
        ChaosDisk {
            schedule,
            root: root.into(),
        }
    }

    fn covers(&self, path: &Path) -> bool {
        path.starts_with(&self.root)
    }

    /// A deterministic auxiliary value for the current draw (prefix
    /// lengths) — derived from the draw count so it replays with the
    /// schedule.
    fn aux(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.schedule.draws().wrapping_mul(0x9e3779b97f4a7c15) % len as u64) as usize
    }
}

impl ArtifactIo for ChaosDisk {
    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        if !self.covers(path) {
            return ProductionIo.write_atomic(path, text);
        }
        let Some(kind) = self.schedule.decide(DiskFault::WRITE_MENU.len()) else {
            return ProductionIo.write_atomic(path, text);
        };
        let fault = DiskFault::WRITE_MENU[kind];
        self.schedule.record(
            self.schedule.draws() - 1,
            "disk",
            fault.name().to_string(),
            path.display().to_string(),
        );
        match fault {
            DiskFault::TornWrite => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                let mut cut = self.aux(text.len());
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                std::fs::write(path, &text[..cut])?;
                Ok(())
            }
            DiskFault::StaleTemp => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                std::fs::write(tmp_path(path), text)?;
                Err(std::io::Error::other("chaos: crash before rename"))
            }
            DiskFault::NoSpace => Err(std::io::Error::from_raw_os_error(ENOSPC)),
            DiskFault::WriteIo => Err(std::io::Error::from_raw_os_error(EIO)),
            _ => unreachable!("read fault in the write menu"),
        }
    }

    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        if !self.covers(path) {
            return ProductionIo.read_to_string(path);
        }
        let Some(kind) = self.schedule.decide(DiskFault::READ_MENU.len()) else {
            return ProductionIo.read_to_string(path);
        };
        let fault = DiskFault::READ_MENU[kind];
        self.schedule.record(
            self.schedule.draws() - 1,
            "disk",
            fault.name().to_string(),
            path.display().to_string(),
        );
        match fault {
            DiskFault::PartialRead => {
                let text = std::fs::read_to_string(path)?;
                let mut cut = self.aux(text.len());
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                Ok(text[..cut].to_string())
            }
            DiskFault::ReadIo => Err(std::io::Error::from_raw_os_error(EIO)),
            _ => unreachable!("write fault in the read menu"),
        }
    }
}

/// Serializes chaos installations: the [`ArtifactIo`] registry is
/// process-global, so only one chaos test may hold it at a time.
/// Poison-tolerant — a panicking chaos test must not wedge the rest of
/// the binary.
fn install_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// RAII installation of a [`ChaosDisk`]: holds the global install lock,
/// swaps the chaos implementation in, and restores the production
/// passthrough on drop (also on panic-unwind).
pub struct ChaosGuard {
    _lock: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// Installs `disk` as the process-global artifact I/O.
    pub fn install(disk: ChaosDisk) -> Self {
        let lock = install_lock();
        gdf_core::io::set_artifact_io(Arc::new(disk));
        ChaosGuard { _lock: lock }
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        gdf_core::io::reset_artifact_io();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gdf-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn faults_stay_inside_the_root() {
        let root = temp_root("scope");
        let outside = temp_root("scope-outside");
        let disk = ChaosDisk::new(Arc::new(ChaosSchedule::new(9, 1.0)), &root);
        // Outside the root: rate 1.0 and still a clean round trip.
        let path = outside.join("doc.json");
        disk.write_atomic(&path, "{\"ok\":true}").unwrap();
        assert_eq!(disk.read_to_string(&path).unwrap(), "{\"ok\":true}");
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&outside);
    }

    #[test]
    fn every_write_fault_is_friendly_or_detectable() {
        let root = temp_root("faults");
        let schedule = Arc::new(ChaosSchedule::new(1234, 1.0));
        let disk = ChaosDisk::new(Arc::clone(&schedule), &root);
        let path = root.join("doc.json");
        ProductionIo.write_atomic(&path, "old-good").unwrap();
        for i in 0..40 {
            match disk.write_atomic(&path, "new-content") {
                // Reported success: destination holds a prefix of the
                // new content (possibly complete) — never garbage.
                Ok(()) => {
                    let now = std::fs::read_to_string(&path).unwrap();
                    assert!("new-content".starts_with(&now), "round {i}: {now:?}");
                }
                // Reported failure: a typed io::Error, and the
                // destination still holds what it held before or the
                // new content, never a mix.
                Err(e) => {
                    assert!(e.raw_os_error().is_some() || e.to_string().contains("chaos"));
                    let now = std::fs::read_to_string(&path).unwrap();
                    assert!(
                        now == "old-good" || "new-content".starts_with(now.as_str()),
                        "round {i}: {now:?}"
                    );
                }
            }
            // Reset for the next round.
            ProductionIo.write_atomic(&path, "old-good").unwrap();
        }
        assert!(schedule.injected() >= 40);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn partial_reads_are_prefixes() {
        let root = temp_root("reads");
        let schedule = Arc::new(ChaosSchedule::new(77, 1.0));
        let disk = ChaosDisk::new(Arc::clone(&schedule), &root);
        let path = root.join("doc.json");
        ProductionIo
            .write_atomic(&path, "αβγδε-full-document")
            .unwrap();
        for _ in 0..40 {
            if let Ok(text) = disk.read_to_string(&path) {
                assert!("αβγδε-full-document".starts_with(&text));
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
