//! The persistent tenant registry — `tenants.json`.
//!
//! A registry pins down who may talk to a server and on what terms:
//! one entry per tenant with its bearer token, priority class,
//! scheduling weight, and quota limits. The document is
//! schema-versioned exactly like `fleet.json` (`"schema":
//! "gdf-tenants"` plus a `version` window), so a future field can ship
//! without stranding old files.
//!
//! Token lookup is constant-time: [`TenantRegistry::authenticate`]
//! scans *every* entry and compares each token with
//! [`constant_time_eq`], accumulating the match instead of
//! early-returning, so response timing reveals nothing about how many
//! token bytes matched.

use crate::TenantError;
use gdf_core::json::{Json, ParseLimits};
use std::path::Path;

/// Current `tenants.json` schema version.
pub const TENANTS_VERSION: u32 = 1;

/// Oldest schema version [`TenantRegistry::decode`] still reads.
pub const TENANTS_VERSION_MIN: u32 = 1;

/// Default priority class when an entry does not name one. Lower
/// values are served first; class 0 is the most urgent.
pub const DEFAULT_PRIORITY: u8 = 1;

/// One tenant: identity, credential, and QoS terms.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant id — the metric label, the `job.json` owner tag, and
    /// the deterministic scheduling tie-break key.
    pub id: String,
    /// The bearer token presented in `Authorization: Bearer <token>`.
    pub token: String,
    /// Priority class; lower runs first, 0 is the most urgent.
    pub priority: u8,
    /// Scheduling weight within a priority band (≥ 1). A weight-2
    /// tenant gets twice the worker share of a weight-1 tenant when
    /// both have work queued.
    pub weight: u64,
    /// Most jobs the tenant may have queued at once; `None` = no cap.
    pub max_queued: Option<usize>,
    /// Most jobs the tenant may have running at once; `None` = no cap.
    pub max_running: Option<usize>,
    /// Sustained submit rate in requests/second; `None` = unlimited.
    pub rate_per_sec: Option<f64>,
    /// Token-bucket burst size; defaults to `max(rate_per_sec, 1)`.
    pub burst: Option<f64>,
}

impl TenantSpec {
    /// A tenant with the given id and token and default terms
    /// (priority 1, weight 1, no caps, no rate limit).
    pub fn new(id: impl Into<String>, token: impl Into<String>) -> TenantSpec {
        TenantSpec {
            id: id.into(),
            token: token.into(),
            priority: DEFAULT_PRIORITY,
            weight: 1,
            max_queued: None,
            max_running: None,
            rate_per_sec: None,
            burst: None,
        }
    }

    /// Sets the priority class (lower runs first).
    pub fn with_priority(mut self, priority: u8) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Sets the scheduling weight (clamped to ≥ 1).
    pub fn with_weight(mut self, weight: u64) -> TenantSpec {
        self.weight = weight.max(1);
        self
    }

    /// Caps how many jobs the tenant may have queued.
    pub fn with_max_queued(mut self, n: usize) -> TenantSpec {
        self.max_queued = Some(n);
        self
    }

    /// Caps how many jobs the tenant may have running.
    pub fn with_max_running(mut self, n: usize) -> TenantSpec {
        self.max_running = Some(n);
        self
    }

    /// Sets the sustained submit rate and burst size.
    pub fn with_rate(mut self, per_sec: f64, burst: f64) -> TenantSpec {
        self.rate_per_sec = Some(per_sec);
        self.burst = Some(burst);
        self
    }

    /// The burst size the token bucket should use.
    pub fn effective_burst(&self) -> f64 {
        self.burst
            .unwrap_or_else(|| self.rate_per_sec.unwrap_or(1.0).max(1.0))
    }
}

/// Why a request failed authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// No `Authorization` header at all.
    Missing,
    /// An `Authorization` header that is not `Bearer <token>`.
    Malformed,
    /// A well-formed bearer token matching no tenant.
    Unknown,
}

impl AuthError {
    /// The HTTP status the server should answer with: `401` when the
    /// client sent no usable credential, `403` when it sent one that
    /// matches no tenant.
    pub fn status(self) -> u16 {
        match self {
            AuthError::Missing | AuthError::Malformed => 401,
            AuthError::Unknown => 403,
        }
    }

    /// The error message for the response body.
    pub fn message(self) -> &'static str {
        match self {
            AuthError::Missing => "missing bearer token",
            AuthError::Malformed => "malformed Authorization header; expected `Bearer <token>`",
            AuthError::Unknown => "unknown token",
        }
    }
}

/// Compares two byte strings in time independent of *where* they
/// differ. The comparison inspects `min(len)` bytes of both inputs and
/// folds every difference (including a length mismatch) into one
/// accumulator, so early mismatches cost the same as late ones.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().min(b.len()) {
        diff |= (a[i] ^ b[i]) as usize;
    }
    diff == 0
}

/// The schema-versioned tenant registry; see the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantRegistry {
    /// The tenants, in document order.
    pub tenants: Vec<TenantSpec>,
}

impl TenantRegistry {
    /// A registry over the given tenants. Validates the same rules as
    /// [`TenantRegistry::decode`].
    pub fn new(tenants: Vec<TenantSpec>) -> Result<TenantRegistry, TenantError> {
        let registry = TenantRegistry { tenants };
        registry.validate()?;
        Ok(registry)
    }

    /// The tenant with the given id, if any.
    pub fn tenant(&self, id: &str) -> Option<&TenantSpec> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Resolves a bearer token to a tenant, in time independent of
    /// which (if any) entry matches: every token is compared.
    pub fn authenticate(&self, token: &str) -> Result<&TenantSpec, AuthError> {
        let mut found = usize::MAX;
        for (index, tenant) in self.tenants.iter().enumerate() {
            if constant_time_eq(tenant.token.as_bytes(), token.as_bytes()) {
                found = index;
            }
        }
        self.tenants.get(found).ok_or(AuthError::Unknown)
    }

    /// Resolves a raw `Authorization` header value (or its absence) to
    /// a tenant. Accepts `Bearer <token>` with a case-insensitive
    /// scheme, per RFC 7235.
    pub fn authorize(&self, header: Option<&str>) -> Result<&TenantSpec, AuthError> {
        let header = header.ok_or(AuthError::Missing)?;
        let mut parts = header.trim().splitn(2, char::is_whitespace);
        let scheme = parts.next().unwrap_or("");
        let token = parts.next().map(str::trim).unwrap_or("");
        if !scheme.eq_ignore_ascii_case("bearer") || token.is_empty() {
            return Err(AuthError::Malformed);
        }
        self.authenticate(token)
    }

    fn validate(&self) -> Result<(), TenantError> {
        let schema = |m: String| TenantError::Schema(m);
        for (index, tenant) in self.tenants.iter().enumerate() {
            if tenant.id.is_empty()
                || !tenant
                    .id
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            {
                return Err(schema(format!(
                    "tenant {index}: id {:?} must be non-empty [A-Za-z0-9._-]",
                    tenant.id
                )));
            }
            if tenant.token.is_empty() {
                return Err(schema(format!("tenant {:?}: empty token", tenant.id)));
            }
            if tenant.weight == 0 {
                return Err(schema(format!("tenant {:?}: zero weight", tenant.id)));
            }
            if let Some(rate) = tenant.rate_per_sec {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(schema(format!(
                        "tenant {:?}: rate_per_sec must be a positive finite number",
                        tenant.id
                    )));
                }
            }
            for earlier in &self.tenants[..index] {
                if earlier.id == tenant.id {
                    return Err(schema(format!("duplicate tenant id {:?}", tenant.id)));
                }
                if earlier.token == tenant.token {
                    return Err(schema(format!(
                        "tenants {:?} and {:?} share a token",
                        earlier.id, tenant.id
                    )));
                }
            }
        }
        Ok(())
    }

    /// Encodes the registry as a schema-versioned pretty JSON document.
    pub fn encode(&self) -> String {
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let mut fields = vec![
                    ("id".into(), Json::Str(t.id.clone())),
                    ("token".into(), Json::Str(t.token.clone())),
                    ("priority".into(), Json::Num(t.priority as f64)),
                    ("weight".into(), Json::Num(t.weight as f64)),
                ];
                if let Some(n) = t.max_queued {
                    fields.push(("max_queued".into(), Json::Num(n as f64)));
                }
                if let Some(n) = t.max_running {
                    fields.push(("max_running".into(), Json::Num(n as f64)));
                }
                if let Some(r) = t.rate_per_sec {
                    fields.push(("rate_per_sec".into(), Json::Num(r)));
                }
                if let Some(b) = t.burst {
                    fields.push(("burst".into(), Json::Num(b)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("gdf-tenants".into())),
            ("version".into(), Json::Num(TENANTS_VERSION as f64)),
            ("tenants".into(), Json::Arr(tenants)),
        ])
        .pretty()
    }

    /// Decodes a document written by [`TenantRegistry::encode`].
    pub fn decode(text: &str) -> Result<TenantRegistry, TenantError> {
        let schema = |m: String| TenantError::Schema(m);
        let j = Json::parse_with_limits(text, ParseLimits::network())
            .map_err(|e| schema(format!("{e:?}")))?;
        if j.get("schema").and_then(Json::as_str) != Some("gdf-tenants") {
            return Err(schema("not a gdf-tenants registry".into()));
        }
        let version = j
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| schema("missing `version`".into()))? as u32;
        if !(TENANTS_VERSION_MIN..=TENANTS_VERSION).contains(&version) {
            return Err(schema(format!(
                "unsupported tenants version {version} (supported: \
                 {TENANTS_VERSION_MIN}..={TENANTS_VERSION})"
            )));
        }
        let raw = j
            .get("tenants")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `tenants`".into()))?;
        let mut tenants = Vec::with_capacity(raw.len());
        for t in raw {
            let id = t
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| schema("tenant missing `id`".into()))?
                .to_string();
            let token = t
                .get("token")
                .and_then(Json::as_str)
                .ok_or_else(|| schema(format!("tenant {id:?} missing `token`")))?
                .to_string();
            tenants.push(TenantSpec {
                id,
                token,
                priority: t
                    .get("priority")
                    .and_then(Json::as_u64)
                    .map(|p| p.min(u8::MAX as u64) as u8)
                    .unwrap_or(DEFAULT_PRIORITY),
                weight: t.get("weight").and_then(Json::as_u64).unwrap_or(1).max(1),
                max_queued: t.get("max_queued").and_then(Json::as_usize),
                max_running: t.get("max_running").and_then(Json::as_usize),
                rate_per_sec: t.get("rate_per_sec").and_then(Json::as_f64),
                burst: t.get("burst").and_then(Json::as_f64),
            });
        }
        TenantRegistry::new(tenants)
    }

    /// Reads and decodes a registry from `path` (through the core I/O
    /// facade, so fault harnesses see registry reads too).
    pub fn load(path: impl AsRef<Path>) -> Result<TenantRegistry, TenantError> {
        let text = gdf_core::io::read_to_string(path.as_ref())
            .map_err(|e| TenantError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::decode(&text)
    }

    /// Atomically writes the registry to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TenantError> {
        gdf_core::io::write_atomic(path.as_ref(), &self.encode())
            .map_err(|e| TenantError::Io(format!("{}: {e}", path.as_ref().display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> TenantRegistry {
        TenantRegistry::new(vec![
            TenantSpec::new("acme", "tok-acme")
                .with_weight(2)
                .with_max_queued(4)
                .with_rate(10.0, 20.0),
            TenantSpec::new("zeta", "tok-zeta").with_priority(2),
        ])
        .unwrap()
    }

    #[test]
    fn registry_round_trips() {
        let registry = two_tenants();
        let decoded = TenantRegistry::decode(&registry.encode()).unwrap();
        assert_eq!(decoded, registry);
        assert_eq!(decoded.tenant("acme").unwrap().weight, 2);
        assert_eq!(decoded.tenant("zeta").unwrap().priority, 2);
        assert_eq!(decoded.tenant("zeta").unwrap().max_queued, None);
    }

    #[test]
    fn decode_rejects_foreign_and_invalid_documents() {
        assert!(TenantRegistry::decode("{}").is_err());
        assert!(TenantRegistry::decode("{\"schema\":\"gdf-fleet\"}").is_err());
        assert!(TenantRegistry::decode("{\"schema\":\"gdf-tenants\",\"version\":99}").is_err());
        // Duplicate ids, duplicate tokens, empty tokens, bad ids.
        for (a, b) in [
            (TenantSpec::new("a", "t1"), TenantSpec::new("a", "t2")),
            (TenantSpec::new("a", "t1"), TenantSpec::new("b", "t1")),
        ] {
            assert!(TenantRegistry::new(vec![a, b]).is_err());
        }
        assert!(TenantRegistry::new(vec![TenantSpec::new("a", "")]).is_err());
        assert!(TenantRegistry::new(vec![TenantSpec::new("no spaces", "t")]).is_err());
    }

    #[test]
    fn authorize_separates_missing_malformed_unknown() {
        let registry = two_tenants();
        assert_eq!(registry.authorize(None), Err(AuthError::Missing));
        assert_eq!(
            registry.authorize(Some("Basic dXNlcg==")),
            Err(AuthError::Malformed)
        );
        assert_eq!(
            registry.authorize(Some("Bearer ")),
            Err(AuthError::Malformed)
        );
        assert_eq!(
            registry.authorize(Some("Bearer nope")),
            Err(AuthError::Unknown)
        );
        assert_eq!(AuthError::Missing.status(), 401);
        assert_eq!(AuthError::Unknown.status(), 403);
        let t = registry.authorize(Some("bearer tok-acme")).unwrap();
        assert_eq!(t.id, "acme");
    }

    #[test]
    fn constant_time_eq_matches_plain_equality() {
        for (a, b) in [
            ("", ""),
            ("x", "x"),
            ("x", "y"),
            ("abc", "ab"),
            ("secret-token", "secret-token"),
            ("secret-token", "secret-tokem"),
        ] {
            assert_eq!(constant_time_eq(a.as_bytes(), b.as_bytes()), a == b);
        }
    }
}
