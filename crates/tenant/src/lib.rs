//! `gdf_tenant` — multi-tenant admission control and QoS for the ATPG
//! service.
//!
//! The server (`gdf-serve`) proves hostile *bytes*, *disks*, and
//! *wires* are survivable; this crate handles hostile **load**: one
//! tenant flooding the bounded queue must not starve everyone else.
//! Three pieces, all dependency-free in the workspace's no-crates.io
//! discipline:
//!
//! - [`TenantRegistry`] — the persistent `tenants.json` document
//!   (schema-versioned like `fleet.json`) mapping bearer tokens to
//!   tenant ids, with [`constant_time_eq`] token comparison so auth
//!   never leaks token bytes through timing.
//! - [`TokenBucket`] — a hand-rolled requests-per-second limiter; the
//!   server turns an empty bucket into `429 Too Many Requests` with a
//!   `Retry-After` telling the tenant exactly when to come back
//!   (distinct from the saturation `503`, which means "the *server* is
//!   full", not "*you* are over quota").
//! - [`FairScheduler`] — weighted deficit round-robin across tenants
//!   within priority bands. A burst from one tenant queues behind its
//!   own lane; other tenants keep their weighted share of the worker
//!   pool. Every decision is deterministic (tie-break by tenant id,
//!   then job id), so the serve determinism invariant — byte-identical
//!   artifacts regardless of concurrency — extends unchanged to
//!   contended multi-tenant load.
//!
//! The crate is pure policy: no sockets, no threads, no clocks of its
//! own (callers pass `Instant`s in), which is what makes every piece
//! unit-testable without a server.

pub mod bucket;
pub mod registry;
pub mod sched;

pub use bucket::TokenBucket;
pub use registry::{
    constant_time_eq, AuthError, TenantRegistry, TenantSpec, TENANTS_VERSION, TENANTS_VERSION_MIN,
};
pub use sched::{EnqueueError, FairScheduler, LaneConfig};

/// Errors from registry parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantError {
    /// Filesystem trouble reading or writing `tenants.json`.
    Io(String),
    /// The document is not a valid tenant registry.
    Schema(String),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Io(m) => write!(f, "tenant registry I/O: {m}"),
            TenantError::Schema(m) => write!(f, "tenant registry schema: {m}"),
        }
    }
}

impl std::error::Error for TenantError {}
