//! Weighted deficit round-robin across tenants, within priority bands.
//!
//! Each tenant owns a **lane**: a FIFO of queued job ids plus a deficit
//! counter. Dispatch picks the most urgent (lowest-numbered) priority
//! band with eligible work, then serves lanes by classic DRR: a lane
//! may dispatch while its deficit covers the job (every job costs 1);
//! when no lane in the band has credit, every eligible lane is topped
//! up by its weight. Over time each tenant's share of dispatches
//! converges to `weight / Σ weights` of its band — a burst from one
//! tenant queues behind its own lane instead of starving the rest.
//!
//! Every decision is a pure function of the scheduler state: ties on
//! deficit break by tenant id (lexicographic), and within a lane jobs
//! leave in id order (the FIFO is fed monotonically by the server), so
//! the dispatch sequence for a given arrival history is deterministic.
//! Artifact bytes never depended on dispatch order — the engine is
//! deterministic per job — but a reproducible order makes contended
//! multi-tenant runs auditable end to end.

use crate::registry::TenantSpec;
use std::collections::{BTreeMap, VecDeque};

/// Scheduling terms for one lane, decoupled from the auth side of
/// [`TenantSpec`] so recovered jobs from a stale registry still get a
/// (default) lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneConfig {
    /// DRR quantum per replenish round (≥ 1).
    pub weight: u64,
    /// Priority band; lower dispatches first.
    pub priority: u8,
    /// Cap on queued jobs; `None` = unlimited.
    pub max_queued: Option<usize>,
    /// Cap on concurrently running jobs; `None` = unlimited.
    pub max_running: Option<usize>,
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig {
            weight: 1,
            priority: crate::registry::DEFAULT_PRIORITY,
            max_queued: None,
            max_running: None,
        }
    }
}

impl From<&TenantSpec> for LaneConfig {
    fn from(t: &TenantSpec) -> LaneConfig {
        LaneConfig {
            weight: t.weight.max(1),
            priority: t.priority,
            max_queued: t.max_queued,
            max_running: t.max_running,
        }
    }
}

/// Why [`FairScheduler::enqueue`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The scheduler's global capacity is exhausted — the *server* is
    /// full (the HTTP layer answers `503`).
    Saturated,
    /// The tenant's own `max_queued` quota is exhausted — the *tenant*
    /// is over quota (the HTTP layer answers `429`).
    OverQuota,
}

#[derive(Debug, Default)]
struct Lane {
    cfg: LaneConfig,
    deficit: u64,
    queue: VecDeque<u64>,
    running: usize,
}

impl Lane {
    /// Whether the lane may dispatch right now.
    fn eligible(&self) -> bool {
        !self.queue.is_empty() && self.cfg.max_running.is_none_or(|m| self.running < m)
    }
}

/// The per-server WDRR dispatcher; see the module docs. Lanes are keyed
/// by tenant id (the empty string is the open/ownerless lane used for
/// jobs recovered from records that predate tenancy).
#[derive(Debug, Default)]
pub struct FairScheduler {
    /// Total queued bound across all lanes; 0 = unlimited.
    capacity: usize,
    lanes: BTreeMap<String, Lane>,
    queued: usize,
}

impl FairScheduler {
    /// A scheduler bounding total queued jobs at `capacity` (0 = no
    /// bound).
    pub fn new(capacity: usize) -> FairScheduler {
        FairScheduler {
            capacity,
            lanes: BTreeMap::new(),
            queued: 0,
        }
    }

    /// Declares (or reconfigures) a lane. Lanes for unknown tenants are
    /// auto-created with [`LaneConfig::default`] on first enqueue.
    pub fn configure(&mut self, tenant: &str, cfg: LaneConfig) {
        self.lanes.entry(tenant.to_string()).or_default().cfg = cfg;
    }

    /// Queues a job on the tenant's lane.
    pub fn enqueue(&mut self, tenant: &str, job: u64) -> Result<(), EnqueueError> {
        if self.capacity != 0 && self.queued >= self.capacity {
            return Err(EnqueueError::Saturated);
        }
        let lane = self.lanes.entry(tenant.to_string()).or_default();
        if let Some(cap) = lane.cfg.max_queued {
            if lane.queue.len() >= cap {
                return Err(EnqueueError::OverQuota);
            }
        }
        lane.queue.push_back(job);
        self.queued += 1;
        Ok(())
    }

    /// Dispatches the next job per WDRR, bumping the lane's running
    /// count. Returns `None` when no lane is eligible (empty, or every
    /// non-empty lane is at its `max_running` cap).
    pub fn dispatch(&mut self) -> Option<(String, u64)> {
        let band = self
            .lanes
            .values()
            .filter(|l| l.eligible())
            .map(|l| l.cfg.priority)
            .min()?;
        loop {
            let mut best: Option<(&String, u64)> = None;
            for (id, lane) in &self.lanes {
                if lane.cfg.priority != band || !lane.eligible() || lane.deficit == 0 {
                    continue;
                }
                // Strict > keeps the lexicographically-first tenant on
                // a deficit tie — the deterministic tie-break.
                if best.is_none_or(|(_, d)| lane.deficit > d) {
                    best = Some((id, lane.deficit));
                }
            }
            if let Some((id, _)) = best {
                let id = id.clone();
                let lane = self.lanes.get_mut(&id).expect("picked lane exists");
                let job = lane.queue.pop_front().expect("eligible lane has work");
                lane.deficit -= 1;
                lane.running += 1;
                if lane.queue.is_empty() {
                    // Idle lanes must not hoard credit across bursts.
                    lane.deficit = 0;
                }
                self.queued -= 1;
                return Some((id, job));
            }
            // No credit anywhere in the band: replenish by weight.
            for lane in self.lanes.values_mut() {
                if lane.cfg.priority == band && lane.eligible() {
                    lane.deficit += lane.cfg.weight;
                }
            }
        }
    }

    /// Records a dispatched job finishing (or being abandoned).
    pub fn finish(&mut self, tenant: &str) {
        if let Some(lane) = self.lanes.get_mut(tenant) {
            lane.running = lane.running.saturating_sub(1);
        }
    }

    /// Removes a queued job (cancellation); `false` if it is not
    /// queued.
    pub fn remove(&mut self, job: u64) -> bool {
        for lane in self.lanes.values_mut() {
            if let Some(pos) = lane.queue.iter().position(|&j| j == job) {
                lane.queue.remove(pos);
                if lane.queue.is_empty() {
                    lane.deficit = 0;
                }
                self.queued -= 1;
                return true;
            }
        }
        false
    }

    /// Total queued jobs across all lanes.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Jobs queued on one tenant's lane.
    pub fn queued_of(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map_or(0, |l| l.queue.len())
    }

    /// Jobs dispatched-but-unfinished on one tenant's lane.
    pub fn running_of(&self, tenant: &str) -> usize {
        self.lanes.get(tenant).map_or(0, |l| l.running)
    }

    /// `(tenant, queued, running)` for every lane, in tenant-id order.
    pub fn snapshot(&self) -> Vec<(String, usize, usize)> {
        self.lanes
            .iter()
            .map(|(id, l)| (id.clone(), l.queue.len(), l.running))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(weight: u64, priority: u8) -> LaneConfig {
        LaneConfig {
            weight,
            priority,
            ..LaneConfig::default()
        }
    }

    /// Drains up to `n` dispatches, finishing each immediately.
    fn drain(s: &mut FairScheduler, n: usize) -> Vec<String> {
        let mut order = Vec::new();
        for _ in 0..n {
            match s.dispatch() {
                Some((tenant, _)) => {
                    s.finish(&tenant);
                    order.push(tenant);
                }
                None => break,
            }
        }
        order
    }

    #[test]
    fn weights_set_the_dispatch_ratio() {
        let mut s = FairScheduler::new(0);
        s.configure("a", lane(2, 1));
        s.configure("b", lane(1, 1));
        for j in 0..9 {
            s.enqueue(if j % 2 == 0 { "a" } else { "b" }, 100 + j)
                .unwrap();
        }
        // a holds jobs 100,102,104,106,108; b holds 101,103,105,107.
        let order = drain(&mut s, 6);
        assert_eq!(order, ["a", "a", "b", "a", "a", "b"], "2:1 WDRR pattern");
    }

    #[test]
    fn equal_weights_alternate_with_deterministic_ties() {
        let mut s = FairScheduler::new(0);
        s.configure("a", lane(1, 1));
        s.configure("b", lane(1, 1));
        for j in 0..6 {
            s.enqueue(["a", "b"][j % 2], j as u64).unwrap();
        }
        assert_eq!(drain(&mut s, 6), ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn lower_priority_band_waits_unless_the_urgent_band_is_capped() {
        let mut s = FairScheduler::new(0);
        s.configure("urgent", lane(1, 0));
        s.configure(
            "bulk",
            LaneConfig {
                weight: 1,
                priority: 1,
                ..LaneConfig::default()
            },
        );
        for j in 0..2 {
            s.enqueue("urgent", j).unwrap();
            s.enqueue("bulk", 10 + j).unwrap();
        }
        // The urgent band drains completely first.
        assert_eq!(drain(&mut s, 4), ["urgent", "urgent", "bulk", "bulk"]);

        // But a capped urgent band must not block the bulk band.
        s.configure(
            "urgent",
            LaneConfig {
                weight: 1,
                priority: 0,
                max_running: Some(1),
                ..LaneConfig::default()
            },
        );
        s.enqueue("urgent", 20).unwrap();
        s.enqueue("urgent", 21).unwrap();
        s.enqueue("bulk", 30).unwrap();
        let (first, _) = s.dispatch().unwrap();
        assert_eq!(first, "urgent");
        // urgent is now at max_running=1 with job 21 still queued; the
        // scheduler falls through to the bulk band rather than idling.
        let (second, job) = s.dispatch().unwrap();
        assert_eq!((second.as_str(), job), ("bulk", 30));
        // Finishing the urgent job re-opens its lane.
        s.finish("urgent");
        assert_eq!(s.dispatch().unwrap(), ("urgent".to_string(), 21));
    }

    #[test]
    fn jobs_leave_a_lane_in_fifo_id_order() {
        let mut s = FairScheduler::new(0);
        for j in [7u64, 9, 11] {
            s.enqueue("a", j).unwrap();
        }
        let jobs: Vec<u64> = (0..3).map(|_| s.dispatch().unwrap().1).collect();
        assert_eq!(jobs, [7, 9, 11]);
    }

    #[test]
    fn capacity_and_quota_reject_distinctly() {
        let mut s = FairScheduler::new(2);
        s.configure(
            "a",
            LaneConfig {
                max_queued: Some(1),
                ..LaneConfig::default()
            },
        );
        s.enqueue("a", 1).unwrap();
        assert_eq!(s.enqueue("a", 2), Err(EnqueueError::OverQuota));
        s.enqueue("b", 3).unwrap();
        assert_eq!(s.enqueue("b", 4), Err(EnqueueError::Saturated));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_and_accounting() {
        let mut s = FairScheduler::new(0);
        s.enqueue("a", 1).unwrap();
        s.enqueue("a", 2).unwrap();
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert_eq!(s.queued_of("a"), 1);
        let (tenant, job) = s.dispatch().unwrap();
        assert_eq!((tenant.as_str(), job), ("a", 2));
        assert_eq!(s.running_of("a"), 1);
        s.finish("a");
        assert_eq!(s.running_of("a"), 0);
        assert_eq!(s.snapshot(), vec![("a".to_string(), 0, 0)]);
        assert!(s.dispatch().is_none());
    }

    #[test]
    fn idle_lanes_do_not_hoard_credit() {
        let mut s = FairScheduler::new(0);
        s.configure("a", lane(8, 1));
        s.configure("b", lane(1, 1));
        // a drains alone and empties; its leftover deficit must reset.
        s.enqueue("a", 1).unwrap();
        assert_eq!(s.dispatch().unwrap().1, 1);
        s.finish("a");
        // Now both contend; a must not burst ahead on stale credit.
        for j in 0..4 {
            s.enqueue("a", 10 + j).unwrap();
            s.enqueue("b", 20 + j).unwrap();
        }
        let order = drain(&mut s, 9);
        let first_b = order.iter().position(|t| t == "b").unwrap();
        assert!(first_b <= 8, "b is served within one replenish round");
    }
}
