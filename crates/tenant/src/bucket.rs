//! A hand-rolled token bucket for per-tenant submit-rate limiting.
//!
//! The bucket holds up to `burst` tokens and refills continuously at
//! `rate` tokens/second; each admitted request spends one. Time is
//! passed in by the caller (an [`Instant`] per call), never read from a
//! global clock, so the refill arithmetic is exactly reproducible in
//! tests.

use std::time::Instant;

/// A continuous-refill token bucket. See the module docs.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/second up to `burst`.
    /// Both are clamped to sane positive values.
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let rate = if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            1.0
        };
        let burst = if burst.is_finite() && burst >= 1.0 {
            burst
        } else {
            1.0
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
    }

    /// Takes one token, or reports how many seconds until one will be
    /// available (always > 0 on `Err`).
    pub fn try_take(&mut self, now: Instant) -> Result<(), f64> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - self.tokens) / self.rate).max(f64::MIN_POSITIVE))
        }
    }

    /// Tokens currently available (for tests and dashboards).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_spends_burst_then_refills_at_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(2.0, 3.0, t0);
        // The full burst is available immediately...
        for _ in 0..3 {
            assert!(b.try_take(t0).is_ok());
        }
        // ...then the bucket is dry and names the wait: 1 token at
        // 2/s is 0.5 s away.
        let wait = b.try_take(t0).unwrap_err();
        assert!((wait - 0.5).abs() < 1e-9, "wait {wait}");
        // Half a second later exactly one token has dripped in.
        let t1 = t0 + Duration::from_millis(500);
        assert!(b.try_take(t1).is_ok());
        assert!(b.try_take(t1).is_err());
    }

    #[test]
    fn refill_never_exceeds_burst() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 2.0, t0);
        let later = t0 + Duration::from_secs(3600);
        assert!(b.try_take(later).is_ok());
        assert!(b.try_take(later).is_ok());
        assert!(b.try_take(later).is_err(), "burst caps the backlog");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(f64::NAN, -5.0, t0);
        assert!(b.try_take(t0).is_ok());
        assert!(b.try_take(t0).is_err());
    }
}
