//! FOGBUSTER forward propagation: drive a latched fault effect to a
//! primary output using *forward time processing* (paper §4).
//!
//! The fault occurred in the fast clock frame; all frames here run with a
//! slow clock, so the logic is fault-free and only the state difference
//! propagates. Each frame is solved by the [`crate::frame`] engine —
//! preferably straight to a PO, otherwise keeping the difference alive in
//! the state — up to a frame limit, with loop detection on the state
//! signature.
//!
//! After success, a *reliance analysis* re-simulates the found vectors
//! with each initially-known state bit blanked to `X` in turn; bits whose
//! loss kills the observation are reported as relied-upon. These feed the
//! paper's invalidation check in TDsim (faults corrupting a relied-upon
//! state bit may not be credited through a PPO observation).

use crate::frame::{FrameEngine, FrameGoal, FrameResult, PpiConstraint};
use gdf_algebra::logic3::Logic3;
use gdf_algebra::static5::StaticSet;
use gdf_netlist::{Circuit, NodeId};
use std::collections::HashSet;

/// A successful propagation of the latched fault effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Propagation {
    /// One PI vector per slow-clock frame (don't-cares as `X`).
    pub vectors: Vec<Vec<Logic3>>,
    /// The primary output at which the difference becomes visible (in the
    /// last frame).
    pub po: NodeId,
    /// Indexes of flip-flops whose *initial* known value the propagation
    /// relies on (for the invalidation check).
    pub relied_dffs: Vec<usize>,
}

/// Outcome of the propagation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagateOutcome {
    /// The difference reaches a PO.
    Propagated(Propagation),
    /// The bounded search space was exhausted: under the given state
    /// knowledge the difference cannot be driven to a PO.
    Unpropagatable,
    /// A backtrack limit was hit first.
    Aborted,
}

/// Limits for the propagation search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagateLimits {
    /// Per-frame backtrack limit (paper: 100 for the sequential engine).
    pub backtrack_limit: u32,
    /// Maximum number of slow-clock frames.
    pub max_frames: usize,
}

impl Default for PropagateLimits {
    fn default() -> Self {
        PropagateLimits {
            backtrack_limit: 100,
            max_frames: 32,
        }
    }
}

/// Drives the fault effect in `start` (one [`StaticSet`] per flip-flop;
/// the difference is whatever `D`/`D̄` bits it contains) to a primary
/// output.
///
/// # Panics
///
/// Panics if `start.len()` differs from the circuit's flip-flop count.
///
/// # Example
///
/// ```
/// use gdf_algebra::static5::{StaticSet, StaticValue};
/// use gdf_netlist::suite;
/// use gdf_semilet::propagate::{propagate_to_po, PropagateLimits, PropagateOutcome};
///
/// let c = suite::s27();
/// let start = vec![
///     StaticSet::singleton(StaticValue::S0),
///     StaticSet::singleton(StaticValue::D),
///     StaticSet::singleton(StaticValue::S0),
/// ];
/// match propagate_to_po(&c, &start, PropagateLimits::default()) {
///     PropagateOutcome::Propagated(p) => assert!(!p.vectors.is_empty()),
///     other => panic!("expected propagation, got {other:?}"),
/// }
/// ```
pub fn propagate_to_po(
    circuit: &Circuit,
    start: &[StaticSet],
    limits: PropagateLimits,
) -> PropagateOutcome {
    propagate_to_po_with_fault(circuit, start, limits, None)
}

/// Like [`propagate_to_po`], but with a persistent stuck-at fault active in
/// every frame (used by the standalone static-fault mode, where the slow
/// clock does not deactivate the fault).
pub fn propagate_to_po_with_fault(
    circuit: &Circuit,
    start: &[StaticSet],
    limits: PropagateLimits,
    fault: Option<gdf_netlist::StuckFault>,
) -> PropagateOutcome {
    assert_eq!(start.len(), circuit.num_dffs(), "state width");
    let engine = FrameEngine::new(circuit, limits.backtrack_limit);
    let mut state: Vec<StaticSet> = start.to_vec();
    let mut vectors: Vec<Vec<Logic3>> = Vec::new();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut aborted = false;

    for _frame in 0..limits.max_frames {
        if !state.iter().any(|s| s.must_be_fault_effect()) {
            break; // difference died
        }
        if !seen.insert(signature(&state)) {
            break; // state loop: no progress possible on this path
        }
        let ppis: Vec<PpiConstraint> = state.iter().map(|&s| PpiConstraint::Fixed(s)).collect();
        match engine.solve(&ppis, &FrameGoal::ObserveAtPo, fault) {
            FrameResult::Solved(sol) => {
                vectors.push(sol.pi.clone());
                let po = sol.po_hit.expect("PO goal solved");
                let relied = reliance_analysis(circuit, &engine, start, &vectors, po, fault);
                return PropagateOutcome::Propagated(Propagation {
                    vectors,
                    po,
                    relied_dffs: relied,
                });
            }
            FrameResult::Aborted => {
                aborted = true;
                break;
            }
            FrameResult::Exhausted => {}
        }
        // Keep the difference alive one more frame.
        match engine.solve(&ppis, &FrameGoal::LatchDiff, fault) {
            FrameResult::Solved(sol) => {
                vectors.push(sol.pi.clone());
                state = sol.next_state;
            }
            FrameResult::Aborted => {
                aborted = true;
                break;
            }
            FrameResult::Exhausted => break,
        }
    }
    if aborted {
        PropagateOutcome::Aborted
    } else {
        PropagateOutcome::Unpropagatable
    }
}

/// Compact signature of a state-set vector for loop detection.
fn signature(state: &[StaticSet]) -> Vec<u8> {
    state.iter().map(|s| s.bits()).collect()
}

/// Re-simulates the found vectors with each initially-known bit blanked;
/// returns the bits whose knowledge the observation depends on.
fn reliance_analysis(
    circuit: &Circuit,
    engine: &FrameEngine<'_>,
    start: &[StaticSet],
    vectors: &[Vec<Logic3>],
    po: NodeId,
    fault: Option<gdf_netlist::StuckFault>,
) -> Vec<usize> {
    let po_pos = circuit
        .outputs()
        .iter()
        .position(|&p| p == po)
        .expect("po index");
    let mut relied = Vec::new();
    for (i, s) in start.iter().enumerate() {
        let known_value = !s.may_be_fault_effect() && s.len() == 1;
        if !known_value {
            continue;
        }
        let mut blanked = start.to_vec();
        blanked[i] = StaticSet::GOOD; // fixed but unknown
        if !observes(circuit, engine, &blanked, vectors, po_pos, fault) {
            relied.push(i);
        }
    }
    relied
}

/// Pure simulation: do `vectors` still yield a definite difference at the
/// PO (by position) in the final frame?
fn observes(
    circuit: &Circuit,
    engine: &FrameEngine<'_>,
    start: &[StaticSet],
    vectors: &[Vec<Logic3>],
    po_pos: usize,
    fault: Option<gdf_netlist::StuckFault>,
) -> bool {
    let _ = circuit;
    let mut state = start.to_vec();
    for (k, v) in vectors.iter().enumerate() {
        let (pos, next) = engine.simulate_frame(&state, v, fault);
        if k == vectors.len() - 1 {
            return matches!(
                pos[po_pos].as_singleton(),
                Some(gdf_algebra::static5::StaticValue::D)
                    | Some(gdf_algebra::static5::StaticValue::Db)
            );
        }
        state = next;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_algebra::static5::StaticValue;
    use gdf_netlist::generator::shift_register;
    use gdf_netlist::suite;

    fn known(b: bool) -> StaticSet {
        StaticSet::singleton(if b { StaticValue::S1 } else { StaticValue::S0 })
    }

    #[test]
    fn one_frame_propagation_in_s27() {
        let c = suite::s27();
        let start = vec![
            known(false),
            StaticSet::singleton(StaticValue::D),
            known(false),
        ];
        match propagate_to_po(&c, &start, PropagateLimits::default()) {
            PropagateOutcome::Propagated(p) => {
                assert_eq!(p.vectors.len(), 1, "G6 is one frame from G17");
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn shift_register_needs_n_frames() {
        let c = shift_register(3);
        // Difference on q0: must shift through q1, q2, then appear at so.
        let start = vec![
            StaticSet::singleton(StaticValue::D),
            known(false),
            known(false),
        ];
        match propagate_to_po(&c, &start, PropagateLimits::default()) {
            PropagateOutcome::Propagated(p) => {
                assert_eq!(p.vectors.len(), 3, "three shifts to reach the output");
                // Enable must be 1 in the shifting frames.
                for v in &p.vectors[..2] {
                    assert_eq!(v[1], Logic3::One);
                }
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn dead_difference_is_unpropagatable() {
        // Difference on a flip-flop that feeds nothing observable.
        let mut b = gdf_netlist::CircuitBuilder::new("dead");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", gdf_netlist::GateKind::Buf, &["a"]);
        b.add_gate("y", gdf_netlist::GateKind::Buf, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let start = vec![StaticSet::singleton(StaticValue::D)];
        assert_eq!(
            propagate_to_po(&c, &start, PropagateLimits::default()),
            PropagateOutcome::Unpropagatable
        );
    }

    #[test]
    fn frame_limit_respected() {
        let c = shift_register(4);
        let start = vec![
            StaticSet::singleton(StaticValue::D),
            known(false),
            known(false),
            known(false),
        ];
        let limits = PropagateLimits {
            max_frames: 2, // too short: needs 4
            ..PropagateLimits::default()
        };
        assert_eq!(
            propagate_to_po(&c, &start, limits),
            PropagateOutcome::Unpropagatable
        );
    }

    #[test]
    fn reliance_detected_for_gating_state() {
        // y = AND(q_diff, q_gate): observation relies on q_gate being 1.
        let mut b = gdf_netlist::CircuitBuilder::new("gate");
        b.add_input("a");
        b.add_dff("qd", "d0");
        b.add_dff("qg", "d1");
        b.add_gate("d0", gdf_netlist::GateKind::Buf, &["a"]);
        b.add_gate("d1", gdf_netlist::GateKind::Buf, &["a"]);
        b.add_gate("y", gdf_netlist::GateKind::And, &["qd", "qg"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let start = vec![StaticSet::singleton(StaticValue::D), known(true)];
        match propagate_to_po(&c, &start, PropagateLimits::default()) {
            PropagateOutcome::Propagated(p) => {
                assert_eq!(p.relied_dffs, vec![1], "qg=1 is load-bearing");
            }
            other => panic!("expected propagation, got {other:?}"),
        }
    }

    #[test]
    fn xf_state_blocks_propagation_like_the_paper_says() {
        // Same circuit, but q_gate is fixed-unknown: the AND cannot be
        // proven sensitized → unpropagatable. This is the mechanism behind
        // the paper's high sequential-untestable counts.
        let mut b = gdf_netlist::CircuitBuilder::new("gate");
        b.add_input("a");
        b.add_dff("qd", "d0");
        b.add_dff("qg", "d1");
        b.add_gate("d0", gdf_netlist::GateKind::Buf, &["a"]);
        b.add_gate("d1", gdf_netlist::GateKind::Buf, &["a"]);
        b.add_gate("y", gdf_netlist::GateKind::And, &["qd", "qg"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let start = vec![StaticSet::singleton(StaticValue::D), StaticSet::GOOD];
        assert_eq!(
            propagate_to_po(&c, &start, PropagateLimits::default()),
            PropagateOutcome::Unpropagatable
        );
    }
}
