//! SEMILET — the sequential test generator for static fault models, built
//! around the FOGBUSTER algorithm (paper §4).
//!
//! Within the combined system of the paper, SEMILET contributes three
//! services around TDgen's local two-pattern test:
//!
//! * **Propagation** ([`propagate`]): *forward time processing* that drives
//!   a fault effect latched in the state (a `D`/`D̄` at one flip-flop) to a
//!   primary output through fault-free, slow-clock time frames.
//! * **Initialization** ([`justify`]): *reverse time processing* that
//!   computes a synchronizing input sequence from the unknown power-up
//!   state to the state TDgen requires before the two-pattern test.
//! * **Standalone static ATPG** ([`stuckat`]): sequential single-stuck-at
//!   test generation over the same machinery, exercising SEMILET as the
//!   independent tool it is in the paper.
//!
//! All three are built on the per-frame 5-valued engine in [`frame`]:
//! set-based forward/backward implication over `{0, 1, D, D̄}` with a
//! complete per-frame branch-and-bound and the paper's backtrack-limit
//! abort.
//!
//! One deliberate design difference from the paper is documented in
//! `DESIGN.md`: propagation here never *assumes* unjustified side values at
//! pseudo primary inputs (forward frames use only what the state actually
//! provides), so the paper's separate "propagation justification" pass
//! reduces to the fast-frame re-entry implemented in the driver crate.

pub mod frame;
pub mod justify;
pub mod propagate;
pub mod stuckat;

pub use frame::{FrameEngine, FrameGoal, FrameResult, FrameSolution, PpiConstraint};
pub use justify::{synchronize, SyncOutcome};
pub use propagate::{propagate_to_po, PropagateOutcome, Propagation};
pub use stuckat::{StuckAtAtpg, StuckAtOutcome};
