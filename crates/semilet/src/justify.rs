//! Synchronizing-sequence computation: *reverse time processing* from the
//! state TDgen requires back to the unknown power-up state (paper §4,
//! the initialization phase).
//!
//! The machine is fault-free here (slow clock), and the power-up state is
//! all-`X`. Working backwards, each step solves one frame with the
//! outstanding state bits as justification targets; primary inputs are
//! free, and any pseudo-primary-input values the frame needs become the
//! targets of the previous step. The sequence is complete when a frame
//! needs no state support at all — it then works from *any* state,
//! including power-up.

use crate::frame::{FrameEngine, FrameGoal, FrameResult, PpiConstraint};
use gdf_algebra::logic3::Logic3;
use gdf_algebra::static5::{StaticSet, StaticValue};
use gdf_netlist::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Outcome of the initialization phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncOutcome {
    /// Input sequence (applied first-to-last) that forces the required
    /// bits regardless of the power-up state.
    Synchronized(Vec<Vec<Logic3>>),
    /// The bounded reverse search was exhausted: the requirement cannot be
    /// synchronized (within the frame limit).
    Unsynchronizable,
    /// A backtrack limit was hit first.
    Aborted,
}

impl SyncOutcome {
    /// The sequence, if synchronization succeeded.
    pub fn sequence(&self) -> Option<&[Vec<Logic3>]> {
        match self {
            SyncOutcome::Synchronized(v) => Some(v),
            _ => None,
        }
    }
}

/// Limits for the synchronization search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncLimits {
    /// Per-frame backtrack limit.
    pub backtrack_limit: u32,
    /// Maximum sequence length.
    pub max_frames: usize,
}

impl Default for SyncLimits {
    fn default() -> Self {
        SyncLimits {
            backtrack_limit: 100,
            max_frames: 32,
        }
    }
}

/// Computes a synchronizing sequence establishing `targets`
/// (`(dff index, value)` pairs). An empty target list needs no sequence.
///
/// # Example
///
/// ```
/// use gdf_netlist::generator::shift_register;
/// use gdf_semilet::justify::{synchronize, SyncLimits};
///
/// let c = shift_register(2);
/// // q1 = 1 requires shifting a 1 through q0: a two-frame sequence.
/// let outcome = synchronize(&c, &[(1, true)], SyncLimits::default());
/// assert_eq!(outcome.sequence().map(|s| s.len()), Some(2));
/// ```
pub fn synchronize(
    circuit: &Circuit,
    targets: &[(usize, bool)],
    limits: SyncLimits,
) -> SyncOutcome {
    if targets.is_empty() {
        return SyncOutcome::Synchronized(Vec::new());
    }
    let engine = FrameEngine::new(circuit, limits.backtrack_limit);
    let all_assignable = vec![PpiConstraint::Assignable; circuit.num_dffs()];
    let mut reversed: Vec<Vec<Logic3>> = Vec::new();
    let mut pending: Vec<(usize, bool)> = normalize(targets);
    let mut seen: HashSet<Vec<(usize, bool)>> = HashSet::new();
    let mut aborted = false;

    while reversed.len() < limits.max_frames {
        if !seen.insert(pending.clone()) {
            break; // requirement loop
        }
        match engine.solve(
            &all_assignable,
            &FrameGoal::JustifyPpos(pending.clone()),
            None,
        ) {
            FrameResult::Solved(sol) => {
                let needed = minimize_requirements(circuit, &engine, &pending, &sol);
                reversed.push(sol.pi.clone());
                if needed.is_empty() {
                    reversed.reverse();
                    return SyncOutcome::Synchronized(reversed);
                }
                pending = normalize(&needed);
            }
            FrameResult::Aborted => {
                aborted = true;
                break;
            }
            FrameResult::Exhausted => break,
        }
    }
    // Reverse justification failed or looped: fall back to a greedy
    // *forward* synchronization — drive the machine from the unknown
    // power-up state with vectors chosen to maximize known (and matching)
    // state bits. This is how loadable/resettable state is synchronized in
    // practice, and it is sound: the frame simulation starts from all-X.
    if let Some(seq) = forward_sync(circuit, &engine, targets, limits) {
        return SyncOutcome::Synchronized(seq);
    }
    if aborted {
        SyncOutcome::Aborted
    } else {
        SyncOutcome::Unsynchronizable
    }
}

/// Greedy forward synchronization from all-X.
fn forward_sync(
    circuit: &Circuit,
    engine: &FrameEngine<'_>,
    targets: &[(usize, bool)],
    limits: SyncLimits,
) -> Option<Vec<Vec<Logic3>>> {
    let n = circuit.num_inputs();
    let mut rng = StdRng::seed_from_u64(0xC0_4D17);
    let mut state = vec![StaticSet::GOOD; circuit.num_dffs()];
    let mut vectors: Vec<Vec<Logic3>> = Vec::new();
    let met = |state: &[StaticSet]| {
        targets.iter().all(|&(i, b)| {
            let want = if b { StaticValue::S1 } else { StaticValue::S0 };
            state[i].as_singleton() == Some(want)
        })
    };
    let score = |state: &[StaticSet]| -> usize {
        let matching = targets
            .iter()
            .filter(|&&(i, b)| {
                let want = if b { StaticValue::S1 } else { StaticValue::S0 };
                state[i].as_singleton() == Some(want)
            })
            .count();
        let known = state.iter().filter(|s| s.len() == 1).count();
        matching * 1024 + known
    };
    let mut stall = 0;
    while vectors.len() < limits.max_frames {
        if met(&state) {
            return Some(vectors);
        }
        let mut candidates: Vec<Vec<Logic3>> = vec![
            vec![Logic3::Zero; n],
            vec![Logic3::One; n],
            (0..n).map(|i| Logic3::from_bool(i % 2 == 0)).collect(),
        ];
        for _ in 0..5 {
            candidates.push((0..n).map(|_| Logic3::from_bool(rng.gen())).collect());
        }
        let mut best: Option<(usize, Vec<Logic3>, Vec<StaticSet>)> = None;
        for cand in candidates {
            let (_po, next) = engine.simulate_frame(&state, &cand, None);
            let sc = score(&next);
            if best.as_ref().is_none_or(|&(b, _, _)| sc > b) {
                best = Some((sc, cand, next));
            }
        }
        let (sc, v, next) = best?;
        if sc <= score(&state) {
            stall += 1;
            if stall > 3 {
                return None;
            }
        } else {
            stall = 0;
        }
        vectors.push(v);
        state = next;
    }
    None
}

/// Drops every assigned PPI bit whose knowledge is not actually needed for
/// the frame's targets: the search may have fixed state bits incidentally,
/// and each kept bit becomes a justification burden for the earlier frames
/// (unpruned sets tend to grow and loop instead of shrinking to ∅).
fn minimize_requirements(
    circuit: &Circuit,
    engine: &FrameEngine<'_>,
    targets: &[(usize, bool)],
    sol: &crate::frame::FrameSolution,
) -> Vec<(usize, bool)> {
    use gdf_algebra::static5::{StaticSet, StaticValue};
    let mut kept: Vec<(usize, bool)> = sol.ppi_assigned.clone();
    let state_of = |assigned: &[(usize, bool)]| -> Vec<StaticSet> {
        let mut state = vec![StaticSet::GOOD; circuit.num_dffs()];
        for &(i, b) in assigned {
            state[i] = StaticSet::singleton(if b { StaticValue::S1 } else { StaticValue::S0 });
        }
        state
    };
    let holds = |assigned: &[(usize, bool)]| -> bool {
        let (_pos, next) = engine.simulate_frame(&state_of(assigned), &sol.pi, None);
        targets.iter().all(|&(i, b)| {
            let want = if b { StaticValue::S1 } else { StaticValue::S0 };
            next[i].as_singleton() == Some(want)
        })
    };
    let mut idx = 0;
    while idx < kept.len() {
        let mut trial = kept.clone();
        trial.remove(idx);
        if holds(&trial) {
            kept = trial;
        } else {
            idx += 1;
        }
    }
    kept
}

fn normalize(targets: &[(usize, bool)]) -> Vec<(usize, bool)> {
    let mut t = targets.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_algebra::logic3::Logic3;
    use gdf_netlist::generator::{counter, shift_register};
    use gdf_netlist::{suite, CircuitBuilder, GateKind};
    use gdf_sim::GoodSimulator;

    /// Check the sequence really synchronizes from all-X, by 3-valued
    /// simulation (X-filling don't-cares with both constants).
    fn check_sequence(c: &Circuit, targets: &[(usize, bool)], seq: &[Vec<Logic3>]) {
        for fill in [Logic3::Zero, Logic3::One] {
            let sim = GoodSimulator::new(c);
            let vectors: Vec<Vec<Logic3>> = seq
                .iter()
                .map(|v| {
                    v.iter()
                        .map(|&l| if l == Logic3::X { fill } else { l })
                        .collect()
                })
                .collect();
            let (_frames, state) = sim.run(&sim.initial_state(), &vectors);
            for &(i, b) in targets {
                assert_eq!(
                    state[i],
                    Logic3::from_bool(b),
                    "target dff {i} not synchronized (fill {fill})"
                );
            }
        }
    }

    #[test]
    fn empty_targets_need_nothing() {
        let c = suite::s27();
        assert_eq!(
            synchronize(&c, &[], SyncLimits::default()),
            SyncOutcome::Synchronized(vec![])
        );
    }

    #[test]
    fn shift_register_synchronizes_in_order() {
        let c = shift_register(3);
        let targets = [(2, true)];
        let outcome = synchronize(&c, &targets, SyncLimits::default());
        let seq = outcome.sequence().expect("synchronizable");
        assert_eq!(seq.len(), 3);
        check_sequence(&c, &targets, seq);
    }

    #[test]
    fn counter_reset_synchronizes_all_bits() {
        let c = counter(3);
        let targets = [(0, false), (1, false), (2, false)];
        let outcome = synchronize(&c, &targets, SyncLimits::default());
        let seq = outcome.sequence().expect("reset makes this easy");
        check_sequence(&c, &targets, seq);
    }

    #[test]
    fn s27_state_bits_synchronizable() {
        let c = suite::s27();
        // G7 = DFF(G13), G13 = NOR(G2, G12): G2=1 forces G13=0.
        let targets = [(2, false)];
        let outcome = synchronize(&c, &targets, SyncLimits::default());
        let seq = outcome.sequence().expect("G7:=0 is one frame away");
        check_sequence(&c, &targets, seq);
    }

    #[test]
    fn unsynchronizable_hold_loop() {
        // q = DFF(q): the state bit can never be forced from X.
        let mut b = CircuitBuilder::new("hold");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::Buf, &["q"]);
        b.add_gate("y", GateKind::And, &["a", "q"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        assert_eq!(
            synchronize(&c, &[(0, true)], SyncLimits::default()),
            SyncOutcome::Unsynchronizable
        );
    }

    #[test]
    fn conflicting_targets_via_same_driver() {
        // Two flip-flops latch the same net: requiring opposite values is
        // impossible.
        let mut b = CircuitBuilder::new("twin");
        b.add_input("a");
        b.add_dff("q0", "d");
        b.add_dff("q1", "d");
        b.add_gate("d", GateKind::Buf, &["a"]);
        b.add_gate("y", GateKind::Xor, &["q0", "q1"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        assert_eq!(
            synchronize(&c, &[(0, true), (1, false)], SyncLimits::default()),
            SyncOutcome::Unsynchronizable
        );
        // Same value is fine.
        let outcome = synchronize(&c, &[(0, true), (1, true)], SyncLimits::default());
        let seq = outcome.sequence().expect("same value is easy");
        check_sequence(&c, &[(0, true), (1, true)], seq);
    }
}
