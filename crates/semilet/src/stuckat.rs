//! Standalone sequential single-stuck-at ATPG — SEMILET as the
//! independent tool it is in the paper ("a sequential test pattern
//! generator for several static fault models").
//!
//! This mode searches forward from the unknown power-up state with the
//! fault injected in *every* frame: each frame either observes the fault
//! effect at a PO, creates/keeps a definite effect in the state, or (when
//! neither is possible yet) applies a heuristic *conditioning* vector that
//! maximizes the number of known state bits, so a later frame can excite
//! the fault. Faults the bounded search cannot resolve are reported as
//! aborted — forward search cannot prove sequential untestability.

use crate::frame::{FrameEngine, FrameGoal, FrameResult, PpiConstraint};
use crate::justify::{synchronize, SyncLimits, SyncOutcome};
use crate::propagate::{propagate_to_po_with_fault, PropagateLimits, PropagateOutcome};
use gdf_algebra::logic3::Logic3;
use gdf_algebra::static5::StaticSet;
use gdf_netlist::{Circuit, NodeId, StuckFault};
use gdf_sim::Fausim;
use std::collections::HashSet;

/// Outcome of sequential stuck-at generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StuckAtOutcome {
    /// Vector sequence (applied from power-up) detecting the fault at the
    /// reported PO in the final frame.
    Test {
        /// One PI vector per frame.
        vectors: Vec<Vec<Logic3>>,
        /// Observing primary output.
        po: NodeId,
    },
    /// The fault is combinationally untestable in every frame (its site is
    /// redundant), proven by the per-frame engine.
    Untestable,
    /// The bounded search gave up.
    Aborted,
}

/// Configuration for the standalone stuck-at generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtConfig {
    /// Per-frame backtrack limit.
    pub backtrack_limit: u32,
    /// Maximum sequence length.
    pub max_frames: usize,
}

impl Default for StuckAtConfig {
    fn default() -> Self {
        StuckAtConfig {
            backtrack_limit: 100,
            max_frames: 24,
        }
    }
}

/// The standalone sequential stuck-at test generator.
///
/// # Example
///
/// ```
/// use gdf_netlist::{suite, FaultUniverse};
/// use gdf_semilet::stuckat::{StuckAtAtpg, StuckAtOutcome};
///
/// let c = suite::s27();
/// let atpg = StuckAtAtpg::new(&c);
/// let faults = FaultUniverse::default().stuck_faults(&c);
/// let found = faults
///     .iter()
///     .filter(|&&f| matches!(atpg.generate(f), StuckAtOutcome::Test { .. }))
///     .count();
/// assert!(found > 0, "s27 has detectable stuck-at faults");
/// ```
#[derive(Debug)]
pub struct StuckAtAtpg<'c> {
    circuit: &'c Circuit,
    config: StuckAtConfig,
}

impl<'c> StuckAtAtpg<'c> {
    /// Creates a generator with default limits.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_config(circuit, StuckAtConfig::default())
    }

    /// Creates a generator with explicit limits.
    pub fn with_config(circuit: &'c Circuit, config: StuckAtConfig) -> Self {
        StuckAtAtpg { circuit, config }
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Generates a test sequence for one stuck-at fault.
    pub fn generate(&self, fault: StuckFault) -> StuckAtOutcome {
        let engine = FrameEngine::new(self.circuit, self.config.backtrack_limit);
        // Purely combinational circuits: the per-frame engine is complete,
        // so a single frame decides the fault exactly.
        if self.circuit.num_dffs() == 0 {
            return match engine.solve(&[], &FrameGoal::ObserveAtPo, Some(fault)) {
                FrameResult::Solved(sol) => StuckAtOutcome::Test {
                    vectors: vec![sol.pi],
                    po: sol.po_hit.expect("PO goal solved"),
                },
                FrameResult::Exhausted => StuckAtOutcome::Untestable,
                FrameResult::Aborted => StuckAtOutcome::Aborted,
            };
        }
        // Attempt A: solve the observation frame with assignable state
        // requirements, justify them with a synchronizing sequence, and
        // verify the whole thing with FAUSIM (the fault is active during
        // justification too, so verification is mandatory).
        let assignable = vec![PpiConstraint::Assignable; self.circuit.num_dffs()];
        if let FrameResult::Solved(sol) =
            engine.solve(&assignable, &FrameGoal::ObserveAtPo, Some(fault))
        {
            if let Some(test) = self.justify_and_verify(fault, &sol.ppi_assigned, vec![sol.pi]) {
                return test;
            }
        }
        // Attempt B: latch the effect with justified state, then drive it
        // forward to a PO with the fault still active.
        if let FrameResult::Solved(sol) =
            engine.solve(&assignable, &FrameGoal::LatchDiff, Some(fault))
        {
            let limits = PropagateLimits {
                backtrack_limit: self.config.backtrack_limit,
                max_frames: self.config.max_frames,
            };
            if let PropagateOutcome::Propagated(p) =
                propagate_to_po_with_fault(self.circuit, &sol.next_state, limits, Some(fault))
            {
                let mut vectors = vec![sol.pi.clone()];
                vectors.extend(p.vectors.iter().cloned());
                if let Some(test) = self.justify_and_verify(fault, &sol.ppi_assigned, vectors) {
                    return test;
                }
            }
        }
        // Attempt C: plain forward search from the unrelated unknown
        // power-up states (good X, faulty X, independently).
        let mut state = vec![StaticSet::ALL; self.circuit.num_dffs()];
        let mut vectors: Vec<Vec<Logic3>> = Vec::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut aborted = false;

        while vectors.len() < self.config.max_frames {
            let sig: Vec<u8> = state.iter().map(|s| s.bits()).collect();
            if !seen.insert(sig) {
                break;
            }
            let ppis: Vec<PpiConstraint> = state.iter().map(|&s| PpiConstraint::Fixed(s)).collect();
            match engine.solve(&ppis, &FrameGoal::ObserveAtPo, Some(fault)) {
                FrameResult::Solved(sol) => {
                    vectors.push(sol.pi.clone());
                    return StuckAtOutcome::Test {
                        vectors,
                        po: sol.po_hit.expect("PO goal solved"),
                    };
                }
                FrameResult::Aborted => {
                    aborted = true;
                    break;
                }
                FrameResult::Exhausted => {}
            }
            // Keep or create a definite effect in the state.
            match engine.solve(&ppis, &FrameGoal::LatchDiff, Some(fault)) {
                FrameResult::Solved(sol) => {
                    vectors.push(sol.pi.clone());
                    state = sol.next_state;
                    continue;
                }
                FrameResult::Aborted => {
                    aborted = true;
                    break;
                }
                FrameResult::Exhausted => {}
            }
            // Conditioning frame: no effect possible yet — drive the state
            // toward known values so a later frame can excite the fault.
            let Some((vector, next)) = self.conditioning_frame(&engine, &state, fault) else {
                break;
            };
            vectors.push(vector);
            state = next;
        }
        // Forward search over a sequential machine cannot prove
        // untestability; everything unresolved is an abort.
        let _ = aborted;
        StuckAtOutcome::Aborted
    }

    /// Prepends a synchronizing sequence for `requirements` and accepts the
    /// candidate only if FAUSIM confirms detection from the all-`X`
    /// power-up state.
    fn justify_and_verify(
        &self,
        fault: StuckFault,
        requirements: &[(usize, bool)],
        tail: Vec<Vec<Logic3>>,
    ) -> Option<StuckAtOutcome> {
        let limits = SyncLimits {
            backtrack_limit: self.config.backtrack_limit,
            max_frames: self.config.max_frames,
        };
        let SyncOutcome::Synchronized(mut vectors) =
            synchronize(self.circuit, requirements, limits)
        else {
            return None;
        };
        vectors.extend(tail);
        let fausim = Fausim::new(self.circuit);
        let (_frame, po) = fausim.stuck_at_observation(fault, &vectors)?;
        Some(StuckAtOutcome::Test { vectors, po })
    }

    /// Picks, among a few candidate vectors, the one whose next state has
    /// the most known bits.
    fn conditioning_frame(
        &self,
        engine: &FrameEngine<'_>,
        state: &[StaticSet],
        fault: StuckFault,
    ) -> Option<(Vec<Logic3>, Vec<StaticSet>)> {
        let n = self.circuit.num_inputs();
        let candidates: Vec<Vec<Logic3>> = vec![
            vec![Logic3::Zero; n],
            vec![Logic3::One; n],
            (0..n).map(|i| Logic3::from_bool(i % 2 == 0)).collect(),
            (0..n).map(|i| Logic3::from_bool(i % 2 == 1)).collect(),
        ];
        let mut best: Option<(usize, Vec<Logic3>, Vec<StaticSet>)> = None;
        for cand in candidates {
            let (_pos, next) = engine.simulate_frame(state, &cand, Some(fault));
            let known = next.iter().filter(|s| s.len() == 1).count();
            if best.as_ref().is_none_or(|&(k, _, _)| known > k) {
                best = Some((known, cand, next));
            }
        }
        let (known, v, next) = best?;
        // Progress check: strictly more knowledge than before, else stop.
        let before = state.iter().filter(|s| s.len() == 1).count();
        if known <= before {
            return None;
        }
        Some((v, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_algebra::Logic3;
    use gdf_netlist::{suite, CircuitBuilder, FaultSite, FaultUniverse, GateKind, StuckAtKind};
    use gdf_sim::Fausim;

    #[test]
    fn combinational_fault_one_frame() {
        let mut b = CircuitBuilder::new("inv");
        b.add_input("a");
        b.add_gate("y", GateKind::Not, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(a),
            kind: StuckAtKind::StuckAt0,
        };
        match StuckAtAtpg::new(&c).generate(fault) {
            StuckAtOutcome::Test { vectors, .. } => {
                assert_eq!(vectors.len(), 1);
                assert_eq!(vectors[0][0], Logic3::One);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn combinational_redundancy_proven() {
        // y = OR(a, NOT(a)) ≡ 1: sa1 on y is undetectable.
        let mut b = CircuitBuilder::new("red");
        b.add_input("a");
        b.add_gate("n", GateKind::Not, &["a"]);
        b.add_gate("y", GateKind::Or, &["a", "n"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let y = c.node_by_name("y").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(y),
            kind: StuckAtKind::StuckAt1,
        };
        assert_eq!(
            StuckAtAtpg::new(&c).generate(fault),
            StuckAtOutcome::Untestable
        );
    }

    #[test]
    fn generated_sequences_verified_by_fausim() {
        let c = suite::s27();
        let atpg = StuckAtAtpg::new(&c);
        let fausim = Fausim::new(&c);
        let faults = FaultUniverse::default().stuck_faults(&c);
        let mut found = 0;
        for &f in &faults {
            if let StuckAtOutcome::Test { vectors, .. } = atpg.generate(f) {
                found += 1;
                // X-fill don't-cares with zeros for the check.
                let filled: Vec<Vec<Logic3>> = vectors
                    .iter()
                    .map(|v| {
                        v.iter()
                            .map(|&l| if l == Logic3::X { Logic3::Zero } else { l })
                            .collect()
                    })
                    .collect();
                assert!(
                    fausim.stuck_at_detection_frame(f, &filled).is_some(),
                    "sequence for {} does not detect it",
                    f.describe(&c)
                );
            }
        }
        assert!(
            found > faults.len() / 3,
            "only {found}/{} found",
            faults.len()
        );
    }

    #[test]
    fn sequential_fault_needs_multiple_frames() {
        let c = gdf_netlist::generator::shift_register(2);
        let si = c.node_by_name("si").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(si),
            kind: StuckAtKind::StuckAt0,
        };
        match StuckAtAtpg::new(&c).generate(fault) {
            StuckAtOutcome::Test { vectors, .. } => {
                assert!(vectors.len() >= 3, "needs to shift through 2 stages");
            }
            other => panic!("expected test, got {other:?}"),
        }
    }
}
