//! The per-time-frame 5-valued engine shared by SEMILET's propagation,
//! justification and standalone stuck-at modes.
//!
//! One instance solves one combinational time frame: pseudo primary inputs
//! carry constraints from the neighbouring frames, primary inputs are
//! decision variables, and the goal is either to drive a fault effect to an
//! observation point or to justify required pseudo-primary-output values.
//! Implications run on arc-consistent [`StaticSet`]s (the same machinery as
//! TDgen, §3's refs 8 and 20, specialized to the static algebra); success is
//! declared only on a *forward functional image* from the decided leaves,
//! so a solution with don't-care `X` positions holds for every completion.

use gdf_algebra::logic3::{eval_gate3, Logic3};
use gdf_algebra::static5::{eval_gate_sets, narrow_inputs, StaticSet, StaticValue};
use gdf_netlist::scoap::Testability;
use gdf_netlist::{Circuit, GateKind, NodeId, StuckFault};
use std::collections::VecDeque;

/// Constraint on one pseudo primary input for this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpiConstraint {
    /// The value set the previous frame hands over (propagation mode);
    /// cannot be assigned, only consumed.
    Fixed(StaticSet),
    /// Free but assignable: assigning it creates a justification
    /// requirement on the previous frame (reverse time processing).
    Assignable,
}

impl PpiConstraint {
    /// The initial leaf set.
    fn leaf(self) -> StaticSet {
        match self {
            PpiConstraint::Fixed(s) => s,
            PpiConstraint::Assignable => StaticSet::GOOD,
        }
    }
}

/// What this frame must achieve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameGoal {
    /// A definite fault effect at some primary output.
    ObserveAtPo,
    /// A definite fault effect latched into some flip-flop.
    LatchDiff,
    /// Produce the given `(dff index, value)` bits at the pseudo primary
    /// outputs (used by the synchronizing-sequence search).
    JustifyPpos(Vec<(usize, bool)>),
}

/// A solved frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSolution {
    /// The PI vector (don't-cares as `X`).
    pub pi: Vec<Logic3>,
    /// Requirements this frame places on the previous frame's state
    /// (only in justification mode, from `Assignable` PPIs).
    pub ppi_assigned: Vec<(usize, bool)>,
    /// The PO at which the effect was observed, if the goal was
    /// [`FrameGoal::ObserveAtPo`].
    pub po_hit: Option<NodeId>,
    /// Forward image of every pseudo primary output — the state handed to
    /// the next frame.
    pub next_state: Vec<StaticSet>,
    /// Backtracks consumed.
    pub backtracks: u32,
}

/// Outcome of solving one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameResult {
    /// Goal achieved.
    Solved(FrameSolution),
    /// Complete per-frame search space exhausted: impossible under the
    /// given constraints.
    Exhausted,
    /// Backtrack limit hit.
    Aborted,
}

impl FrameResult {
    /// Convenience accessor.
    pub fn solution(&self) -> Option<&FrameSolution> {
        match self {
            FrameResult::Solved(s) => Some(s),
            _ => None,
        }
    }
}

/// The per-frame engine.
///
/// # Example
///
/// ```
/// use gdf_algebra::static5::{StaticSet, StaticValue};
/// use gdf_netlist::suite;
/// use gdf_semilet::frame::{FrameEngine, FrameGoal, PpiConstraint};
///
/// let c = suite::s27();
/// // A definite D on flip-flop G6 (index 1), other state bits known 0.
/// let ppis = vec![
///     PpiConstraint::Fixed(StaticSet::singleton(StaticValue::S0)),
///     PpiConstraint::Fixed(StaticSet::singleton(StaticValue::D)),
///     PpiConstraint::Fixed(StaticSet::singleton(StaticValue::S0)),
/// ];
/// let engine = FrameEngine::new(&c, 100);
/// let result = engine.solve(&ppis, &FrameGoal::ObserveAtPo, None);
/// assert!(result.solution().is_some(), "G6 difference is observable at G17");
/// ```
#[derive(Debug)]
pub struct FrameEngine<'c> {
    circuit: &'c Circuit,
    backtrack_limit: u32,
    testability: Testability,
}

#[derive(Debug)]
struct Net {
    sets: Vec<StaticSet>,
    trail: Vec<(NodeId, StaticSet)>,
    queue: VecDeque<NodeId>,
    queued: Vec<bool>,
    conflict: bool,
}

#[derive(Debug)]
struct Decision {
    node: NodeId,
    applied: StaticSet,
    alts: Vec<StaticSet>,
    trail_mark: usize,
}

impl<'c> FrameEngine<'c> {
    /// Creates an engine with the paper's default-style backtrack limit.
    pub fn new(circuit: &'c Circuit, backtrack_limit: u32) -> Self {
        FrameEngine {
            circuit,
            backtrack_limit,
            testability: Testability::compute(circuit),
        }
    }

    /// Solves one frame. `fault` injects a persistent stuck-at fault into
    /// the frame (standalone static-ATPG mode); `None` means a fault-free
    /// (slow clock) frame.
    pub fn solve(
        &self,
        ppis: &[PpiConstraint],
        goal: &FrameGoal,
        fault: Option<StuckFault>,
    ) -> FrameResult {
        assert_eq!(ppis.len(), self.circuit.num_dffs(), "PPI constraint count");
        let mut net = self.init_net(ppis, fault);
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks: u32 = 0;

        // Seed goal constraints into the arc network where possible.
        if let FrameGoal::JustifyPpos(targets) = goal {
            for &(i, b) in targets {
                let d = self.circuit.ppo_of_dff(self.circuit.dffs()[i]);
                let want = StaticSet::singleton(if b { StaticValue::S1 } else { StaticValue::S0 });
                if !self.assign(&mut net, d, want) {
                    return FrameResult::Exhausted;
                }
            }
        }

        loop {
            let consistent = self.propagate(&mut net, fault);
            if consistent {
                let image = self.forward_image(ppis, &stack, fault);
                if let Some(sol) =
                    self.forward_success(goal, ppis, &stack, &image, backtracks, fault)
                {
                    return FrameResult::Solved(sol);
                }
                if self.still_possible(&net, goal, fault)
                    && self.pick_decision(&mut net, goal, ppis, &mut stack, fault, &image)
                {
                    continue;
                }
            }
            backtracks += 1;
            if backtracks > self.backtrack_limit {
                return FrameResult::Aborted;
            }
            let mut retried = false;
            while let Some(mut d) = stack.pop() {
                self.rollback(&mut net, d.trail_mark);
                if let Some(alt) = d.alts.pop() {
                    let _ = self.assign(&mut net, d.node, alt);
                    d.applied = alt;
                    stack.push(d);
                    retried = true;
                    break;
                }
            }
            if !retried {
                return FrameResult::Exhausted;
            }
        }
    }

    // ------------------------------------------------------------------
    // Arc network
    // ------------------------------------------------------------------

    fn init_net(&self, ppis: &[PpiConstraint], fault: Option<StuckFault>) -> Net {
        let n = self.circuit.num_nodes();
        let mut sets = vec![StaticSet::ALL; n];
        for &pi in self.circuit.inputs() {
            sets[pi.index()] = StaticSet::GOOD;
        }
        for (i, &ff) in self.circuit.dffs().iter().enumerate() {
            sets[ff.index()] = ppis[i].leaf();
        }
        // Outside the fault cone (and in fault-free frames entirely) no
        // fault effect can exist unless a PPI carries one in.
        let mut may_effect = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        for (i, &ff) in self.circuit.dffs().iter().enumerate() {
            if ppis[i].leaf().may_be_fault_effect() {
                may_effect[ff.index()] = true;
                stack.push(ff);
            }
        }
        if let Some(f) = fault {
            let seed = match f.site.branch {
                None => f.site.stem,
                Some((sink, _)) => sink,
            };
            if !may_effect[seed.index()] {
                may_effect[seed.index()] = true;
                stack.push(seed);
            }
        }
        while let Some(id) = stack.pop() {
            for &(sink, _) in self.circuit.node(id).fanout() {
                if self.circuit.node(sink).kind().is_combinational() && !may_effect[sink.index()] {
                    may_effect[sink.index()] = true;
                    stack.push(sink);
                }
            }
        }
        for idx in 0..n {
            if !may_effect[idx] {
                sets[idx] = sets[idx].intersect(StaticSet::GOOD);
            }
        }
        let mut net = Net {
            sets,
            trail: Vec::new(),
            queue: VecDeque::new(),
            queued: vec![false; n],
            conflict: false,
        };
        for &g in self.circuit.topo_order() {
            net.queued[g.index()] = true;
            net.queue.push_back(g);
        }
        net
    }

    fn stuck_value(fault: StuckFault) -> bool {
        fault.kind.value()
    }

    fn convert(fault: StuckFault, s: StaticSet) -> StaticSet {
        let stuck = Self::stuck_value(fault);
        s.iter()
            .map(|v| StaticValue::from_pair(v.good(), stuck))
            .collect()
    }

    fn unconvert_within(fault: StuckFault, post: StaticSet, pre: StaticSet) -> StaticSet {
        let stuck = Self::stuck_value(fault);
        pre.iter()
            .filter(|v| post.contains(StaticValue::from_pair(v.good(), stuck)))
            .collect()
    }

    fn edge_converted(fault: Option<StuckFault>, stem: NodeId, sink: NodeId, pin: u8) -> bool {
        let Some(f) = fault else { return false };
        if f.site.stem != stem {
            return false;
        }
        match f.site.branch {
            None => true,
            Some((fsink, fpin)) => fsink == sink && fpin == pin,
        }
    }

    fn edge_set(
        &self,
        net: &Net,
        fault: Option<StuckFault>,
        sink: NodeId,
        pin: usize,
    ) -> StaticSet {
        let stem = self.circuit.node(sink).fanin()[pin];
        let s = net.sets[stem.index()];
        if Self::edge_converted(fault, stem, sink, pin as u8) {
            Self::convert(fault.expect("converted edge"), s)
        } else {
            s
        }
    }

    fn assign(&self, net: &mut Net, id: NodeId, new: StaticSet) -> bool {
        let old = net.sets[id.index()];
        let meet = old.intersect(new);
        if meet == old {
            return !meet.is_empty();
        }
        net.trail.push((id, old));
        net.sets[id.index()] = meet;
        if meet.is_empty() {
            net.conflict = true;
            return false;
        }
        // Wake adjacent gates.
        let node = self.circuit.node(id);
        if node.kind().is_combinational() && !net.queued[id.index()] {
            net.queued[id.index()] = true;
            net.queue.push_back(id);
        }
        let sinks: Vec<NodeId> = node
            .fanout()
            .iter()
            .map(|&(s, _)| s)
            .filter(|&s| self.circuit.node(s).kind().is_combinational())
            .collect();
        for s in sinks {
            if !net.queued[s.index()] {
                net.queued[s.index()] = true;
                net.queue.push_back(s);
            }
        }
        true
    }

    fn rollback(&self, net: &mut Net, mark: usize) {
        while net.trail.len() > mark {
            let (id, old) = net.trail.pop().expect("trail entry");
            net.sets[id.index()] = old;
        }
        net.conflict = false;
        net.queue.clear();
        for q in &mut net.queued {
            *q = false;
        }
    }

    fn propagate(&self, net: &mut Net, fault: Option<StuckFault>) -> bool {
        while let Some(g) = net.queue.pop_front() {
            net.queued[g.index()] = false;
            if net.conflict {
                break;
            }
            let node = self.circuit.node(g);
            let kind = node.kind();
            let fanin: Vec<NodeId> = node.fanin().to_vec();
            let mut ins: Vec<StaticSet> = (0..fanin.len())
                .map(|p| self.edge_set(net, fault, g, p))
                .collect();
            let mut out = net.sets[g.index()];
            let image = eval_gate_sets(kind, &ins);
            out = out.intersect(image);
            narrow_inputs(kind, &mut out, &mut ins);
            if !self.assign(net, g, out) {
                break;
            }
            let mut failed = false;
            for (p, &stem) in fanin.iter().enumerate() {
                let pre = if Self::edge_converted(fault, stem, g, p as u8) {
                    Self::unconvert_within(
                        fault.expect("converted"),
                        ins[p],
                        net.sets[stem.index()],
                    )
                } else {
                    ins[p]
                };
                if !self.assign(net, stem, pre) {
                    failed = true;
                    break;
                }
            }
            if failed {
                break;
            }
        }
        !net.conflict
    }

    // ------------------------------------------------------------------
    // Forward functional image & success
    // ------------------------------------------------------------------

    fn leaf_set(&self, node: NodeId, base: StaticSet, stack: &[Decision]) -> StaticSet {
        let mut s = base;
        for d in stack {
            if d.node == node {
                s = s.intersect(d.applied);
            }
        }
        s
    }

    fn forward_image(
        &self,
        ppis: &[PpiConstraint],
        stack: &[Decision],
        fault: Option<StuckFault>,
    ) -> Vec<StaticSet> {
        let circuit = self.circuit;
        let mut f = vec![StaticSet::EMPTY; circuit.num_nodes()];
        for &pi in circuit.inputs() {
            f[pi.index()] = self.leaf_set(pi, StaticSet::GOOD, stack);
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            f[ff.index()] = self.leaf_set(ff, ppis[i].leaf(), stack);
        }
        for &g in circuit.topo_order() {
            let node = circuit.node(g);
            let ins: Vec<StaticSet> = node
                .fanin()
                .iter()
                .enumerate()
                .map(|(pin, &src)| {
                    let s = f[src.index()];
                    if Self::edge_converted(fault, src, g, pin as u8) {
                        Self::convert(fault.expect("converted"), s)
                    } else {
                        s
                    }
                })
                .collect();
            f[g.index()] = eval_gate_sets(node.kind(), &ins);
        }
        // A stuck stem overrides its own observed value too.
        if let Some(flt) = fault {
            if flt.site.branch.is_none() {
                let idx = flt.site.stem.index();
                f[idx] = Self::convert(flt, f[idx]);
            }
        }
        f
    }

    fn forward_ppo(&self, image: &[StaticSet], i: usize) -> StaticSet {
        let d = self.circuit.ppo_of_dff(self.circuit.dffs()[i]);
        image[d.index()]
    }

    fn forward_ppo_with_fault(
        &self,
        image: &[StaticSet],
        i: usize,
        fault: Option<StuckFault>,
    ) -> StaticSet {
        let dff = self.circuit.dffs()[i];
        let d = self.circuit.ppo_of_dff(dff);
        let s = image[d.index()];
        if Self::edge_converted(fault, d, dff, 0)
            && fault.map(|f| f.site.branch.is_some()).unwrap_or(false)
        {
            Self::convert(fault.expect("converted"), s)
        } else {
            s
        }
    }

    fn forward_success(
        &self,
        goal: &FrameGoal,
        ppis: &[PpiConstraint],
        stack: &[Decision],
        image: &[StaticSet],
        backtracks: u32,
        fault: Option<StuckFault>,
    ) -> Option<FrameSolution> {
        // An observation (or latched effect) needs a *singleton* D or D̄:
        // a {D, D̄} set means the good-machine value is unknown, so a
        // tester has no expected response to compare against.
        let definite = |s: StaticSet| {
            matches!(
                s.as_singleton(),
                Some(StaticValue::D) | Some(StaticValue::Db)
            )
        };
        let achieved = match goal {
            FrameGoal::ObserveAtPo => self
                .circuit
                .outputs()
                .iter()
                .any(|&po| definite(image[po.index()])),
            FrameGoal::LatchDiff => (0..self.circuit.num_dffs())
                .any(|i| definite(self.forward_ppo_with_fault(image, i, fault))),
            FrameGoal::JustifyPpos(targets) => targets.iter().all(|&(i, b)| {
                let want = if b { StaticValue::S1 } else { StaticValue::S0 };
                self.forward_ppo(image, i).as_singleton() == Some(want)
            }),
        };
        if !achieved {
            return None;
        }
        let po_hit = self
            .circuit
            .outputs()
            .iter()
            .copied()
            .find(|&po| definite(image[po.index()]));
        let pi = self
            .circuit
            .inputs()
            .iter()
            .map(|&p| to_logic3(self.leaf_set(p, StaticSet::GOOD, stack)))
            .collect();
        let ppi_assigned = self
            .circuit
            .dffs()
            .iter()
            .enumerate()
            .filter(|&(i, _)| matches!(ppis[i], PpiConstraint::Assignable))
            .filter_map(|(i, &ff)| {
                let leaf = self.leaf_set(ff, StaticSet::GOOD, stack);
                leaf.as_singleton().map(|v| (i, v.good()))
            })
            .collect();
        let next_state = (0..self.circuit.num_dffs())
            .map(|i| self.forward_ppo_with_fault(image, i, fault))
            .collect();
        Some(FrameSolution {
            pi,
            ppi_assigned,
            po_hit,
            next_state,
            backtracks,
        })
    }

    /// Arc-level pruning: is the goal still conceivably achievable?
    fn still_possible(&self, net: &Net, goal: &FrameGoal, fault: Option<StuckFault>) -> bool {
        match goal {
            FrameGoal::ObserveAtPo => self.circuit.outputs().iter().any(|&po| {
                let mut s = net.sets[po.index()];
                if fault
                    .map(|f| f.site.branch.is_none() && f.site.stem == po)
                    .unwrap_or(false)
                {
                    s = Self::convert(fault.expect("fault"), s);
                }
                s.may_be_fault_effect()
            }),
            FrameGoal::LatchDiff => (0..self.circuit.num_dffs()).any(|i| {
                let dff = self.circuit.dffs()[i];
                let d = self.circuit.ppo_of_dff(dff);
                self.edge_set(net, fault, dff, 0).may_be_fault_effect()
                    || net.sets[d.index()].may_be_fault_effect()
            }),
            FrameGoal::JustifyPpos(targets) => targets.iter().all(|&(i, b)| {
                let d = self.circuit.ppo_of_dff(self.circuit.dffs()[i]);
                let want = if b { StaticValue::S1 } else { StaticValue::S0 };
                net.sets[d.index()].contains(want)
            }),
        }
    }

    // ------------------------------------------------------------------
    // Decisions
    // ------------------------------------------------------------------

    fn pick_decision(
        &self,
        net: &mut Net,
        goal: &FrameGoal,
        ppis: &[PpiConstraint],
        stack: &mut Vec<Decision>,
        fault: Option<StuckFault>,
        image: &[StaticSet],
    ) -> bool {
        let objective = self.pick_objective(net, goal, fault, image);
        let decision = objective
            .and_then(|(node, desired)| self.backtrace(net, ppis, stack, node, desired, fault))
            .or_else(|| self.fallback_variable(net, ppis, stack));
        let Some((node, mut alts)) = decision else {
            return false;
        };
        debug_assert!(!alts.is_empty());
        let trail_mark = net.trail.len();
        let first = alts.pop().expect("non-empty");
        let _ = self.assign(net, node, first);
        stack.push(Decision {
            node,
            applied: first,
            alts,
            trail_mark,
        });
        true
    }

    fn pick_objective(
        &self,
        net: &Net,
        goal: &FrameGoal,
        fault: Option<StuckFault>,
        image: &[StaticSet],
    ) -> Option<(NodeId, StaticSet)> {
        match goal {
            FrameGoal::JustifyPpos(targets) => {
                // Judge satisfaction on the *forward image* — the arc
                // network already contains the target as a constraint, so
                // it cannot tell us which targets still need decisions.
                for &(i, b) in targets {
                    let d = self.circuit.ppo_of_dff(self.circuit.dffs()[i]);
                    let want_v = if b { StaticValue::S1 } else { StaticValue::S0 };
                    if image[d.index()].as_singleton() != Some(want_v) {
                        return Some((d, StaticSet::singleton(want_v)));
                    }
                }
                None
            }
            _ => {
                // Excitation first (standalone stuck-at mode): if nothing
                // carries the effect yet, provoke the site.
                if let Some(f) = fault {
                    let any_effect = net.sets.iter().any(|s| s.must_be_fault_effect())
                        || self.any_converted_edge_effect(net, f);
                    if !any_effect {
                        let want_good = !Self::stuck_value(f);
                        let desired: StaticSet = net.sets[f.site.stem.index()]
                            .iter()
                            .filter(|v| v.good() == want_good)
                            .collect();
                        if !desired.is_empty() && desired != net.sets[f.site.stem.index()] {
                            return Some((f.site.stem, desired));
                        }
                    }
                }
                // D-frontier: unresolved gate with a definite effect on an
                // input, closest to an output.
                let mut best: Option<(u32, NodeId, StaticSet)> = None;
                for &g in self.circuit.topo_order() {
                    let out = net.sets[g.index()];
                    if out.must_be_fault_effect() || !out.may_be_fault_effect() {
                        continue;
                    }
                    let arity = self.circuit.node(g).fanin().len();
                    let has_effect_input =
                        (0..arity).any(|p| self.edge_set(net, fault, g, p).must_be_fault_effect());
                    if !has_effect_input {
                        continue;
                    }
                    let desired = out.intersect(StaticSet::FAULT_EFFECT);
                    if desired.is_empty() {
                        continue;
                    }
                    let cost = self.testability.co[g.index()];
                    if best.as_ref().is_none_or(|&(c, _, _)| cost < c) {
                        best = Some((cost, g, desired));
                    }
                }
                best.map(|(_, g, d)| (g, d))
            }
        }
    }

    fn any_converted_edge_effect(&self, net: &Net, f: StuckFault) -> bool {
        let stem = f.site.stem;
        let s = Self::convert(f, net.sets[stem.index()]);
        s.must_be_fault_effect()
    }

    fn backtrace(
        &self,
        net: &Net,
        ppis: &[PpiConstraint],
        stack: &[Decision],
        mut node: NodeId,
        mut desired: StaticSet,
        fault: Option<StuckFault>,
    ) -> Option<(NodeId, Vec<StaticSet>)> {
        let limit = 4 * self.circuit.num_nodes() + 16;
        for _ in 0..limit {
            desired = desired.intersect(net.sets[node.index()]);
            if desired.is_empty() {
                return None;
            }
            let kind = self.circuit.node(node).kind();
            match kind {
                GateKind::Input => {
                    return self.leaf_decision(node, StaticSet::GOOD, desired, stack)
                }
                GateKind::Dff => {
                    let i = self
                        .circuit
                        .dffs()
                        .iter()
                        .position(|&f| f == node)
                        .expect("dff index");
                    return match ppis[i] {
                        PpiConstraint::Assignable => {
                            self.leaf_decision(node, StaticSet::GOOD, desired, stack)
                        }
                        PpiConstraint::Fixed(_) => None, // cannot influence
                    };
                }
                _ => {
                    let arity = self.circuit.node(node).fanin().len();
                    let orig: Vec<StaticSet> = (0..arity)
                        .map(|p| self.edge_set(net, fault, node, p))
                        .collect();
                    let mut ins = orig.clone();
                    let mut out = desired;
                    narrow_inputs(kind, &mut out, &mut ins);
                    let required: Vec<usize> = (0..arity)
                        .filter(|&p| ins[p] != orig[p] && !ins[p].is_empty())
                        .collect();
                    let mut advanced = false;
                    if let Some(&p) = required.iter().max_by_key(|&&p| self.edge_cost(node, p)) {
                        let stem = self.circuit.node(node).fanin()[p];
                        let pre = self.pre_of(net, fault, node, p, ins[p]);
                        if !pre.is_empty() && pre != net.sets[stem.index()] {
                            node = stem;
                            desired = pre;
                            advanced = true;
                        }
                    }
                    if advanced {
                        continue;
                    }
                    let candidates: Vec<usize> =
                        (0..arity).filter(|&p| orig[p].len() > 1).collect();
                    let &p = candidates
                        .iter()
                        .min_by_key(|&&p| self.edge_cost(node, p))?;
                    let chosen = choose_helping_value(kind, &orig, p, desired)?;
                    let stem = self.circuit.node(node).fanin()[p];
                    let pre = self.pre_of(net, fault, node, p, StaticSet::singleton(chosen));
                    if pre.is_empty() {
                        return None;
                    }
                    node = stem;
                    desired = pre;
                }
            }
        }
        None
    }

    fn pre_of(
        &self,
        net: &Net,
        fault: Option<StuckFault>,
        sink: NodeId,
        pin: usize,
        edge_desired: StaticSet,
    ) -> StaticSet {
        let stem = self.circuit.node(sink).fanin()[pin];
        if Self::edge_converted(fault, stem, sink, pin as u8) {
            Self::unconvert_within(
                fault.expect("converted"),
                edge_desired,
                net.sets[stem.index()],
            )
        } else {
            edge_desired.intersect(net.sets[stem.index()])
        }
    }

    fn edge_cost(&self, sink: NodeId, pin: usize) -> u32 {
        let stem = self.circuit.node(sink).fanin()[pin];
        self.testability.cc0[stem.index()].min(self.testability.cc1[stem.index()])
    }

    fn leaf_decision(
        &self,
        node: NodeId,
        base: StaticSet,
        desired: StaticSet,
        stack: &[Decision],
    ) -> Option<(NodeId, Vec<StaticSet>)> {
        let leaf = self.leaf_set(node, base, stack);
        if leaf.len() <= 1 {
            return None;
        }
        // Alternatives tried back-to-front: desired values last.
        let mut ordered: Vec<StaticSet> = Vec::new();
        for v in leaf.iter() {
            if !desired.contains(v) {
                ordered.push(StaticSet::singleton(v));
            }
        }
        for v in leaf.iter() {
            if desired.contains(v) {
                ordered.push(StaticSet::singleton(v));
            }
        }
        Some((node, ordered))
    }

    fn fallback_variable(
        &self,
        net: &Net,
        ppis: &[PpiConstraint],
        stack: &[Decision],
    ) -> Option<(NodeId, Vec<StaticSet>)> {
        // Constrained PIs first, then free PIs, then assignable PPIs (each
        // PPI assignment creates a justification burden — last resort).
        let mut pick: Option<(u8, NodeId)> = None;
        for &pi in self.circuit.inputs() {
            let leaf = self.leaf_set(pi, StaticSet::GOOD, stack);
            if leaf.len() > 1 {
                let rank = if net.sets[pi.index()].len() < leaf.len() {
                    0
                } else {
                    1
                };
                if pick.is_none_or(|(r, _)| rank < r) {
                    pick = Some((rank, pi));
                }
            }
        }
        if pick.is_none() {
            for (i, &ff) in self.circuit.dffs().iter().enumerate() {
                if matches!(ppis[i], PpiConstraint::Assignable) {
                    let leaf = self.leaf_set(ff, StaticSet::GOOD, stack);
                    if leaf.len() > 1 {
                        pick = Some((2, ff));
                        break;
                    }
                }
            }
        }
        let (_, node) = pick?;
        let leaf = self.leaf_set(node, StaticSet::GOOD, stack);
        let arc = net.sets[node.index()];
        let mut ordered: Vec<StaticSet> = Vec::new();
        for v in leaf.iter() {
            if !arc.contains(v) {
                ordered.push(StaticSet::singleton(v));
            }
        }
        for v in leaf.iter() {
            if arc.contains(v) {
                ordered.push(StaticSet::singleton(v));
            }
        }
        Some((node, ordered))
    }
}

fn to_logic3(s: StaticSet) -> Logic3 {
    match s.as_singleton() {
        Some(StaticValue::S0) => Logic3::Zero,
        Some(StaticValue::S1) => Logic3::One,
        _ => Logic3::X,
    }
}

/// Picks a value for input `p` that keeps `desired` producible.
fn choose_helping_value(
    kind: GateKind,
    orig: &[StaticSet],
    p: usize,
    desired: StaticSet,
) -> Option<StaticValue> {
    const PREFERENCE: [StaticValue; 4] = [
        StaticValue::S1,
        StaticValue::S0,
        StaticValue::D,
        StaticValue::Db,
    ];
    let mut fallback = None;
    for v in PREFERENCE {
        if !orig[p].contains(v) {
            continue;
        }
        let mut pinned = orig.to_vec();
        pinned[p] = StaticSet::singleton(v);
        let image = eval_gate_sets(kind, &pinned);
        if image.intersect(desired).is_empty() {
            continue;
        }
        if image.intersect(desired) == image {
            return Some(v);
        }
        if fallback.is_none() {
            fallback = Some(v);
        }
    }
    fallback
}

impl<'c> FrameEngine<'c> {
    /// Pure forward simulation of one frame over value sets: `state` gives
    /// one set per flip-flop, `pi` is a (possibly partial) PI vector, and
    /// `fault` optionally injects a stuck-at. Returns `(po_sets,
    /// next_state_sets)` — used by the multi-frame drivers for reliance
    /// analysis and conditioning frames.
    pub fn simulate_frame(
        &self,
        state: &[StaticSet],
        pi: &[Logic3],
        fault: Option<StuckFault>,
    ) -> (Vec<StaticSet>, Vec<StaticSet>) {
        assert_eq!(state.len(), self.circuit.num_dffs());
        assert_eq!(pi.len(), self.circuit.num_inputs());
        let circuit = self.circuit;
        let mut f = vec![StaticSet::EMPTY; circuit.num_nodes()];
        for (i, &p) in circuit.inputs().iter().enumerate() {
            f[p.index()] = match pi[i].to_bool() {
                Some(true) => StaticSet::singleton(StaticValue::S1),
                Some(false) => StaticSet::singleton(StaticValue::S0),
                None => StaticSet::GOOD,
            };
        }
        for (i, &ff) in circuit.dffs().iter().enumerate() {
            f[ff.index()] = state[i];
        }
        for &g in circuit.topo_order() {
            let node = circuit.node(g);
            let ins: Vec<StaticSet> = node
                .fanin()
                .iter()
                .enumerate()
                .map(|(pin, &src)| {
                    let s = f[src.index()];
                    if Self::edge_converted(fault, src, g, pin as u8) {
                        Self::convert(fault.expect("converted"), s)
                    } else {
                        s
                    }
                })
                .collect();
            f[g.index()] = eval_gate_sets(node.kind(), &ins);
        }
        if let Some(flt) = fault {
            if flt.site.branch.is_none() {
                let idx = flt.site.stem.index();
                f[idx] = Self::convert(flt, f[idx]);
            }
        }
        let pos = circuit.outputs().iter().map(|&po| f[po.index()]).collect();
        let next = (0..circuit.num_dffs())
            .map(|i| {
                let dff = circuit.dffs()[i];
                let d = circuit.ppo_of_dff(dff);
                let s = f[d.index()];
                if Self::edge_converted(fault, d, dff, 0) {
                    Self::convert(fault.expect("converted"), s)
                } else {
                    s
                }
            })
            .collect();
        (pos, next)
    }
}

/// 3-valued sanity helper: evaluates the good machine of one frame given
/// a PI vector and 3-valued state.
#[allow(dead_code)]
pub(crate) fn good_frame(
    circuit: &Circuit,
    pi: &[Logic3],
    state: &[Logic3],
) -> (Vec<Logic3>, Vec<Logic3>) {
    let mut values = vec![Logic3::X; circuit.num_nodes()];
    for (i, &id) in circuit.inputs().iter().enumerate() {
        values[id.index()] = pi[i];
    }
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        values[ff.index()] = state[i];
    }
    for &g in circuit.topo_order() {
        let node = circuit.node(g);
        let ins: Vec<Logic3> = node.fanin().iter().map(|&f| values[f.index()]).collect();
        values[g.index()] = eval_gate3(node.kind(), &ins);
    }
    let next = circuit
        .dffs()
        .iter()
        .map(|&ff| values[circuit.ppo_of_dff(ff).index()])
        .collect();
    (values, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{suite, CircuitBuilder, FaultSite, StuckAtKind};

    fn fixed(v: StaticValue) -> PpiConstraint {
        PpiConstraint::Fixed(StaticSet::singleton(v))
    }

    #[test]
    fn propagates_diff_to_po_in_s27() {
        let c = suite::s27();
        let ppis = vec![
            fixed(StaticValue::S0),
            fixed(StaticValue::D),
            fixed(StaticValue::S0),
        ];
        let engine = FrameEngine::new(&c, 100);
        let result = engine.solve(&ppis, &FrameGoal::ObserveAtPo, None);
        let sol = result.solution().expect("observable");
        assert!(sol.po_hit.is_some());
        // The engine must set G0=0 so that G14=1 exposes G6 through G8.
        assert_eq!(sol.pi[0], Logic3::Zero);
    }

    #[test]
    fn blocked_diff_is_exhausted_not_aborted() {
        // y = AND(q, en): difference on q with en forced 0 by a conflicting
        // constraint cannot reach the PO... here we just check a circuit
        // where the diff is structurally unobservable.
        let mut b = CircuitBuilder::new("dead");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_dff("r", "e");
        b.add_gate("d", GateKind::Buf, &["a"]);
        b.add_gate("e", GateKind::Buf, &["q"]);
        b.add_gate("y", GateKind::Buf, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        // diff on r: r feeds nothing observable (only PO is y = a).
        let ppis = vec![fixed(StaticValue::S0), fixed(StaticValue::D)];
        let engine = FrameEngine::new(&c, 100);
        assert_eq!(
            engine.solve(&ppis, &FrameGoal::ObserveAtPo, None),
            FrameResult::Exhausted
        );
    }

    #[test]
    fn latch_diff_moves_effect_one_frame() {
        let c = gdf_netlist::generator::shift_register(2);
        // diff on q0 must move to q1 (en must be set).
        let ppis = vec![fixed(StaticValue::D), fixed(StaticValue::S0)];
        let engine = FrameEngine::new(&c, 100);
        let sol = engine
            .solve(&ppis, &FrameGoal::LatchDiff, None)
            .solution()
            .cloned()
            .expect("solvable");
        // en is PI index 1 in shift_register (si, en).
        assert_eq!(
            sol.pi[1],
            Logic3::One,
            "enable must be on to shift the diff"
        );
        assert!(sol.next_state[1].must_be_fault_effect());
    }

    #[test]
    fn justify_ppos_simple() {
        let c = gdf_netlist::generator::shift_register(1);
        // Target: q0 gets value 1 → need si=1 and en=1.
        let ppis = vec![PpiConstraint::Assignable];
        let engine = FrameEngine::new(&c, 100);
        let sol = engine
            .solve(&ppis, &FrameGoal::JustifyPpos(vec![(0, true)]), None)
            .solution()
            .cloned()
            .expect("justifiable");
        assert_eq!(sol.pi[0], Logic3::One);
        assert_eq!(sol.pi[1], Logic3::One);
        assert!(sol.ppi_assigned.is_empty(), "no previous-state requirement");
    }

    #[test]
    fn justify_creates_ppi_requirement_when_needed() {
        // d = AND(q, a): producing d=1 needs q=1 from the previous frame.
        let mut b = CircuitBuilder::new("need");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("d", GateKind::And, &["q", "a"]);
        b.mark_output("d");
        let c = b.build().unwrap();
        let ppis = vec![PpiConstraint::Assignable];
        let engine = FrameEngine::new(&c, 100);
        let sol = engine
            .solve(&ppis, &FrameGoal::JustifyPpos(vec![(0, true)]), None)
            .solution()
            .cloned()
            .expect("justifiable with requirement");
        assert_eq!(sol.ppi_assigned, vec![(0, true)]);
        assert_eq!(sol.pi[0], Logic3::One);
    }

    #[test]
    fn justify_impossible_target_exhausts() {
        // d = AND(a, NOT(a)) ≡ 0: target d=1 impossible.
        let mut b = CircuitBuilder::new("impossible");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_gate("n", GateKind::Not, &["a"]);
        b.add_gate("d", GateKind::And, &["a", "n"]);
        b.add_gate("y", GateKind::Buf, &["q"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let ppis = vec![PpiConstraint::Assignable];
        let engine = FrameEngine::new(&c, 100);
        assert_eq!(
            engine.solve(&ppis, &FrameGoal::JustifyPpos(vec![(0, true)]), None),
            FrameResult::Exhausted
        );
    }

    #[test]
    fn stuck_at_injection_excites_and_observes() {
        // y = NOT(a) with a sa0 on a: needs a=1, observes D' at y... with
        // injection the faulty machine sees 0 → y good 0, faulty 1.
        let mut b = CircuitBuilder::new("inv");
        b.add_input("a");
        b.add_gate("y", GateKind::Not, &["a"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let a = c.node_by_name("a").unwrap();
        let fault = StuckFault {
            site: FaultSite::on_stem(a),
            kind: StuckAtKind::StuckAt0,
        };
        let engine = FrameEngine::new(&c, 100);
        let sol = engine
            .solve(&[], &FrameGoal::ObserveAtPo, Some(fault))
            .solution()
            .cloned()
            .expect("excitable");
        assert_eq!(sol.pi[0], Logic3::One);
    }

    #[test]
    fn unknown_ppi_blocks_definite_observation() {
        // y = XOR(q, a): with q unknown (Xf), y can never be a definite D
        // even though a is free — matches the paper's Xf pessimism.
        let mut b = CircuitBuilder::new("xf");
        b.add_input("a");
        b.add_dff("q", "d");
        b.add_dff("p", "e");
        b.add_gate("d", GateKind::Buf, &["a"]);
        b.add_gate("e", GateKind::Buf, &["a"]);
        b.add_gate("y", GateKind::Xor, &["q", "p"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        // p carries D, q is fixed-unknown.
        let ppis = vec![
            PpiConstraint::Fixed(StaticSet::GOOD), // Xf
            PpiConstraint::Fixed(StaticSet::singleton(StaticValue::D)),
        ];
        let engine = FrameEngine::new(&c, 100);
        assert_eq!(
            engine.solve(&ppis, &FrameGoal::ObserveAtPo, None),
            FrameResult::Exhausted,
            "XOR with an Xf side input cannot give a definite difference"
        );
    }
}
