//! The persistent fleet plan — `fleet.json`.
//!
//! A plan pins down everything a fleet campaign needs to be restartable
//! and auditable: the node addresses, the shared [`RunConfig`], the
//! circuits (full [`CircuitSource`] provenance, so a resumed
//! coordinator rebuilds byte-identical circuits), and the **work
//! units** — one per circuit × fault-universe range, with the `[lo,
//! hi)` boundaries that [`gdf_netlist::FaultSet::split`] produced
//! recorded explicitly. Unit state transitions (`pending → submitted →
//! done`/`failed`) are persisted on every change, which is the whole
//! resumability story: a restarted coordinator reads the plan and
//! reconciles `submitted` units against the nodes' actual job state.

use crate::FleetError;
use gdf_core::artifact::{decode_config, encode_config, ArtifactError, CircuitSource};
use gdf_core::engine::RunConfig;
use gdf_core::json::{Json, ParseLimits};
use gdf_netlist::FaultSet;
use gdf_serve::JobId;
use std::path::Path;

/// Current `fleet.json` schema version.
pub const FLEET_VERSION: u32 = 1;

/// Oldest schema version [`FleetPlan::decode`] still reads.
pub const FLEET_VERSION_MIN: u32 = 1;

/// Where a work unit stands. `Submitted` remembers the node and job id
/// so a resumed coordinator can reconcile instead of resubmitting
/// blindly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitState {
    /// Not yet on any node.
    Pending,
    /// Submitted as job `job` on `node`; outcome unknown.
    Submitted {
        /// Node address the unit went to.
        node: String,
        /// The job id the node assigned.
        job: JobId,
    },
    /// The shard artifact is harvested and on the coordinator's disk.
    Done,
    /// The node reported the job failed (the unit goes back to pending
    /// only by an explicit steal; the error is kept for diagnosis).
    Failed {
        /// The node's error message.
        error: String,
    },
}

impl UnitState {
    fn name(&self) -> &'static str {
        match self {
            UnitState::Pending => "pending",
            UnitState::Submitted { .. } => "submitted",
            UnitState::Done => "done",
            UnitState::Failed { .. } => "failed",
        }
    }
}

/// One deterministic work unit: universe indexes `[lo, hi)` of one
/// circuit's fault universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Index into [`FleetPlan::circuits`].
    pub circuit: usize,
    /// First universe index (inclusive).
    pub lo: usize,
    /// One past the last universe index (exclusive).
    pub hi: usize,
    /// Current state.
    pub state: UnitState,
}

impl WorkUnit {
    /// Number of faults the unit covers.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the unit covers no faults (legal: tiny universes split
    /// into more units than faults).
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// The schema-versioned fleet plan; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Plan name — the provenance namespace of every unit tag.
    pub name: String,
    /// Node addresses (`host:port`), in submission-preference order.
    pub nodes: Vec<String>,
    /// The shared run configuration (identical on every unit — that is
    /// what makes the merge byte-identical to a single-node run).
    pub config: RunConfig,
    /// Engine workers per shard job.
    pub parallelism: usize,
    /// Checkpoint cadence of shard jobs, in decided faults.
    pub checkpoint_every: usize,
    /// The campaign's circuits, with full provenance.
    pub circuits: Vec<CircuitSource>,
    /// The work units, in deterministic (circuit, lo) order.
    pub units: Vec<WorkUnit>,
}

impl FleetPlan {
    /// Builds a plan: every circuit's fault universe is partitioned
    /// into `units_per_circuit` contiguous ranges through
    /// [`FaultSet::split`]'s O(1) cursor, and the resulting boundaries
    /// become the plan's work units.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<String>,
        config: RunConfig,
        circuits: Vec<CircuitSource>,
        units_per_circuit: usize,
    ) -> Result<FleetPlan, FleetError> {
        if nodes.is_empty() {
            return Err(FleetError::Plan("a fleet needs at least one node".into()));
        }
        let units_per_circuit = units_per_circuit.max(1);
        let mut units = Vec::new();
        for (index, source) in circuits.iter().enumerate() {
            let circuit = source.resolve()?;
            let set = FaultSet::new(&circuit, config.universe, config.model);
            let mut lo = 0usize;
            for shard in set.split(units_per_circuit) {
                let hi = lo + shard.len();
                units.push(WorkUnit {
                    circuit: index,
                    lo,
                    hi,
                    state: UnitState::Pending,
                });
                lo = hi;
            }
        }
        Ok(FleetPlan {
            name: name.into(),
            nodes,
            config,
            parallelism: 1,
            checkpoint_every: 16,
            circuits,
            units,
        })
    }

    /// The provenance tag of unit `index`, as submitted to nodes and
    /// recorded in their `job.json`.
    pub fn tag(&self, index: usize) -> String {
        format!("fleet:{}/unit-{index}", self.name)
    }

    /// Indexes of the units belonging to circuit `circuit`.
    pub fn units_of(&self, circuit: usize) -> impl Iterator<Item = usize> + '_ {
        self.units
            .iter()
            .enumerate()
            .filter(move |(_, u)| u.circuit == circuit)
            .map(|(i, _)| i)
    }

    /// Whether every unit is done.
    pub fn is_complete(&self) -> bool {
        self.units.iter().all(|u| u.state == UnitState::Done)
    }

    /// Counts units per state: `(pending, submitted, done, failed)`.
    pub fn state_counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0, 0, 0, 0);
        for unit in &self.units {
            match unit.state {
                UnitState::Pending => counts.0 += 1,
                UnitState::Submitted { .. } => counts.1 += 1,
                UnitState::Done => counts.2 += 1,
                UnitState::Failed { .. } => counts.3 += 1,
            }
        }
        counts
    }

    /// Encodes the plan as a schema-versioned pretty JSON document.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Str("gdf-fleet".into())),
            ("version".into(), Json::Num(FLEET_VERSION as f64)),
            ("name".into(), Json::Str(self.name.clone())),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ];
        fields.extend(encode_config(&self.config));
        fields.push(("parallelism".into(), Json::Num(self.parallelism as f64)));
        fields.push((
            "checkpoint_every".into(),
            Json::Num(self.checkpoint_every as f64),
        ));
        fields.push((
            "circuits".into(),
            Json::Arr(self.circuits.iter().map(CircuitSource::encode).collect()),
        ));
        fields.push((
            "units".into(),
            Json::Arr(
                self.units
                    .iter()
                    .map(|unit| {
                        let mut u = vec![
                            ("circuit".into(), Json::Num(unit.circuit as f64)),
                            ("lo".into(), Json::Num(unit.lo as f64)),
                            ("hi".into(), Json::Num(unit.hi as f64)),
                            ("state".into(), Json::Str(unit.state.name().into())),
                        ];
                        match &unit.state {
                            UnitState::Submitted { node, job } => {
                                u.push(("node".into(), Json::Str(node.clone())));
                                u.push(("job".into(), Json::Num(*job as f64)));
                            }
                            UnitState::Failed { error } => {
                                u.push(("error".into(), Json::Str(error.clone())));
                            }
                            _ => {}
                        }
                        Json::Obj(u)
                    })
                    .collect(),
            ),
        ));
        Json::Obj(fields).pretty()
    }

    /// Decodes a document written by [`FleetPlan::encode`].
    pub fn decode(text: &str) -> Result<FleetPlan, FleetError> {
        let schema = |m: String| FleetError::Artifact(ArtifactError::Schema(m));
        let j = Json::parse_with_limits(text, ParseLimits::network())
            .map_err(|e| FleetError::Artifact(ArtifactError::Json(e)))?;
        if j.get("schema").and_then(Json::as_str) != Some("gdf-fleet") {
            return Err(schema("not a gdf-fleet plan".into()));
        }
        let version = j
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| schema("missing `version`".into()))? as u32;
        if !(FLEET_VERSION_MIN..=FLEET_VERSION).contains(&version) {
            return Err(schema(format!(
                "unsupported fleet plan version {version} (supported: \
                 {FLEET_VERSION_MIN}..={FLEET_VERSION})"
            )));
        }
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| schema("missing `name`".into()))?
            .to_string();
        let nodes = j
            .get("nodes")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `nodes`".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| schema("non-string node address".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let config = decode_config(&j)?;
        let circuits = j
            .get("circuits")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `circuits`".into()))?
            .iter()
            .map(CircuitSource::decode)
            .collect::<Result<Vec<_>, _>>()?;
        let raw_units = j
            .get("units")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `units`".into()))?;
        let mut units = Vec::with_capacity(raw_units.len());
        for u in raw_units {
            let field = |name: &str| {
                u.get(name)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| schema(format!("unit missing `{name}`")))
            };
            let circuit = field("circuit")?;
            let lo = field("lo")?;
            let hi = field("hi")?;
            if circuit >= circuits.len() || lo > hi {
                return Err(schema(format!(
                    "unit references circuit {circuit} range [{lo}‥{hi})"
                )));
            }
            let state = match u.get("state").and_then(Json::as_str) {
                Some("pending") => UnitState::Pending,
                Some("submitted") => UnitState::Submitted {
                    node: u
                        .get("node")
                        .and_then(Json::as_str)
                        .ok_or_else(|| schema("submitted unit missing `node`".into()))?
                        .to_string(),
                    job: u
                        .get("job")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| schema("submitted unit missing `job`".into()))?,
                },
                Some("done") => UnitState::Done,
                Some("failed") => UnitState::Failed {
                    error: u
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                },
                other => return Err(schema(format!("unknown unit state {other:?}"))),
            };
            units.push(WorkUnit {
                circuit,
                lo,
                hi,
                state,
            });
        }
        // A unit id is its (circuit, range): the same range listed twice
        // would double-submit and double-count — reject the document (a
        // hand-edited or corrupt plan, never one this code wrote).
        for (a, unit) in units.iter().enumerate() {
            if units[..a]
                .iter()
                .any(|b| b.circuit == unit.circuit && b.lo == unit.lo && b.hi == unit.hi)
            {
                return Err(schema(format!(
                    "duplicated unit: circuit {} range [{}‥{})",
                    unit.circuit, unit.lo, unit.hi
                )));
            }
        }
        Ok(FleetPlan {
            name,
            nodes,
            config,
            parallelism: j
                .get("parallelism")
                .and_then(Json::as_usize)
                .unwrap_or(1)
                .max(1),
            checkpoint_every: j
                .get("checkpoint_every")
                .and_then(Json::as_usize)
                .unwrap_or(16)
                .max(1),
            circuits,
            units,
        })
    }

    /// Atomically writes the plan to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FleetError> {
        gdf_serve::job::write_atomic(path.as_ref(), &self.encode()).map_err(FleetError::Artifact)
    }

    /// Reads and decodes a plan from `path` (through the core I/O
    /// facade, so fault harnesses see plan reads too).
    pub fn load(path: impl AsRef<Path>) -> Result<FleetPlan, FleetError> {
        let text = gdf_core::io::read_to_string(path.as_ref())
            .map_err(|e| FleetError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_core::engine::Backend;
    use gdf_netlist::suite;

    fn sources() -> Vec<CircuitSource> {
        vec![
            CircuitSource::suite(&suite::s27(), "s27"),
            CircuitSource::suite(&suite::by_name("s42").unwrap(), "s42"),
        ]
    }

    #[test]
    fn plan_units_tile_every_circuit_universe() {
        let config = RunConfig::new(Backend::NonScan);
        let plan =
            FleetPlan::new("p", vec!["a:1".into(), "b:2".into()], config, sources(), 3).unwrap();
        assert_eq!(plan.units.len(), 6);
        for (index, source) in plan.circuits.iter().enumerate() {
            let circuit = source.resolve().unwrap();
            let total = FaultSet::new(&circuit, config.universe, config.model).len();
            let mut expect_lo = 0usize;
            for k in plan.units_of(index) {
                let unit = &plan.units[k];
                assert_eq!(unit.lo, expect_lo, "units tile contiguously");
                expect_lo = unit.hi;
            }
            assert_eq!(expect_lo, total, "units cover the whole universe");
        }
    }

    #[test]
    fn plan_round_trips_with_unit_states() {
        let config = RunConfig::new(Backend::NonScan).with_seed(0xF1EE7);
        let mut plan = FleetPlan::new("p", vec!["a:1".into()], config, sources(), 2).unwrap();
        plan.units[0].state = UnitState::Submitted {
            node: "a:1".into(),
            job: 42,
        };
        plan.units[1].state = UnitState::Done;
        plan.units[2].state = UnitState::Failed {
            error: "engine exploded".into(),
        };
        let decoded = FleetPlan::decode(&plan.encode()).unwrap();
        assert_eq!(decoded, plan);
        assert_eq!(decoded.state_counts(), (1, 1, 1, 1));
        assert_eq!(decoded.tag(0), "fleet:p/unit-0");
    }

    #[test]
    fn decode_rejects_foreign_documents() {
        assert!(FleetPlan::decode("{}").is_err());
        assert!(FleetPlan::decode("{\"schema\":\"gdf-run\"}").is_err());
        assert!(FleetPlan::decode("{\"schema\":\"gdf-fleet\",\"version\":99}").is_err());
    }
}
