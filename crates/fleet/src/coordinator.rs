//! The coordinator: drives a [`FleetPlan`] over live `gdf-serve` nodes.
//!
//! One [`Coordinator::step`] is a full control round — probe,
//! reconcile, steal, assign, merge — and [`Coordinator::run`] just
//! repeats rounds until every circuit is merged. The separation is what
//! the kill-and-restart tests lean on: a coordinator can die between
//! any two rounds, and [`Coordinator::resume`] continues from the
//! persisted plan plus the nodes' own job state.
//!
//! Determinism: the merge path is [`gdf_core::shard::merge_artifact`],
//! which replays the engine's deterministic merge (credit passes + the
//! single credit-RNG stream) over the harvested shard outcomes. *Which*
//! node computed a shard, in what order, with how many steals or
//! duplicated submissions — none of it can reach the merged bytes,
//! because shard outcomes are pure per-fault generation results.

use crate::plan::{FleetPlan, UnitState};
use crate::FleetError;
use gdf_core::artifact::RunArtifact;
use gdf_core::json::Json;
use gdf_core::session::CampaignReport;
use gdf_core::shard::{merge_artifact, ShardArtifact};
use gdf_netlist::Circuit;
use gdf_obs::TraceCtx;
use gdf_serve::server::{
    submission_for_bench, submission_for_suite, submission_with_runtime, submission_with_shard,
};
use gdf_serve::{Client, ServeError};
use gdf_store::{CacheKey, Store};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Consecutive failed probes before a node counts as dead.
const PROBE_TOLERANCE: u32 = 2;
/// Job-status failures (`failed` state on the node) before a unit is
/// abandoned instead of resubmitted.
const UNIT_RETRIES: u32 = 3;
/// Consecutive all-nodes-dead rounds before [`Coordinator::run`] gives
/// up.
const MAX_DEAD_ROUNDS: u32 = 600;

/// One node's scrape, as [`Coordinator::probe`] sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHealth {
    /// Node address.
    pub addr: String,
    /// Whether the probe round reached it.
    pub alive: bool,
    /// `gdf_queue_depth` from `/metrics`, when parsable.
    pub queue_depth: Option<u64>,
    /// `gdf_jobs_running` from `/metrics`, when parsable.
    pub running: Option<u64>,
    /// `gdf_worker_utilization` from `/metrics`, when parsable.
    pub utilization: Option<f64>,
    /// `gdf_draining` from `/metrics`: the node took a `SIGTERM` and is
    /// winding down — assign it nothing, steal from it soon.
    pub draining: bool,
    /// `gdf_cache_hits_total` from `/metrics`, when the node exports it
    /// (pre-store servers don't).
    pub cache_hits: Option<u64>,
    /// `gdf_store_bytes` from `/metrics`, when the node exports it.
    pub store_bytes: Option<u64>,
}

/// Per-node accounting of a finished fleet campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeStats {
    /// Node address.
    pub addr: String,
    /// Work units harvested from this node.
    pub units: usize,
    /// Faults those units covered.
    pub faults: usize,
}

/// What [`Coordinator::run`] returns: the merged campaign (identical to
/// a local [`gdf_core::session::Campaign`] run of the same spec) plus
/// the fleet-level accounting the bench records.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The merged per-circuit reports and totals.
    pub campaign: CampaignReport,
    /// Per-node harvest counts.
    pub nodes: Vec<NodeStats>,
    /// Total work units in the plan.
    pub units: usize,
    /// Units reassigned away from dead or slow nodes.
    pub stolen: usize,
}

/// The fleet coordinator; see the module docs.
pub struct Coordinator {
    plan: FleetPlan,
    dir: PathBuf,
    circuits: Vec<Circuit>,
    clients: Vec<Client>,
    alive: Vec<bool>,
    draining: Vec<bool>,
    probe_failures: Vec<u32>,
    submitted_at: Vec<Option<Instant>>,
    unit_failures: Vec<u32>,
    node_units: Vec<usize>,
    node_faults: Vec<usize>,
    stolen: usize,
    /// The shard-level result cache under `<dir>/store`. `None` only if
    /// the store directory cannot be created — the fleet then runs
    /// uncached rather than not at all.
    store: Option<Store>,
    /// Units completed from the cache instead of a node.
    cached_units: usize,
    /// The campaign's trace root, derived from the plan's name + config
    /// digest — stable across coordinator restarts, so a resumed fleet
    /// keeps correlating under the same trace id. Every shard
    /// submission carries a per-unit child of this context in
    /// `X-Gdf-Trace`.
    trace: TraceCtx,
    warnings: Vec<String>,
    poll: Duration,
    steal_after: Duration,
    verbose: bool,
    started: Instant,
}

impl Coordinator {
    /// Starts a fresh fleet in `dir`: writes `fleet.json` and the shard
    /// directory. Fails if a plan already exists (resume instead — a
    /// half-finished fleet must not be silently restarted from zero).
    pub fn create(dir: impl Into<PathBuf>, plan: FleetPlan) -> Result<Coordinator, FleetError> {
        let dir = dir.into();
        let path = Self::plan_path(&dir);
        if path.exists() {
            return Err(FleetError::Plan(format!(
                "{} already exists; resume it or choose another directory",
                path.display()
            )));
        }
        std::fs::create_dir_all(dir.join("shards"))
            .map_err(|e| FleetError::Io(format!("{}: {e}", dir.display())))?;
        plan.save(&path)?;
        Self::build(dir, plan)
    }

    /// Reopens the fleet persisted in `dir` and reconciles from there.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<Coordinator, FleetError> {
        let dir = dir.into();
        let plan = FleetPlan::load(Self::plan_path(&dir))?;
        std::fs::create_dir_all(dir.join("shards"))
            .map_err(|e| FleetError::Io(format!("{}: {e}", dir.display())))?;
        Self::build(dir, plan)
    }

    fn build(dir: PathBuf, plan: FleetPlan) -> Result<Coordinator, FleetError> {
        let circuits = plan
            .circuits
            .iter()
            .map(|s| s.resolve().map_err(FleetError::Artifact))
            .collect::<Result<Vec<_>, _>>()?;
        let clients = plan
            .nodes
            .iter()
            .map(|addr| Client::new(addr.clone()).with_timeout(Duration::from_secs(30)))
            .collect();
        let nodes = plan.nodes.len();
        let units = plan.units.len();
        let mut warnings = Vec::new();
        let store = match Store::open(dir.join("store")) {
            Ok(store) => Some(store),
            Err(e) => {
                warnings.push(format!("shard cache unavailable: {e}"));
                None
            }
        };
        let trace = TraceCtx::root(&format!(
            "gdf-fleet:{}:{}",
            plan.name,
            gdf_core::digest::config_digest(&plan.config).hex()
        ));
        Ok(Coordinator {
            circuits,
            clients,
            alive: vec![true; nodes],
            draining: vec![false; nodes],
            probe_failures: vec![0; nodes],
            submitted_at: vec![None; units],
            unit_failures: vec![0; units],
            node_units: vec![0; nodes],
            node_faults: vec![0; nodes],
            stolen: 0,
            store,
            cached_units: 0,
            trace,
            warnings,
            poll: Duration::from_millis(300),
            steal_after: Duration::from_secs(60),
            verbose: false,
            started: Instant::now(),
            plan,
            dir,
        })
    }

    /// Replaces the round interval of [`Coordinator::run`].
    pub fn with_poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Replaces the patience before a unit on a live-but-slow node is
    /// duplicated onto an idle one.
    pub fn with_steal_after(mut self, patience: Duration) -> Self {
        self.steal_after = patience;
        self
    }

    /// Enables per-round progress lines on stderr.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Attaches a tenant bearer token to every node client — what a
    /// fleet of multi-tenant nodes (`gdf serve --tenants`) requires.
    /// Held in memory only, never persisted into `fleet.json`: plans
    /// are shareable operational documents, secrets are not. A node's
    /// quota `429` retries on the next round like any failed submit.
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        let token = token.into();
        self.clients = self
            .clients
            .drain(..)
            .map(|c| c.with_token(token.clone()))
            .collect();
        self
    }

    /// The plan as the coordinator currently holds it.
    pub fn plan(&self) -> &FleetPlan {
        &self.plan
    }

    /// The campaign's trace context (every shard submission carries a
    /// per-unit child of it).
    pub fn trace(&self) -> TraceCtx {
        self.trace
    }

    /// Where the plan lives inside a fleet directory.
    pub fn plan_path(dir: &Path) -> PathBuf {
        dir.join("fleet.json")
    }

    fn shard_path(&self, unit: usize) -> PathBuf {
        self.dir.join("shards").join(format!("unit-{unit}.json"))
    }

    /// Store name of unit `k`'s shard: `(circuit digest, config digest)`
    /// plus the fault range, so two campaigns over the same circuit and
    /// config share shards whatever node computed them.
    fn unit_cache_name(&self, k: usize) -> String {
        let unit = &self.plan.units[k];
        CacheKey::new(&self.plan.circuits[unit.circuit], &self.plan.config)
            .shard_name(unit.lo, unit.hi)
    }

    /// Best-effort publication of a harvested shard to the shard cache.
    /// Cache misses on a later campaign only cost recomputation, so a
    /// store failure is a warning, never a unit failure.
    fn publish_shard(&mut self, k: usize, text: &str) {
        let name = self.unit_cache_name(k);
        if let Some(store) = &self.store {
            if let Err(e) = store.publish(&name, text) {
                self.warnings
                    .push(format!("shard cache publish failed: {e}"));
            }
        }
    }

    /// Looks unit `k` up in the shard cache. A hit must decode against
    /// the unit's circuit, cover exactly `[lo‥hi)` and be complete —
    /// anything else is treated as a miss, never an error.
    fn cached_shard(&self, k: usize) -> Option<String> {
        let store = self.store.as_ref()?;
        let unit = &self.plan.units[k];
        let text = store.get_named(&self.unit_cache_name(k)).ok().flatten()?;
        let shard = ShardArtifact::decode(&text, &self.circuits[unit.circuit]).ok()?;
        (shard.range() == (unit.lo, unit.hi)
            && shard.is_complete()
            && *shard.config() == self.plan.config)
            .then_some(text)
    }

    /// Where circuit `index`'s merged artifact lands — the same
    /// `<name>.run.json` layout a local campaign's `--dir` uses, so
    /// `gdf report --diff` compares fleet and local runs directly.
    pub fn artifact_path(&self, index: usize) -> PathBuf {
        self.dir
            .join(format!("{}.run.json", self.circuits[index].name()))
    }

    fn persist(&mut self) {
        if let Err(e) = self.plan.save(Self::plan_path(&self.dir)) {
            self.warnings.push(format!("plan save failed: {e}"));
        }
    }

    fn note(&mut self, line: String) {
        if self.verbose {
            eprintln!("[fleet] {line}");
        }
    }

    // -----------------------------------------------------------------
    // Probing
    // -----------------------------------------------------------------

    /// Scrapes every node's `/metrics` (via the client's deterministic
    /// retry/backoff), falling back to `/healthz` for peers that answer
    /// but do not expose metrics. Updates the internal alive set: a
    /// node is dead after `PROBE_TOLERANCE` consecutive failures and
    /// resurrects on the first successful probe.
    pub fn probe(&mut self) -> Vec<NodeHealth> {
        let mut out = Vec::with_capacity(self.plan.nodes.len());
        for (i, addr) in self.plan.nodes.clone().into_iter().enumerate() {
            let probe_client = self.clients[i]
                .clone()
                .with_retries(1)
                .with_timeout(Duration::from_secs(5));
            let metrics = probe_client.metrics();
            let reachable = metrics.is_ok() || probe_client.healthz().is_ok();
            if reachable {
                self.probe_failures[i] = 0;
                if !self.alive[i] {
                    self.note(format!("node {addr} is back"));
                }
                self.alive[i] = true;
            } else {
                self.probe_failures[i] = self.probe_failures[i].saturating_add(1);
                if self.probe_failures[i] >= PROBE_TOLERANCE && self.alive[i] {
                    self.alive[i] = false;
                    self.note(format!("node {addr} is unreachable"));
                }
            }
            let text = metrics.ok();
            let sample = |name: &str| -> Option<f64> {
                text.as_deref()?.lines().find_map(|line| {
                    let rest = line.strip_prefix(name)?;
                    rest.strip_prefix(' ')?.trim().parse().ok()
                })
            };
            let draining = sample("gdf_draining").map(|v| v > 0.5).unwrap_or(false);
            if draining && !self.draining[i] {
                self.note(format!("node {addr} is draining"));
            }
            self.draining[i] = draining;
            // The health row reports *this* probe's reachability; the
            // internal alive set stays debounced (PROBE_TOLERANCE) so
            // one dropped probe does not trigger a steal.
            out.push(NodeHealth {
                addr,
                alive: reachable,
                queue_depth: sample("gdf_queue_depth").map(|v| v as u64),
                running: sample("gdf_jobs_running").map(|v| v as u64),
                utilization: sample("gdf_worker_utilization"),
                draining,
                cache_hits: sample("gdf_cache_hits_total").map(|v| v as u64),
                store_bytes: sample("gdf_store_bytes").map(|v| v as u64),
            });
        }
        out
    }

    // -----------------------------------------------------------------
    // The control round
    // -----------------------------------------------------------------

    /// One full control round. Returns `true` once every unit is done
    /// *and* every circuit's merged artifact is on disk.
    pub fn step(&mut self) -> Result<bool, FleetError> {
        self.probe();
        self.reconcile();
        self.assign();
        self.merge_ready()?;
        Ok(self.plan.is_complete() && self.all_merged())
    }

    /// Repeats [`Coordinator::step`] every poll interval until the
    /// fleet converges, then reports. Errors out if every node stays
    /// dead for `MAX_DEAD_ROUNDS` consecutive rounds or a unit
    /// exhausts its retries with no node able to run it.
    pub fn run(&mut self) -> Result<FleetReport, FleetError> {
        let mut dead_rounds = 0u32;
        loop {
            let complete = self.step()?;
            if complete {
                return self.report();
            }
            if self.alive.iter().any(|a| *a) {
                dead_rounds = 0;
            } else {
                dead_rounds += 1;
                if dead_rounds >= MAX_DEAD_ROUNDS {
                    return Err(FleetError::Plan(format!(
                        "no node answered for {MAX_DEAD_ROUNDS} consecutive rounds"
                    )));
                }
            }
            if self
                .plan
                .units
                .iter()
                .any(|u| matches!(u.state, UnitState::Failed { .. }))
            {
                let failed: Vec<String> = self
                    .plan
                    .units
                    .iter()
                    .enumerate()
                    .filter(|(_, u)| matches!(u.state, UnitState::Failed { .. }))
                    .map(|(k, _)| self.plan.tag(k))
                    .collect();
                return Err(FleetError::Plan(format!(
                    "units failed beyond retry: {}",
                    failed.join(", ")
                )));
            }
            std::thread::sleep(self.poll);
        }
    }

    /// Queries every `submitted` unit's job on its node: harvests done
    /// shards, resubmits vanished/failed/cancelled jobs, steals from
    /// dead nodes, and duplicates units stuck on slow nodes onto idle
    /// ones.
    fn reconcile(&mut self) {
        for k in 0..self.plan.units.len() {
            let UnitState::Submitted { node, job } = self.plan.units[k].state.clone() else {
                continue;
            };
            let Some(n) = self.plan.nodes.iter().position(|a| *a == node) else {
                // Node left the plan (hand-edited fleet.json): retarget.
                self.make_pending(k, "its node is no longer in the plan");
                continue;
            };
            if !self.alive[n] {
                self.make_pending(k, "its node is unreachable");
                continue;
            }
            match self.clients[n].status(job) {
                Ok(status) => match status.get("state").and_then(Json::as_str).unwrap_or("") {
                    "done" => self.harvest(k, n, job),
                    "failed" => {
                        let error = status
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string();
                        self.unit_failures[k] += 1;
                        if self.unit_failures[k] >= UNIT_RETRIES {
                            let tag = self.plan.tag(k);
                            self.warnings
                                .push(format!("{tag} failed {UNIT_RETRIES}×: {error}"));
                            self.plan.units[k].state = UnitState::Failed { error };
                        } else {
                            self.make_pending(k, &format!("its job failed: {error}"));
                        }
                        self.persist();
                    }
                    "cancelled" => self.make_pending(k, "its job was cancelled"),
                    // Queued or running: steal onto an idle node if the
                    // unit has outlived the patience. The old job keeps
                    // running (best-effort cancel) — duplicates are
                    // safe, generation is pure. A draining node gets
                    // one poll interval of patience, not the full steal
                    // window: it will finish nothing new, and its drain
                    // checkpoint makes the re-run a resume elsewhere.
                    _ => {
                        let patience = if self.draining[n] {
                            self.poll
                        } else {
                            self.steal_after
                        };
                        let stuck = self.submitted_at[k].is_some_and(|t| t.elapsed() >= patience);
                        if stuck {
                            if self.draining[n] {
                                let _ = self.clients[n].delete(job);
                                self.make_pending(k, "its node is draining");
                            } else if let Some(idle) = self.idle_node(n) {
                                let _ = self.clients[n].delete(job);
                                self.stolen += 1;
                                let tag = self.plan.tag(k);
                                let to = self.plan.nodes[idle].clone();
                                self.note(format!("stealing {tag} from slow {node} to {to}"));
                                self.plan.units[k].state = UnitState::Pending;
                                self.submitted_at[k] = None;
                                self.persist();
                            }
                        }
                    }
                },
                Err(ServeError::Api { status: 404, .. }) => {
                    self.make_pending(k, "its job vanished from the node")
                }
                // Transient transport trouble: the probe decides
                // whether the node is dead; leave the unit alone.
                Err(_) => {}
            }
        }
    }

    fn make_pending(&mut self, k: usize, why: &str) {
        let tag = self.plan.tag(k);
        self.note(format!("requeueing {tag}: {why}"));
        self.stolen += 1;
        self.plan.units[k].state = UnitState::Pending;
        self.submitted_at[k] = None;
        self.persist();
    }

    /// A live, non-draining node with no in-flight unit, other than
    /// `not`, for slow steals. Deterministic: first such node in plan
    /// order.
    fn idle_node(&self, not: usize) -> Option<usize> {
        (0..self.plan.nodes.len())
            .find(|&n| n != not && self.alive[n] && !self.draining[n] && self.in_flight(n) == 0)
    }

    fn in_flight(&self, n: usize) -> usize {
        let addr = &self.plan.nodes[n];
        self.plan
            .units
            .iter()
            .filter(|u| matches!(&u.state, UnitState::Submitted { node, .. } if node == addr))
            .count()
    }

    /// Downloads and validates unit `k`'s shard from node `n`, stores
    /// it under `shards/`, and marks the unit done.
    fn harvest(&mut self, k: usize, n: usize, job: u64) {
        let circuit = self.plan.units[k].circuit;
        let tag = self.plan.tag(k);
        let result = self.clients[n]
            .artifact(job)
            .map_err(FleetError::Serve)
            .and_then(|text| {
                let shard = ShardArtifact::decode(&text, &self.circuits[circuit])?;
                if shard.range() != (self.plan.units[k].lo, self.plan.units[k].hi)
                    || !shard.is_complete()
                {
                    return Err(FleetError::Plan(format!(
                        "{tag}: node returned shard [{}‥{}), {} decided",
                        shard.range().0,
                        shard.range().1,
                        shard.decided()
                    )));
                }
                gdf_serve::job::write_atomic(&self.shard_path(k), &text)?;
                Ok(text)
            });
        match result {
            Ok(text) => {
                self.node_units[n] += 1;
                self.node_faults[n] += self.plan.units[k].len();
                self.publish_shard(k, &text);
                self.note(format!("harvested {tag} from {}", self.plan.nodes[n]));
                self.plan.units[k].state = UnitState::Done;
                self.submitted_at[k] = None;
                self.persist();
            }
            Err(e) => {
                // A bad or unreadable shard is a unit failure, not a
                // coordinator crash: requeue and let retries decide.
                self.unit_failures[k] += 1;
                self.make_pending(k, &format!("harvest failed: {e}"));
            }
        }
    }

    /// Submits every pending unit to the least-loaded live node.
    /// Empty units (tiny universes split wider than their fault count)
    /// complete locally — an empty shard needs no node.
    fn assign(&mut self) {
        for k in 0..self.plan.units.len() {
            if self.plan.units[k].state != UnitState::Pending {
                continue;
            }
            let unit = self.plan.units[k].clone();
            if unit.is_empty() {
                let circuit = &self.circuits[unit.circuit];
                let shard = ShardArtifact::new(
                    circuit,
                    Some(self.plan.circuits[unit.circuit].clone()),
                    self.plan.config,
                    unit.lo,
                    unit.hi,
                );
                match shard.and_then(|s| {
                    gdf_serve::job::write_atomic(&self.shard_path(k), &s.encode(circuit))
                }) {
                    Ok(()) => {
                        self.plan.units[k].state = UnitState::Done;
                        self.persist();
                    }
                    Err(e) => self.warnings.push(format!("empty unit {k}: {e}")),
                }
                continue;
            }
            // Shard cache: an identical unit (same circuit digest, same
            // config digest, same range) computed by any earlier
            // campaign completes without touching a node.
            if let Some(text) = self.cached_shard(k) {
                match gdf_serve::job::write_atomic(&self.shard_path(k), &text) {
                    Ok(()) => {
                        let tag = self.plan.tag(k);
                        self.note(format!("{tag} served from shard cache"));
                        self.cached_units += 1;
                        self.plan.units[k].state = UnitState::Done;
                        self.persist();
                        continue;
                    }
                    Err(e) => self.warnings.push(format!("shard cache restore: {e}")),
                }
            }
            // Least in-flight live node (draining nodes finish nothing
            // new); ties resolve in plan order, so assignment is
            // deterministic given the same alive/draining sets.
            let Some(n) = (0..self.plan.nodes.len())
                .filter(|&n| self.alive[n] && !self.draining[n])
                .min_by_key(|&n| (self.in_flight(n), n))
            else {
                return; // nobody alive; next round retries
            };
            let source = &self.plan.circuits[unit.circuit];
            let body = match &source.reference {
                Some(reference) => submission_for_suite(reference, &self.plan.config),
                None => submission_for_bench(&source.name, &source.bench, &self.plan.config),
            };
            let body = submission_with_shard(
                submission_with_runtime(
                    body,
                    self.plan.parallelism,
                    Some(self.plan.checkpoint_every),
                ),
                unit.lo,
                unit.hi,
                &self.plan.tag(k),
            );
            // Parent the shard job under the campaign trace: every node
            // derives its job trace from this context, so one campaign
            // correlates across the whole fleet.
            let unit_trace = self.trace.child(&self.plan.tag(k));
            match self.clients[n].submit_traced(&body, Some(&unit_trace)) {
                Ok(job) => {
                    let tag = self.plan.tag(k);
                    let addr = self.plan.nodes[n].clone();
                    self.note(format!("submitted {tag} to {addr} as job {job}"));
                    self.plan.units[k].state = UnitState::Submitted { node: addr, job };
                    self.submitted_at[k] = Some(Instant::now());
                    self.persist();
                }
                Err(e) => {
                    // Marked dead next probe round if it stays down; a
                    // full queue just waits for the next round.
                    self.note(format!("submit to {} failed: {e}", self.plan.nodes[n]));
                }
            }
        }
    }

    fn all_merged(&self) -> bool {
        (0..self.circuits.len()).all(|i| self.artifact_path(i).exists())
    }

    /// Merges every circuit whose units are all done and whose merged
    /// artifact is not on disk yet. The merge is pure replay —
    /// rerunning it (after a coordinator restart, say) rewrites the
    /// identical bytes.
    ///
    /// Robustness: a shard file that fails to load or validate (torn
    /// write, hand-truncation, a crash between rename and fsync) is
    /// *quarantined* — renamed to `<file>.corrupt` — and its unit goes
    /// back to `Pending` for recomputation; the merge retries on a later
    /// round. The merged artifact itself is written and then read back
    /// raw: if the bytes on disk differ from the encoding (a torn write
    /// slipped past the rename), the write retries.
    fn merge_ready(&mut self) -> Result<(), FleetError> {
        for index in 0..self.circuits.len() {
            let units: Vec<usize> = self.plan.units_of(index).collect();
            let ready = units
                .iter()
                .all(|&k| self.plan.units[k].state == UnitState::Done);
            if !ready || self.artifact_path(index).exists() {
                continue;
            }
            let loaded: Vec<Result<ShardArtifact, _>> = units
                .iter()
                .map(|&k| ShardArtifact::load(self.shard_path(k), &self.circuits[index]))
                .collect();
            let mut shards = Vec::with_capacity(units.len());
            let mut quarantined = false;
            for (&k, result) in units.iter().zip(loaded) {
                let expected = (self.plan.units[k].lo, self.plan.units[k].hi);
                match result {
                    Ok(shard) if shard.range() == expected && shard.is_complete() => {
                        shards.push(shard)
                    }
                    Ok(shard) => {
                        self.quarantine_shard(
                            k,
                            &format!(
                                "shard holds [{}‥{}), {} decided",
                                shard.range().0,
                                shard.range().1,
                                shard.decided()
                            ),
                        );
                        quarantined = true;
                    }
                    Err(e) => {
                        self.quarantine_shard(k, &e.to_string());
                        quarantined = true;
                    }
                }
            }
            if quarantined {
                // Recompute the quarantined units before merging.
                continue;
            }
            let refs: Vec<&ShardArtifact> = shards.iter().collect();
            let merged = merge_artifact(
                &self.circuits[index],
                Some(self.plan.circuits[index].clone()),
                self.plan.config,
                &refs,
            )?;
            self.save_verified(&self.artifact_path(index), &merged.encode())?;
            self.note(format!(
                "merged {} from {} shards",
                self.circuits[index].name(),
                refs.len()
            ));
        }
        Ok(())
    }

    /// Moves unit `k`'s shard file aside (`<file>.corrupt`) and requeues
    /// the unit — corrupt harvest state is recomputed, never trusted and
    /// never fatal.
    fn quarantine_shard(&mut self, k: usize, why: &str) {
        let path = self.shard_path(k);
        let aside = path.with_extension("json.corrupt");
        if std::fs::rename(&path, &aside).is_err() {
            // Rename can fail if the file vanished; removing is enough —
            // the point is that the next round does not reload it.
            let _ = std::fs::remove_file(&path);
        }
        let tag = self.plan.tag(k);
        self.warnings
            .push(format!("{tag}: quarantined corrupt shard: {why}"));
        self.make_pending(k, &format!("its shard was corrupt ({why})"));
    }

    /// Writes `text` to `path` and reads it back raw (straight
    /// `std::fs`, bypassing any installed I/O facade) until the bytes on
    /// disk match. Bounded retries: persistent disk trouble surfaces as
    /// a friendly [`FleetError::Io`], not an infinite loop.
    fn save_verified(&self, path: &Path, text: &str) -> Result<(), FleetError> {
        let mut last = String::from("never attempted");
        for _ in 0..8 {
            if let Err(e) = gdf_serve::job::write_atomic(path, text) {
                last = e.to_string();
                continue;
            }
            match std::fs::read_to_string(path) {
                Ok(on_disk) if on_disk == text => return Ok(()),
                Ok(_) => last = "bytes on disk differ from the encoding".into(),
                Err(e) => last = e.to_string(),
            }
        }
        Err(FleetError::Io(format!(
            "{}: could not persist a verified copy: {last}",
            path.display()
        )))
    }

    /// Loads a merged artifact with bounded retries. The file went
    /// through [`Coordinator::save_verified`], so a failing load is a
    /// transient read fault far more often than real on-disk damage;
    /// only a persistent failure surfaces (as a typed error).
    fn load_persistent(path: &Path) -> Result<RunArtifact, FleetError> {
        let mut last = None;
        for _ in 0..8 {
            match RunArtifact::load(path) {
                Ok(artifact) => return Ok(artifact),
                Err(e) => last = Some(e),
            }
        }
        Err(FleetError::Artifact(
            last.expect("at least one load attempt"),
        ))
    }

    // -----------------------------------------------------------------
    // Reporting
    // -----------------------------------------------------------------

    /// Builds the final [`FleetReport`] from the merged artifacts.
    pub fn report(&self) -> Result<FleetReport, FleetError> {
        let mut circuits = Vec::with_capacity(self.circuits.len());
        for index in 0..self.circuits.len() {
            let artifact = Self::load_persistent(&self.artifact_path(index))?;
            let run = artifact.to_run(&self.circuits[index])?;
            circuits.push(run.report);
        }
        let campaign = CampaignReport {
            circuits,
            resumed: 0,
            stopped: false,
            warnings: self.warnings.clone(),
            elapsed: self.started.elapsed(),
        };
        Ok(FleetReport {
            campaign,
            nodes: self
                .plan
                .nodes
                .iter()
                .enumerate()
                .map(|(n, addr)| NodeStats {
                    addr: addr.clone(),
                    units: self.node_units[n],
                    faults: self.node_faults[n],
                })
                .collect(),
            units: self.plan.units.len(),
            stolen: self.stolen,
        })
    }

    /// Renders a `gdf fleet status` table: per-node health, per-unit
    /// state. Probes the nodes once.
    pub fn render_status(&mut self) -> String {
        use std::fmt::Write;
        let health = self.probe();
        let mut out = String::new();
        let (pending, submitted, done, failed) = self.plan.state_counts();
        let _ = writeln!(
            out,
            "fleet `{}`: {} circuits, {} units ({pending} pending, \
             {submitted} submitted, {done} done, {failed} failed)",
            self.plan.name,
            self.plan.circuits.len(),
            self.plan.units.len(),
        );
        for h in &health {
            let _ = writeln!(
                out,
                "  node {:<24} {}{}",
                h.addr,
                if h.alive { "up" } else { "DOWN" },
                match (h.queue_depth, h.running, h.utilization) {
                    (Some(q), Some(r), Some(u)) => {
                        let mut line = format!("  queue={q} running={r} utilization={u:.2}");
                        if let Some(hits) = h.cache_hits {
                            let _ = write!(line, " cache_hits={hits}");
                        }
                        if let Some(bytes) = h.store_bytes {
                            let _ = write!(line, " store_bytes={bytes}");
                        }
                        line
                    }
                    _ => String::new(),
                }
            );
        }
        if self.cached_units > 0 {
            let _ = writeln!(out, "  shard cache: {} unit(s) reused", self.cached_units);
        }
        for (k, unit) in self.plan.units.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:<24} {:<12} [{}‥{}) {}",
                self.plan.tag(k),
                self.circuits[unit.circuit].name(),
                unit.lo,
                unit.hi,
                match &unit.state {
                    UnitState::Pending => "pending".to_string(),
                    UnitState::Submitted { node, job } => format!("on {node} as job {job}"),
                    UnitState::Done => "done".to_string(),
                    UnitState::Failed { error } => format!("FAILED: {error}"),
                }
            );
        }
        out
    }
}
