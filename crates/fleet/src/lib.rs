//! # gdf-fleet — the distributed campaign coordinator
//!
//! Shards one multi-circuit ATPG campaign across N `gdf-serve` nodes
//! and merges the partial results back into artifacts **byte-identical
//! in canonical encoding to a single-node run** of the same
//! configuration and seed.
//!
//! The split is deterministic twice over: by circuit, and by
//! fault-universe range — [`gdf_netlist::FaultSet::split`] partitions
//! each circuit's universe through the O(1) enumeration cursor, and the
//! resulting `[lo, hi)` unit boundaries are recorded in the persistent
//! plan ([`plan::FleetPlan`], `fleet.json`, schema-versioned like every
//! other artifact). Each unit becomes a *shard job* on some node (a
//! `gdf_serve` job tagged with [`gdf_serve::ShardSpec`] provenance)
//! producing a [`gdf_core::ShardArtifact`]: pure per-fault generation
//! outcomes, **zero credit-RNG draws** — the whole RNG stream and every
//! credit pass replay on the coordinator during
//! [`gdf_core::shard::merge_artifact`], which is what makes
//! `fleet(N) ≡ fleet(1) ≡ local` hold bit for bit.
//!
//! The [`coordinator::Coordinator`] drives the plan with the fault
//! tolerance the job server already guarantees underneath:
//!
//! * **health probing** — each round scrapes `GET /metrics` (falling
//!   back to `/healthz`) through the [`gdf_serve::Client`]'s
//!   deterministic retry/backoff; a node is dead after consecutive
//!   probe failures and is re-probed every round, so a restarted node
//!   rejoins by itself;
//! * **work stealing** — units on dead nodes are resubmitted elsewhere
//!   immediately; units on *slow* nodes are duplicated onto an idle
//!   node after a configurable patience. Duplicates are harmless:
//!   generation is pure, and the merge accepts overlapping shards;
//! * **resumability** — every unit-state transition persists
//!   `fleet.json`. Kill the coordinator, restart it, and
//!   [`coordinator::Coordinator::resume`] reconciles the plan against
//!   each node's actual job state (done jobs are harvested, vanished
//!   jobs resubmitted) and continues to the same bytes.

pub mod coordinator;
pub mod plan;

pub use coordinator::{Coordinator, FleetReport, NodeHealth, NodeStats};
pub use plan::{FleetPlan, UnitState, WorkUnit, FLEET_VERSION, FLEET_VERSION_MIN};

use gdf_core::artifact::ArtifactError;
use gdf_serve::ServeError;
use std::fmt;

/// Errors of the fleet layer.
#[derive(Debug)]
pub enum FleetError {
    /// Local I/O (plan directory, shard files).
    Io(String),
    /// Artifact/shard codec trouble.
    Artifact(ArtifactError),
    /// A node conversation failed beyond the client's retry budget.
    Serve(ServeError),
    /// The plan itself is unusable (bad schema, no live nodes, …).
    Plan(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(m) => write!(f, "{m}"),
            FleetError::Artifact(e) => write!(f, "{e}"),
            FleetError::Serve(e) => write!(f, "{e}"),
            FleetError::Plan(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ArtifactError> for FleetError {
    fn from(e: ArtifactError) -> Self {
        FleetError::Artifact(e)
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}
