//! The extended FOGBUSTER driver (Figure 4 of the paper).
//!
//! For every undetected fault the driver runs:
//!
//! ```text
//! select fault → local test generation (TDgen)
//!   ├─ effect at PO ──────────────┐
//!   └─ effect at PPO → forward propagation (SEMILET)
//!          │  (fail: propagation justification → re-enter TDgen;
//!          │         or ban this PPO and re-enter TDgen)
//!          ▼
//!      initialization (synchronizing sequence, SEMILET)
//!          ▼
//!      test found → three-phase fault simulation → drop detected faults
//! ```
//!
//! Inter-phase backtracking is realized by re-entering the local generator
//! with additional constraints: a failed observation flip-flop is *banned*
//! (its PPO may no longer carry the effect), and a failed propagation may
//! first trigger *propagation justification* — a re-entry that forces the
//! unjustifiable (`Xf`) PPOs to steady, specifiable values, exactly the
//! fast-clock-frame re-entry the paper describes.
//!
//! Classification follows the paper's accounting: `untestable` is reported
//! when the (bounded) search space is exhausted without hitting a
//! backtrack limit anywhere; hitting any limit yields `aborted`.

use crate::pattern::TestSequence;
use crate::report::{CircuitReport, Table3Row};
use gdf_algebra::delay::DelaySet;
use gdf_algebra::logic3::Logic3;
use gdf_algebra::static5::{StaticSet, StaticValue};
use gdf_netlist::{Circuit, DelayFault, FaultUniverse, NodeId};
use gdf_semilet::justify::{synchronize, SyncLimits, SyncOutcome};
use gdf_semilet::propagate::{propagate_to_po, PropagateLimits, PropagateOutcome};
use gdf_sim::{detected_delay_faults, two_frame_values, Fausim};
use gdf_tdgen::{FaultModel, LocalObservation, LocalTest, PpoValue, TdGen, TdGenConfig, TdGenOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Configuration of the combined system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayAtpgConfig {
    /// Backtrack limit of the local (TDgen) search — the paper uses 100.
    pub local_backtrack_limit: u32,
    /// Backtrack limit of each sequential (SEMILET) frame — paper: 100.
    pub sequential_backtrack_limit: u32,
    /// Maximum slow-clock propagation frames.
    pub max_propagation_frames: usize,
    /// Maximum synchronizing-sequence length.
    pub max_sync_frames: usize,
    /// Robust (paper default) or non-robust fault model.
    pub model: FaultModel,
    /// Which fault universe to target.
    pub universe: FaultUniverse,
    /// Seed for the random X-fill before fault simulation (paper §5:
    /// "X-values left by the test generation are set at random").
    pub xfill_seed: u64,
    /// How many alternative observation targets the inter-phase
    /// backtracking may try per fault.
    pub max_observation_retries: usize,
}

impl Default for DelayAtpgConfig {
    fn default() -> Self {
        DelayAtpgConfig {
            local_backtrack_limit: 100,
            sequential_backtrack_limit: 100,
            max_propagation_frames: 32,
            max_sync_frames: 32,
            model: FaultModel::Robust,
            universe: FaultUniverse::default(),
            xfill_seed: 0x1995_0308,
            max_observation_retries: 4,
        }
    }
}

/// Final classification of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClassification {
    /// A complete test sequence detects it (explicitly generated or
    /// credited by fault simulation).
    Tested,
    /// Proven untestable within the documented search bounds.
    Untestable,
    /// Abandoned at a backtrack limit (or retry budget).
    Aborted,
}

/// Per-fault result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault.
    pub fault: DelayFault,
    /// Its classification.
    pub classification: FaultClassification,
    /// `true` if the fault was credited by fault simulation rather than
    /// explicitly targeted.
    pub by_simulation: bool,
    /// Index into [`AtpgRun::sequences`] of the detecting sequence.
    pub sequence_index: Option<usize>,
}

/// The outcome of a full ATPG run on one circuit.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// One record per fault, in fault-list order.
    pub records: Vec<FaultRecord>,
    /// Every emitted test sequence.
    pub sequences: Vec<TestSequence>,
    /// The aggregate report (one Table 3 row).
    pub report: CircuitReport,
}

/// The combined TDgen + SEMILET delay-fault ATPG.
///
/// # Example
///
/// ```
/// use gdf_core::{DelayAtpg, FaultClassification};
/// use gdf_netlist::suite;
///
/// let c = suite::s27();
/// let run = DelayAtpg::new(&c).run();
/// let tested = run
///     .records
///     .iter()
///     .filter(|r| r.classification == FaultClassification::Tested)
///     .count();
/// assert!(tested > 0);
/// ```
#[derive(Debug)]
pub struct DelayAtpg<'c> {
    circuit: &'c Circuit,
    config: DelayAtpgConfig,
}

/// Everything fault simulation needs about one emitted test.
#[derive(Debug, Clone)]
struct TestMeta {
    /// PPO nets whose steady value the propagation relies on.
    relied_ppos: Vec<NodeId>,
    /// Target fault (for the sanity check).
    fault: DelayFault,
}

enum GenOutcome {
    Test(Box<(TestSequence, TestMeta)>),
    Untestable,
    Aborted,
}

impl<'c> DelayAtpg<'c> {
    /// Creates a driver with the paper's default limits.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_config(circuit, DelayAtpgConfig::default())
    }

    /// Creates a driver with an explicit configuration.
    pub fn with_config(circuit: &'c Circuit, config: DelayAtpgConfig) -> Self {
        DelayAtpg { circuit, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DelayAtpgConfig {
        &self.config
    }

    /// Runs the complete Figure 4 loop over the whole fault list.
    pub fn run(&self) -> AtpgRun {
        let start = Instant::now();
        let faults = self.config.universe.delay_faults(self.circuit);
        let mut records: Vec<Option<FaultRecord>> = vec![None; faults.len()];
        let mut sequences: Vec<TestSequence> = Vec::new();
        let mut rng = StdRng::seed_from_u64(self.config.xfill_seed);
        let mut dropped = 0u32;

        for idx in 0..faults.len() {
            if records[idx].is_some() {
                continue;
            }
            let fault = faults[idx];
            match self.generate_one(fault) {
                GenOutcome::Test(boxed) => {
                    let (sequence, meta) = *boxed;
                    let seq_index = sequences.len();
                    records[idx] = Some(FaultRecord {
                        fault,
                        classification: FaultClassification::Tested,
                        by_simulation: false,
                        sequence_index: Some(seq_index),
                    });
                    // Three-phase fault simulation drops extra faults.
                    let hits =
                        self.simulate_and_drop(&sequence, &meta, &faults, &records, &mut rng);
                    for hit in hits {
                        if records[hit].is_none() {
                            dropped += 1;
                            records[hit] = Some(FaultRecord {
                                fault: faults[hit],
                                classification: FaultClassification::Tested,
                                by_simulation: true,
                                sequence_index: Some(seq_index),
                            });
                        }
                    }
                    sequences.push(sequence);
                }
                GenOutcome::Untestable => {
                    records[idx] = Some(FaultRecord {
                        fault,
                        classification: FaultClassification::Untestable,
                        by_simulation: false,
                        sequence_index: None,
                    });
                }
                GenOutcome::Aborted => {
                    records[idx] = Some(FaultRecord {
                        fault,
                        classification: FaultClassification::Aborted,
                        by_simulation: false,
                        sequence_index: None,
                    });
                }
            }
        }

        let records: Vec<FaultRecord> = records.into_iter().map(|r| r.expect("decided")).collect();
        let tested = records
            .iter()
            .filter(|r| r.classification == FaultClassification::Tested)
            .count() as u32;
        let untestable = records
            .iter()
            .filter(|r| r.classification == FaultClassification::Untestable)
            .count() as u32;
        let aborted = records
            .iter()
            .filter(|r| r.classification == FaultClassification::Aborted)
            .count() as u32;
        let patterns = sequences.iter().map(|s| s.len() as u32).sum();
        let report = CircuitReport {
            row: Table3Row {
                circuit: self.circuit.name().to_string(),
                tested,
                untestable,
                aborted,
                patterns,
                elapsed: start.elapsed(),
            },
            dropped_by_simulation: dropped,
            sequences: sequences.len() as u32,
        };
        AtpgRun {
            records,
            sequences,
            report,
        }
    }

    /// Figure 4 for a single fault.
    fn generate_one(&self, fault: DelayFault) -> GenOutcome {
        let gen = TdGen::with_config(
            self.circuit,
            TdGenConfig {
                backtrack_limit: self.config.local_backtrack_limit,
                model: self.config.model,
            },
        );
        let mut banned: Vec<usize> = Vec::new();
        let mut pj: Option<(usize, Vec<(NodeId, DelaySet)>)> = None;
        let mut any_aborted = false;

        for _attempt in 0..=self.config.max_observation_retries + 1 {
            let mut constraints: Vec<(NodeId, DelaySet)> = banned
                .iter()
                .map(|&i| (self.ppo_net(i), DelaySet::CLEAN))
                .collect();
            if let Some((_, ref extra)) = pj {
                constraints.extend(extra.iter().copied());
            }
            match gen.generate_with_constraints(fault, &constraints) {
                TdGenOutcome::Aborted => return GenOutcome::Aborted,
                TdGenOutcome::Untestable => {
                    if let Some((pj_dff, _)) = pj.take() {
                        // Propagation justification failed: fall back to
                        // banning the observation target it was rescuing.
                        banned.push(pj_dff);
                        continue;
                    }
                    if banned.is_empty() {
                        return GenOutcome::Untestable; // genuinely untestable locally
                    }
                    // All observation alternatives exhausted.
                    return if any_aborted {
                        GenOutcome::Aborted
                    } else {
                        GenOutcome::Untestable
                    };
                }
                TdGenOutcome::Test(t) => match t.observation {
                    LocalObservation::AtPo(_) => {
                        match self.initialize(&t) {
                            Ok(init) => {
                                return GenOutcome::Test(Box::new(self.assemble(
                                    fault,
                                    &t,
                                    init,
                                    Vec::new(),
                                    Vec::new(),
                                )))
                            }
                            Err(true) => return GenOutcome::Aborted,
                            Err(false) => {
                                // The required state of this local test is
                                // unsynchronizable; there is no clean handle
                                // to enumerate alternative PO tests.
                                return if any_aborted {
                                    GenOutcome::Aborted
                                } else {
                                    GenOutcome::Untestable
                                };
                            }
                        }
                    }
                    LocalObservation::AtPpo { dff, .. } => {
                        let start = self.start_state(&t);
                        let limits = PropagateLimits {
                            backtrack_limit: self.config.sequential_backtrack_limit,
                            max_frames: self.config.max_propagation_frames,
                        };
                        match propagate_to_po(self.circuit, &start, limits) {
                            PropagateOutcome::Propagated(p) => match self.initialize(&t) {
                                Ok(init) => {
                                    let relied =
                                        p.relied_dffs.iter().map(|&i| self.ppo_net(i)).collect();
                                    return GenOutcome::Test(Box::new(self.assemble(
                                        fault, &t, init, p.vectors, relied,
                                    )));
                                }
                                Err(true) => return GenOutcome::Aborted,
                                Err(false) => {
                                    pj = None;
                                    banned.push(dff);
                                    continue;
                                }
                            },
                            PropagateOutcome::Unpropagatable => {
                                let has_xf = t
                                    .ppo_values
                                    .iter()
                                    .any(|v| *v == PpoValue::UnjustifiableX);
                                if pj.is_none() && has_xf {
                                    // Propagation justification: force the
                                    // Xf PPOs steady so the next local test
                                    // hands SEMILET a fully known state.
                                    let extra: Vec<(NodeId, DelaySet)> = t
                                        .ppo_values
                                        .iter()
                                        .enumerate()
                                        .filter(|&(_, v)| *v == PpoValue::UnjustifiableX)
                                        .map(|(i, _)| {
                                            (self.ppo_net(i), DelaySet::STEADY_CLEAN)
                                        })
                                        .collect();
                                    pj = Some((dff, extra));
                                    continue;
                                }
                                pj = None;
                                banned.push(dff);
                                continue;
                            }
                            PropagateOutcome::Aborted => {
                                any_aborted = true;
                                pj = None;
                                banned.push(dff);
                                continue;
                            }
                        }
                    }
                },
            }
        }
        GenOutcome::Aborted // retry budget exhausted
    }

    /// The PPO net of flip-flop `i`.
    fn ppo_net(&self, i: usize) -> NodeId {
        self.circuit.ppo_of_dff(self.circuit.dffs()[i])
    }

    /// The 5-valued state handed to the propagation phase: the latched
    /// fault effect, the steady specifiable bits, and `Xf` elsewhere.
    fn start_state(&self, t: &LocalTest) -> Vec<StaticSet> {
        t.ppo_values
            .iter()
            .map(|v| match v {
                PpoValue::Steady0 => StaticSet::singleton(StaticValue::S0),
                PpoValue::Steady1 => StaticSet::singleton(StaticValue::S1),
                PpoValue::FaultEffect { good_one: true } => {
                    StaticSet::singleton(StaticValue::D)
                }
                PpoValue::FaultEffect { good_one: false } => {
                    StaticSet::singleton(StaticValue::Db)
                }
                PpoValue::UnjustifiableX => StaticSet::GOOD,
            })
            .collect()
    }

    /// Initialization phase. `Err(true)` = aborted, `Err(false)` =
    /// unsynchronizable.
    fn initialize(&self, t: &LocalTest) -> Result<Vec<Vec<Logic3>>, bool> {
        let targets: Vec<(usize, bool)> = t
            .required_state
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (i, b)))
            .collect();
        let limits = SyncLimits {
            backtrack_limit: self.config.sequential_backtrack_limit,
            max_frames: self.config.max_sync_frames,
        };
        match synchronize(self.circuit, &targets, limits) {
            SyncOutcome::Synchronized(seq) => Ok(seq),
            SyncOutcome::Aborted => Err(true),
            SyncOutcome::Unsynchronizable => Err(false),
        }
    }

    fn assemble(
        &self,
        fault: DelayFault,
        t: &LocalTest,
        init: Vec<Vec<Logic3>>,
        propagation: Vec<Vec<Logic3>>,
        relied_ppos: Vec<NodeId>,
    ) -> (TestSequence, TestMeta) {
        let sequence = TestSequence::new(init, t.v1.clone(), t.v2.clone(), propagation);
        let meta = TestMeta {
            relied_ppos,
            fault,
        };
        (sequence, meta)
    }

    /// The three-phase fault simulation of §5. Returns the indexes of
    /// additionally detected faults.
    fn simulate_and_drop(
        &self,
        sequence: &TestSequence,
        meta: &TestMeta,
        faults: &[DelayFault],
        records: &[Option<FaultRecord>],
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let candidates: Vec<usize> = (0..faults.len())
            .filter(|&i| records[i].is_none())
            .collect();
        let candidate_faults: Vec<DelayFault> = candidates.iter().map(|&i| faults[i]).collect();
        let hits =
            self.fault_simulate_sequence(sequence, &meta.relied_ppos, &candidate_faults, rng);
        let _ = meta.fault;
        hits.into_iter().map(|k| candidates[k]).collect()
    }

    /// Runs the three-phase fault simulation of one sequence against an
    /// arbitrary candidate fault list, returning the indexes (into
    /// `faults`) of the robustly detected ones. Public so that test-set
    /// compaction and fault grading can reuse the exact §5 semantics.
    pub fn fault_simulate_sequence(
        &self,
        sequence: &TestSequence,
        relied_ppos: &[NodeId],
        faults: &[DelayFault],
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let circuit = self.circuit;
        // Phase 1: good-machine simulation of the initialization frames
        // with random X-fill, yielding the state when V1 is applied.
        let filled = sequence.filled_with(|| rng.gen());
        let fast = sequence.fast_frame_index();
        let init_vectors: Vec<Vec<Logic3>> = filled[..fast.saturating_sub(1)]
            .iter()
            .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
            .collect();
        let sim = gdf_sim::GoodSimulator::new(circuit);
        let (_frames, state_l3) = sim.run(&sim.initial_state(), &init_vectors);
        let state1: Vec<bool> = state_l3
            .iter()
            .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
            .collect();
        let v1 = &filled[fast - 1];
        let v2 = &filled[fast];
        let waveform = two_frame_values(circuit, v1, v2, &state1);

        // Phase 2: which PPOs with non-steady values are observable
        // through the propagation frames?
        let prop_vectors: Vec<Vec<Logic3>> = filled[fast + 1..]
            .iter()
            .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
            .collect();
        let fausim = Fausim::new(circuit);
        let state2: Vec<Logic3> = circuit
            .dffs()
            .iter()
            .map(|&ff| Logic3::from_bool(waveform[circuit.ppo_of_dff(ff).index()].final_value()))
            .collect();
        let mut observable_ppos: Vec<NodeId> = Vec::new();
        if !prop_vectors.is_empty() {
            for i in 0..circuit.num_dffs() {
                let ppo = self.ppo_net(i);
                if waveform[ppo.index()].is_steady_clean() {
                    continue;
                }
                if fausim
                    .propagate_state_diff(&state2, i, &prop_vectors)
                    .is_observed()
                {
                    observable_ppos.push(ppo);
                }
            }
        }

        // Phase 3: robust delay fault simulation of the fast frame by
        // critical path tracing, with the invalidation check.
        let hits = detected_delay_faults(circuit, &waveform, faults, &observable_ppos, relied_ppos);
        hits.into_iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{generator, suite, CircuitBuilder, GateKind};

    #[test]
    fn s27_full_run_accounting() {
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        let row = &run.report.row;
        assert_eq!(
            row.total_faults() as usize,
            run.records.len(),
            "every fault classified exactly once"
        );
        assert!(row.tested > 0, "some faults must be tested");
        assert!(row.untestable > 0, "robust model leaves untestables (paper)");
        assert!(row.patterns > 0);
        // Each tested-with-sequence record points at a real sequence.
        for r in &run.records {
            match r.classification {
                FaultClassification::Tested => {
                    let idx = r.sequence_index.expect("tested needs a sequence");
                    assert!(idx < run.sequences.len());
                }
                _ => assert!(r.sequence_index.is_none()),
            }
        }
    }

    #[test]
    fn sequences_detect_their_target_faults() {
        // End-to-end: re-simulate each explicitly generated sequence and
        // confirm the target fault is robustly detected.
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        let mut checked = 0;
        for r in &run.records {
            if r.by_simulation || r.classification != FaultClassification::Tested {
                continue;
            }
            let seq = &run.sequences[r.sequence_index.expect("sequence")];
            let mut rng = StdRng::seed_from_u64(42);
            let filled = seq.filled_with(|| rng.gen());
            let fast = seq.fast_frame_index();
            let init: Vec<Vec<Logic3>> = filled[..fast - 1]
                .iter()
                .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
                .collect();
            let sim = gdf_sim::GoodSimulator::new(&c);
            let (_f, st) = sim.run(&sim.initial_state(), &init);
            let state1: Vec<bool> = st
                .iter()
                .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
                .collect();
            let w = two_frame_values(&c, &filled[fast - 1], &filled[fast], &state1);
            // Observable PPOs: all of them if propagation frames exist
            // (the sequence was built to make the right one observable).
            let all_ppos: Vec<NodeId> = c.ppos();
            let obs: &[NodeId] = if seq.propagation_len() > 0 {
                &all_ppos
            } else {
                &[]
            };
            let hits = detected_delay_faults(&c, &w, &[r.fault], obs, &[]);
            assert_eq!(
                hits.len(),
                1,
                "sequence does not provoke/observe {}",
                r.fault.describe(&c)
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn combinational_circuit_needs_no_sequential_phases() {
        let mut b = CircuitBuilder::new("comb");
        b.add_input("a");
        b.add_input("en");
        b.add_gate("y", GateKind::And, &["a", "en"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let run = DelayAtpg::new(&c).run();
        assert!(run.report.row.tested > 0);
        for seq in &run.sequences {
            assert_eq!(seq.init_len(), 0);
            assert_eq!(seq.propagation_len(), 0);
            assert_eq!(seq.len(), 2);
        }
    }

    #[test]
    fn shift_register_tests_use_propagation_and_init() {
        let c = generator::shift_register(2);
        let run = DelayAtpg::new(&c).run();
        assert!(run.report.row.tested > 0);
        // Some sequence must need propagation (faults near the SR input
        // are observed through state).
        assert!(
            run.sequences.iter().any(|s| s.propagation_len() > 0),
            "expected at least one latched-observation test"
        );
    }

    #[test]
    fn nonrobust_mode_never_tests_fewer() {
        let c = suite::s27();
        let robust = DelayAtpg::new(&c).run();
        let nonrobust = DelayAtpg::with_config(
            &c,
            DelayAtpgConfig {
                model: FaultModel::NonRobust,
                ..DelayAtpgConfig::default()
            },
        )
        .run();
        assert!(
            nonrobust.report.row.tested >= robust.report.row.tested,
            "non-robust {} < robust {}",
            nonrobust.report.row.tested,
            robust.report.row.tested
        );
        assert!(
            nonrobust.report.row.untestable <= robust.report.row.untestable,
            "the paper predicts fewer untestables under the relaxed model"
        );
    }

    #[test]
    fn fault_simulation_drops_faults() {
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        assert!(
            run.report.dropped_by_simulation > 0,
            "fault dropping should credit some faults on s27"
        );
        assert!(run.records.iter().any(|r| r.by_simulation));
    }

    #[test]
    fn tight_limits_cause_aborts_not_hangs() {
        let c = suite::table3_circuit("s298").unwrap();
        let cfg = DelayAtpgConfig {
            local_backtrack_limit: 2,
            sequential_backtrack_limit: 2,
            max_propagation_frames: 4,
            max_sync_frames: 4,
            max_observation_retries: 1,
            ..DelayAtpgConfig::default()
        };
        // Only run a slice of the fault list through generate_one via a
        // reduced universe to keep the test fast.
        let cfg = DelayAtpgConfig {
            universe: gdf_netlist::FaultUniverse::stems_only(),
            ..cfg
        };
        let run = DelayAtpg::with_config(&c, cfg).run();
        assert_eq!(run.report.row.total_faults() as usize, run.records.len());
    }
}
