//! The extended FOGBUSTER driver (Figure 4 of the paper).
//!
//! For every undetected fault the driver runs:
//!
//! ```text
//! select fault → local test generation (TDgen)
//!   ├─ effect at PO ──────────────┐
//!   └─ effect at PPO → forward propagation (SEMILET)
//!          │  (fail: propagation justification → re-enter TDgen;
//!          │         or ban this PPO and re-enter TDgen)
//!          ▼
//!      initialization (synchronizing sequence, SEMILET)
//!          ▼
//!      test found → three-phase fault simulation → drop detected faults
//! ```
//!
//! Inter-phase backtracking is realized by re-entering the local generator
//! with additional constraints: a failed observation flip-flop is *banned*
//! (its PPO may no longer carry the effect), and a failed propagation may
//! first trigger *propagation justification* — a re-entry that forces the
//! unjustifiable (`Xf`) PPOs to steady, specifiable values, exactly the
//! fast-clock-frame re-entry the paper describes.
//!
//! Classification follows the paper's accounting: `untestable` is reported
//! when the (bounded) search space is exhausted without hitting a
//! backtrack limit anywhere; hitting any limit yields `aborted`.

use crate::engine::{AtpgError, Detection, FaultOutcome, Limits, NonScanEngine};
use crate::pattern::TestSequence;
use crate::phase;
use crate::report::CircuitReport;
use gdf_algebra::delay::DelaySet;
use gdf_algebra::logic3::Logic3;
use gdf_algebra::static5::{StaticSet, StaticValue};
use gdf_netlist::{Circuit, DelayFault, Fault, FaultUniverse, ModelKind, NodeId, TransitionFault};
use gdf_semilet::justify::{synchronize, SyncLimits, SyncOutcome};
use gdf_semilet::propagate::{propagate_to_po, PropagateLimits, PropagateOutcome};
use gdf_sim::{
    detected_delay_faults, grade_filled_sequence, grade_filled_sequence_transition,
    two_frame_values, Fausim, GradeScratch,
};
use gdf_tdgen::{
    LocalObservation, LocalTest, PpoValue, Sensitization, TdGen, TdGenConfig, TdGenOutcome,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the combined system.
///
/// `#[non_exhaustive]`: construct it with [`DelayAtpgConfig::new`] /
/// `default()` and the `with_*` setters (or go through
/// [`crate::engine::Atpg::builder`]), so future fields are not breaking
/// changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayAtpgConfig {
    /// Backtrack limit of the local (TDgen) search — the paper uses 100.
    pub local_backtrack_limit: u32,
    /// Backtrack limit of each sequential (SEMILET) frame — paper: 100.
    pub sequential_backtrack_limit: u32,
    /// Maximum slow-clock propagation frames.
    pub max_propagation_frames: usize,
    /// Maximum synchronizing-sequence length.
    pub max_sync_frames: usize,
    /// Which fault model the driver targets: [`ModelKind::Delay`] (the
    /// paper's robust gate delay faults, the default) or
    /// [`ModelKind::Transition`] (gross-delay faults, forced non-robust).
    /// The stuck-at model belongs to the SEMILET backend, not this
    /// driver.
    pub model: ModelKind,
    /// Robust (paper default) or non-robust sensitization. Overridden to
    /// non-robust when `model` is [`ModelKind::Transition`]
    /// ([`DelayAtpgConfig::effective_sensitization`]).
    pub sensitization: Sensitization,
    /// Which fault universe to target.
    pub universe: FaultUniverse,
    /// Seed for the random X-fill before fault simulation (paper §5:
    /// "X-values left by the test generation are set at random").
    pub xfill_seed: u64,
    /// How many alternative observation targets the inter-phase
    /// backtracking may try per fault.
    pub max_observation_retries: usize,
    /// Run the scalar reference fault simulator instead of the packed
    /// (64-fault-per-word) one. The two are classification-identical —
    /// the differential and conformance tests pin that down — so this
    /// exists only as the correctness oracle and for A/B benchmarking.
    pub reference_fsim: bool,
}

impl Default for DelayAtpgConfig {
    fn default() -> Self {
        // The budget constants live in `Limits::default()` alone, so the
        // driver's defaults and the engine builder's can never diverge.
        let limits = Limits::default();
        DelayAtpgConfig {
            local_backtrack_limit: limits.local_backtrack_limit,
            sequential_backtrack_limit: limits.sequential_backtrack_limit,
            max_propagation_frames: limits.max_propagation_frames,
            max_sync_frames: limits.max_sync_frames,
            model: ModelKind::Delay,
            sensitization: Sensitization::Robust,
            universe: FaultUniverse::default(),
            xfill_seed: 0x1995_0308,
            max_observation_retries: limits.max_observation_retries,
            reference_fsim: false,
        }
    }
}

impl DelayAtpgConfig {
    /// The paper's defaults (100 backtracks per engine, robust model).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the local (TDgen) backtrack limit.
    pub fn with_local_backtrack_limit(mut self, v: u32) -> Self {
        self.local_backtrack_limit = v;
        self
    }

    /// Sets the per-frame sequential (SEMILET) backtrack limit.
    pub fn with_sequential_backtrack_limit(mut self, v: u32) -> Self {
        self.sequential_backtrack_limit = v;
        self
    }

    /// Sets the maximum number of slow-clock propagation frames.
    pub fn with_max_propagation_frames(mut self, v: usize) -> Self {
        self.max_propagation_frames = v;
        self
    }

    /// Sets the maximum synchronizing-sequence length.
    pub fn with_max_sync_frames(mut self, v: usize) -> Self {
        self.max_sync_frames = v;
        self
    }

    /// Selects the fault model (delay, the default, or transition).
    ///
    /// Until PR 5 this setter took the robust/non-robust criterion; that
    /// moved to [`DelayAtpgConfig::with_sensitization`].
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Selects the robust (default) or non-robust sensitization.
    pub fn with_sensitization(mut self, sensitization: Sensitization) -> Self {
        self.sensitization = sensitization;
        self
    }

    /// The sensitization the TDgen search actually runs with: the
    /// transition model is defined by final-value (non-robust)
    /// sensitization, so it overrides the configured criterion.
    pub fn effective_sensitization(&self) -> Sensitization {
        match self.model {
            ModelKind::Transition => Sensitization::NonRobust,
            _ => self.sensitization,
        }
    }

    /// Selects the fault universe to target.
    pub fn with_universe(mut self, universe: FaultUniverse) -> Self {
        self.universe = universe;
        self
    }

    /// Sets the X-fill seed used before fault simulation.
    pub fn with_xfill_seed(mut self, seed: u64) -> Self {
        self.xfill_seed = seed;
        self
    }

    /// Sets the observation-retry budget of inter-phase backtracking.
    pub fn with_max_observation_retries(mut self, v: usize) -> Self {
        self.max_observation_retries = v;
        self
    }

    /// Selects the scalar reference fault simulator (default: packed).
    pub fn with_reference_fsim(mut self, v: bool) -> Self {
        self.reference_fsim = v;
        self
    }

    /// Applies every engine-level [`Limits`] budget that concerns the
    /// non-scan driver — the single mapping between the two structs,
    /// used by [`crate::engine::Atpg::builder`]. (`max_stuckat_frames`
    /// has no counterpart here; it only drives the stuck-at backend.)
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.local_backtrack_limit = limits.local_backtrack_limit;
        self.sequential_backtrack_limit = limits.sequential_backtrack_limit;
        self.max_propagation_frames = limits.max_propagation_frames;
        self.max_sync_frames = limits.max_sync_frames;
        self.max_observation_retries = limits.max_observation_retries;
        self
    }

    /// The engine-level [`Limits`] view of these budgets (the inverse of
    /// [`DelayAtpgConfig::with_limits`]; `max_stuckat_frames` keeps its
    /// default, having no counterpart here).
    pub fn limits(&self) -> Limits {
        Limits::new()
            .with_local_backtrack_limit(self.local_backtrack_limit)
            .with_sequential_backtrack_limit(self.sequential_backtrack_limit)
            .with_max_propagation_frames(self.max_propagation_frames)
            .with_max_sync_frames(self.max_sync_frames)
            .with_max_observation_retries(self.max_observation_retries)
    }
}

/// Final classification of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClassification {
    /// A complete test sequence detects it (explicitly generated or
    /// credited by fault simulation).
    Tested,
    /// Proven untestable within the documented search bounds.
    Untestable,
    /// Abandoned at a backtrack limit (or retry budget).
    Aborted,
}

/// Per-fault result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// The fault (delay or stuck-at, depending on the engine).
    pub fault: Fault,
    /// Its classification.
    pub classification: FaultClassification,
    /// `true` if the fault was credited by fault simulation rather than
    /// explicitly targeted.
    pub by_simulation: bool,
    /// Index into [`AtpgRun::sequences`] of the detecting sequence.
    pub sequence_index: Option<usize>,
}

/// The outcome of a full ATPG run on one circuit — the shared run shape
/// of every [`crate::engine::AtpgEngine`] backend.
#[derive(Debug, Clone)]
pub struct AtpgRun {
    /// One record per fault, in fault-list order.
    pub records: Vec<FaultRecord>,
    /// Every emitted test sequence.
    pub sequences: Vec<TestSequence>,
    /// Per sequence (index-aligned with [`AtpgRun::sequences`]): the PPO
    /// nets whose steady value the sequence's propagation phase relies on.
    /// Saved into [`crate::artifact::PatternSet`] exports so re-grading
    /// replays the §5 invalidation check exactly.
    pub relied_ppos: Vec<Vec<NodeId>>,
    /// The aggregate report (one Table 3 row).
    pub report: CircuitReport,
    /// `None` for a completed run; `Some(reason)` when an observer
    /// cancelled it or the time budget expired (the remaining faults are
    /// classified aborted).
    pub stopped: Option<AtpgError>,
}

/// The combined TDgen + SEMILET delay-fault ATPG.
///
/// # Example
///
/// ```
/// use gdf_core::{DelayAtpg, FaultClassification};
/// use gdf_netlist::suite;
///
/// let c = suite::s27();
/// let run = DelayAtpg::new(&c).run();
/// let tested = run
///     .records
///     .iter()
///     .filter(|r| r.classification == FaultClassification::Tested)
///     .count();
/// assert!(tested > 0);
/// ```
#[derive(Debug)]
pub struct DelayAtpg<'c> {
    circuit: &'c Circuit,
    config: DelayAtpgConfig,
}

impl<'c> DelayAtpg<'c> {
    /// Creates a driver with the paper's default limits.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_config(circuit, DelayAtpgConfig::default())
    }

    /// Creates a driver with an explicit configuration.
    pub fn with_config(circuit: &'c Circuit, config: DelayAtpgConfig) -> Self {
        DelayAtpg { circuit, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DelayAtpgConfig {
        &self.config
    }

    /// The circuit under test.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Runs the complete Figure 4 loop over the whole fault list.
    ///
    /// This is the serial entry point kept for convenience; it is exactly
    /// `Atpg::builder(circuit)` with this configuration. Use
    /// [`crate::engine::Atpg::builder`] for streaming observation,
    /// parallelism or a time budget.
    pub fn run(&self) -> AtpgRun {
        let mut engine = NonScanEngine::with_config(self.circuit, self.config.clone());
        crate::engine::AtpgEngine::run(&mut engine)
    }

    /// Figure 4 for a single fault: the per-fault entry point of the
    /// unified engine API ([`crate::engine::AtpgEngine::target`]).
    pub fn target_delay(&self, fault: DelayFault) -> FaultOutcome {
        let gen = TdGen::with_config(
            self.circuit,
            TdGenConfig {
                backtrack_limit: self.config.local_backtrack_limit,
                sensitization: self.config.effective_sensitization(),
            },
        );
        let mut banned: Vec<usize> = Vec::new();
        let mut pj: Option<(usize, Vec<(NodeId, DelaySet)>)> = None;
        let mut any_aborted = false;

        for _attempt in 0..=self.config.max_observation_retries + 1 {
            let mut constraints: Vec<(NodeId, DelaySet)> = banned
                .iter()
                .map(|&i| (self.ppo_net(i), DelaySet::CLEAN))
                .collect();
            if let Some((_, ref extra)) = pj {
                constraints.extend(extra.iter().copied());
            }
            match gen.generate_with_constraints(fault, &constraints) {
                TdGenOutcome::Aborted => return FaultOutcome::Aborted,
                TdGenOutcome::Untestable => {
                    if let Some((pj_dff, _)) = pj.take() {
                        // Propagation justification failed: fall back to
                        // banning the observation target it was rescuing.
                        banned.push(pj_dff);
                        continue;
                    }
                    if banned.is_empty() {
                        return FaultOutcome::Untestable; // genuinely untestable locally
                    }
                    // All observation alternatives exhausted.
                    return if any_aborted {
                        FaultOutcome::Aborted
                    } else {
                        FaultOutcome::Untestable
                    };
                }
                TdGenOutcome::Test(t) => match t.observation {
                    LocalObservation::AtPo(_) => {
                        match self.initialize(&t) {
                            Ok(init) => {
                                return FaultOutcome::Detected(Box::new(self.assemble(
                                    &t,
                                    init,
                                    Vec::new(),
                                    Vec::new(),
                                )))
                            }
                            Err(true) => return FaultOutcome::Aborted,
                            Err(false) => {
                                // The required state of this local test is
                                // unsynchronizable; there is no clean handle
                                // to enumerate alternative PO tests.
                                return if any_aborted {
                                    FaultOutcome::Aborted
                                } else {
                                    FaultOutcome::Untestable
                                };
                            }
                        }
                    }
                    LocalObservation::AtPpo { dff, .. } => {
                        let start = self.start_state(&t);
                        let limits = PropagateLimits {
                            backtrack_limit: self.config.sequential_backtrack_limit,
                            max_frames: self.config.max_propagation_frames,
                        };
                        match propagate_to_po(self.circuit, &start, limits) {
                            PropagateOutcome::Propagated(p) => match self.initialize(&t) {
                                Ok(init) => {
                                    let relied =
                                        p.relied_dffs.iter().map(|&i| self.ppo_net(i)).collect();
                                    return FaultOutcome::Detected(Box::new(
                                        self.assemble(&t, init, p.vectors, relied),
                                    ));
                                }
                                Err(true) => return FaultOutcome::Aborted,
                                Err(false) => {
                                    pj = None;
                                    banned.push(dff);
                                    continue;
                                }
                            },
                            PropagateOutcome::Unpropagatable => {
                                let has_xf = t.ppo_values.contains(&PpoValue::UnjustifiableX);
                                if pj.is_none() && has_xf {
                                    // Propagation justification: force the
                                    // Xf PPOs steady so the next local test
                                    // hands SEMILET a fully known state.
                                    let extra: Vec<(NodeId, DelaySet)> = t
                                        .ppo_values
                                        .iter()
                                        .enumerate()
                                        .filter(|&(_, v)| *v == PpoValue::UnjustifiableX)
                                        .map(|(i, _)| (self.ppo_net(i), DelaySet::STEADY_CLEAN))
                                        .collect();
                                    pj = Some((dff, extra));
                                    continue;
                                }
                                pj = None;
                                banned.push(dff);
                                continue;
                            }
                            PropagateOutcome::Aborted => {
                                any_aborted = true;
                                pj = None;
                                banned.push(dff);
                                continue;
                            }
                        }
                    }
                },
            }
        }
        FaultOutcome::Aborted // retry budget exhausted
    }

    /// The PPO net of flip-flop `i`.
    fn ppo_net(&self, i: usize) -> NodeId {
        self.circuit.ppo_of_dff(self.circuit.dffs()[i])
    }

    /// The 5-valued state handed to the propagation phase: the latched
    /// fault effect, the steady specifiable bits, and `Xf` elsewhere.
    fn start_state(&self, t: &LocalTest) -> Vec<StaticSet> {
        t.ppo_values
            .iter()
            .map(|v| match v {
                PpoValue::Steady0 => StaticSet::singleton(StaticValue::S0),
                PpoValue::Steady1 => StaticSet::singleton(StaticValue::S1),
                PpoValue::FaultEffect { good_one: true } => StaticSet::singleton(StaticValue::D),
                PpoValue::FaultEffect { good_one: false } => StaticSet::singleton(StaticValue::Db),
                PpoValue::UnjustifiableX => StaticSet::GOOD,
            })
            .collect()
    }

    /// Initialization phase. `Err(true)` = aborted, `Err(false)` =
    /// unsynchronizable.
    fn initialize(&self, t: &LocalTest) -> Result<Vec<Vec<Logic3>>, bool> {
        let targets: Vec<(usize, bool)> = t
            .required_state
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (i, b)))
            .collect();
        let limits = SyncLimits {
            backtrack_limit: self.config.sequential_backtrack_limit,
            max_frames: self.config.max_sync_frames,
        };
        match synchronize(self.circuit, &targets, limits) {
            SyncOutcome::Synchronized(seq) => Ok(seq),
            SyncOutcome::Aborted => Err(true),
            SyncOutcome::Unsynchronizable => Err(false),
        }
    }

    fn assemble(
        &self,
        t: &LocalTest,
        init: Vec<Vec<Logic3>>,
        propagation: Vec<Vec<Logic3>>,
        relied_ppos: Vec<NodeId>,
    ) -> Detection {
        Detection {
            sequence: TestSequence::new(init, t.v1.clone(), t.v2.clone(), propagation),
            observed_po: None,
            relied_ppos,
        }
    }

    /// Runs the three-phase fault simulation of one sequence against an
    /// arbitrary candidate fault list, returning the indexes (into
    /// `faults`) of the robustly detected ones. Public so that test-set
    /// compaction and fault grading can reuse the exact §5 semantics.
    ///
    /// All three phases run bit-parallel through the shared grading entry
    /// point ([`gdf_sim::grading::grade_filled_sequence`]): phase 2
    /// propagates one PPO state difference per lane and phase 3 classifies
    /// 64 candidate faults per word; `scratch` holds the reusable buffers,
    /// so a warm call allocates nothing in the sweeps. The classifications
    /// are identical to the scalar reference
    /// ([`DelayAtpg::fault_simulate_sequence_scalar`]) for the same RNG
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::StaticSequence`] if `sequence` is an all-slow
    /// static sequence ([`TestSequence::at_speed`] is `None`, as emitted
    /// by the stuck-at engine): delay fault simulation needs a
    /// launch/capture pair. (Before 0.3 this case panicked.)
    pub fn fault_simulate_sequence(
        &self,
        sequence: &TestSequence,
        relied_ppos: &[NodeId],
        faults: &[DelayFault],
        rng: &mut StdRng,
        scratch: &mut FsimScratch,
    ) -> Result<Vec<usize>, AtpgError> {
        if self.config.reference_fsim {
            return self.fault_simulate_sequence_scalar(sequence, relied_ppos, faults, rng);
        }
        let Some(fast) = sequence.at_speed() else {
            return Err(AtpgError::StaticSequence);
        };
        // X-fill first, then hand the frames to the shared §5 grading
        // entry point (`rng` keeps drawing for unresolved state bits in
        // the same order as before the refactor).
        {
            let _span = phase::start("fill");
            sequence.fill_into(|| rng.gen(), &mut scratch.filled);
        }
        let _span = phase::start("fsim");
        Ok(grade_filled_sequence(
            self.circuit,
            &scratch.filled,
            fast,
            relied_ppos,
            faults,
            rng,
            &mut scratch.grade,
        ))
    }

    /// The transition-model twin of
    /// [`DelayAtpg::fault_simulate_sequence`]: the same three-phase
    /// pipeline (same X-fill RNG discipline), with phase 3 swapped for
    /// the packed non-robust final-value classification
    /// ([`gdf_sim::grading::grade_filled_sequence_transition`]). The
    /// [`DelayAtpgConfig::reference_fsim`] switch has no effect here —
    /// the packed transition path is differential-tested against its
    /// scalar reference inside `gdf_sim`.
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::StaticSequence`] for all-slow static
    /// sequences, like the delay variant.
    pub fn fault_simulate_sequence_transition(
        &self,
        sequence: &TestSequence,
        relied_ppos: &[NodeId],
        faults: &[TransitionFault],
        rng: &mut StdRng,
        scratch: &mut FsimScratch,
    ) -> Result<Vec<usize>, AtpgError> {
        let Some(fast) = sequence.at_speed() else {
            return Err(AtpgError::StaticSequence);
        };
        {
            let _span = phase::start("fill");
            sequence.fill_into(|| rng.gen(), &mut scratch.filled);
        }
        let _span = phase::start("fsim");
        Ok(grade_filled_sequence_transition(
            self.circuit,
            &scratch.filled,
            fast,
            relied_ppos,
            faults,
            rng,
            &mut scratch.grade,
        ))
    }

    /// The scalar reference implementation of
    /// [`DelayAtpg::fault_simulate_sequence`]: one cone trace per fault,
    /// one sequential walk per PPO. Kept as the §5 correctness oracle the
    /// packed path is differential-tested against (and selected for whole
    /// runs by [`DelayAtpgConfig::with_reference_fsim`]).
    ///
    /// # Errors
    ///
    /// Returns [`AtpgError::StaticSequence`] for all-slow static
    /// sequences, like the packed variant.
    pub fn fault_simulate_sequence_scalar(
        &self,
        sequence: &TestSequence,
        relied_ppos: &[NodeId],
        faults: &[DelayFault],
        rng: &mut StdRng,
    ) -> Result<Vec<usize>, AtpgError> {
        let circuit = self.circuit;
        if sequence.at_speed().is_none() {
            return Err(AtpgError::StaticSequence);
        }
        let _span = phase::start("fsim");
        // Phase 1: good-machine simulation of the initialization frames
        // with random X-fill, yielding the state when V1 is applied.
        let filled = sequence.filled_with(|| rng.gen());
        let fast = sequence.fast_frame_index();
        let init_vectors: Vec<Vec<Logic3>> = filled[..fast.saturating_sub(1)]
            .iter()
            .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
            .collect();
        let sim = gdf_sim::GoodSimulator::new(circuit);
        let (_frames, state_l3) = sim.run(&sim.initial_state(), &init_vectors);
        let state1: Vec<bool> = state_l3
            .iter()
            .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
            .collect();
        let v1 = &filled[fast - 1];
        let v2 = &filled[fast];
        let waveform = two_frame_values(circuit, v1, v2, &state1);

        // Phase 2: which PPOs with non-steady values are observable
        // through the propagation frames?
        let prop_vectors: Vec<Vec<Logic3>> = filled[fast + 1..]
            .iter()
            .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
            .collect();
        let fausim = Fausim::new(circuit);
        let state2: Vec<Logic3> = circuit
            .dffs()
            .iter()
            .map(|&ff| Logic3::from_bool(waveform[circuit.ppo_of_dff(ff).index()].final_value()))
            .collect();
        let mut observable_ppos: Vec<NodeId> = Vec::new();
        if !prop_vectors.is_empty() {
            for i in 0..circuit.num_dffs() {
                let ppo = self.ppo_net(i);
                if waveform[ppo.index()].is_steady_clean() {
                    continue;
                }
                if fausim
                    .propagate_state_diff(&state2, i, &prop_vectors)
                    .is_observed()
                {
                    observable_ppos.push(ppo);
                }
            }
        }

        // Phase 3: robust delay fault simulation of the fast frame by
        // critical path tracing, with the invalidation check.
        let hits = detected_delay_faults(circuit, &waveform, faults, &observable_ppos, relied_ppos);
        Ok(hits.into_iter().map(|(k, _)| k).collect())
    }
}

/// Reusable buffers for the three-phase fault simulation: create one per
/// worker (the engine keeps one per run) and hand it to every
/// [`DelayAtpg::fault_simulate_sequence`] call. A warm scratch makes the
/// simulation sweeps allocation-free.
#[derive(Debug, Default, Clone)]
pub struct FsimScratch {
    /// Filled (X-free) frames of the sequence under simulation.
    filled: Vec<Vec<bool>>,
    /// The shared three-phase grading scratch ([`gdf_sim::grading`]).
    grade: GradeScratch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::{generator, suite, CircuitBuilder, GateKind};
    use rand::SeedableRng;

    #[test]
    fn s27_full_run_accounting() {
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        let row = &run.report.row;
        assert_eq!(
            row.total_faults() as usize,
            run.records.len(),
            "every fault classified exactly once"
        );
        assert!(row.tested > 0, "some faults must be tested");
        assert!(
            row.untestable > 0,
            "robust model leaves untestables (paper)"
        );
        assert!(row.patterns > 0);
        // Each tested-with-sequence record points at a real sequence.
        for r in &run.records {
            match r.classification {
                FaultClassification::Tested => {
                    let idx = r.sequence_index.expect("tested needs a sequence");
                    assert!(idx < run.sequences.len());
                }
                _ => assert!(r.sequence_index.is_none()),
            }
        }
    }

    #[test]
    fn sequences_detect_their_target_faults() {
        // End-to-end: re-simulate each explicitly generated sequence and
        // confirm the target fault is robustly detected.
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        let mut checked = 0;
        for r in &run.records {
            if r.by_simulation || r.classification != FaultClassification::Tested {
                continue;
            }
            let seq = &run.sequences[r.sequence_index.expect("sequence")];
            let mut rng = StdRng::seed_from_u64(42);
            let filled = seq.filled_with(|| rng.gen());
            let fast = seq.fast_frame_index();
            let init: Vec<Vec<Logic3>> = filled[..fast - 1]
                .iter()
                .map(|v| v.iter().map(|&b| Logic3::from_bool(b)).collect())
                .collect();
            let sim = gdf_sim::GoodSimulator::new(&c);
            let (_f, st) = sim.run(&sim.initial_state(), &init);
            let state1: Vec<bool> = st
                .iter()
                .map(|l| l.to_bool().unwrap_or_else(|| rng.gen()))
                .collect();
            let w = two_frame_values(&c, &filled[fast - 1], &filled[fast], &state1);
            // Observable PPOs: all of them if propagation frames exist
            // (the sequence was built to make the right one observable).
            let all_ppos: Vec<NodeId> = c.ppos().to_vec();
            let obs: &[NodeId] = if seq.propagation_len() > 0 {
                &all_ppos
            } else {
                &[]
            };
            let fault = r.fault.as_delay().expect("non-scan records delay faults");
            let hits = detected_delay_faults(&c, &w, &[fault], obs, &[]);
            assert_eq!(
                hits.len(),
                1,
                "sequence does not provoke/observe {}",
                fault.describe(&c)
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn combinational_circuit_needs_no_sequential_phases() {
        let mut b = CircuitBuilder::new("comb");
        b.add_input("a");
        b.add_input("en");
        b.add_gate("y", GateKind::And, &["a", "en"]);
        b.mark_output("y");
        let c = b.build().unwrap();
        let run = DelayAtpg::new(&c).run();
        assert!(run.report.row.tested > 0);
        for seq in &run.sequences {
            assert_eq!(seq.init_len(), 0);
            assert_eq!(seq.propagation_len(), 0);
            assert_eq!(seq.len(), 2);
        }
    }

    #[test]
    fn shift_register_tests_use_propagation_and_init() {
        let c = generator::shift_register(2);
        let run = DelayAtpg::new(&c).run();
        assert!(run.report.row.tested > 0);
        // Some sequence must need propagation (faults near the SR input
        // are observed through state).
        assert!(
            run.sequences.iter().any(|s| s.propagation_len() > 0),
            "expected at least one latched-observation test"
        );
    }

    #[test]
    fn nonrobust_mode_never_tests_fewer() {
        let c = suite::s27();
        let robust = DelayAtpg::new(&c).run();
        let nonrobust = DelayAtpg::with_config(
            &c,
            DelayAtpgConfig {
                sensitization: Sensitization::NonRobust,
                ..DelayAtpgConfig::default()
            },
        )
        .run();
        assert!(
            nonrobust.report.row.tested >= robust.report.row.tested,
            "non-robust {} < robust {}",
            nonrobust.report.row.tested,
            robust.report.row.tested
        );
        assert!(
            nonrobust.report.row.untestable <= robust.report.row.untestable,
            "the paper predicts fewer untestables under the relaxed model"
        );
    }

    #[test]
    fn fault_simulation_drops_faults() {
        let c = suite::s27();
        let run = DelayAtpg::new(&c).run();
        assert!(
            run.report.dropped_by_simulation > 0,
            "fault dropping should credit some faults on s27"
        );
        assert!(run.records.iter().any(|r| r.by_simulation));
    }

    #[test]
    fn tight_limits_cause_aborts_not_hangs() {
        let c = suite::table3_circuit("s298").unwrap();
        let cfg = DelayAtpgConfig {
            local_backtrack_limit: 2,
            sequential_backtrack_limit: 2,
            max_propagation_frames: 4,
            max_sync_frames: 4,
            max_observation_retries: 1,
            ..DelayAtpgConfig::default()
        };
        // Only run a slice of the fault list through generate_one via a
        // reduced universe to keep the test fast.
        let cfg = DelayAtpgConfig {
            universe: gdf_netlist::FaultUniverse::stems_only(),
            ..cfg
        };
        let run = DelayAtpg::with_config(&c, cfg).run();
        assert_eq!(run.report.row.total_faults() as usize, run.records.len());
    }
}
