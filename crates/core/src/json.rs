//! A minimal self-contained JSON tree: parser, writer, and typed
//! accessors.
//!
//! The build environment has no crates.io access, so the artifact layer
//! (`crate::artifact`) cannot use `serde`; this module is the hand-rolled
//! substitute. It supports the full JSON value grammar with two
//! deliberate simplifications, both fine for artifacts we both write and
//! read:
//!
//! * numbers are stored as `f64` (artifact code encodes `u64` quantities
//!   such as RNG state words as *strings* to stay lossless);
//! * object keys keep insertion order (no hashing), which also makes the
//!   writer deterministic.
//!
//! # Example
//!
//! ```
//! use gdf_core::json::Json;
//!
//! let v = Json::parse(r#"{"name": "s27", "faults": [1, 2.5], "ok": true}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("s27"));
//! assert_eq!(v.get("faults").unwrap().as_array().unwrap().len(), 2);
//! let text = v.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// Parse-time resource bounds. The parser is recursive-descent, so
/// unbounded nesting would overflow the stack, and the tree it builds is
/// a few times larger than the input text — both must be capped before
/// untrusted (network-facing) input is accepted.
///
/// [`Json::parse`] uses [`ParseLimits::default`], generous enough for any
/// artifact this workspace writes; `gdf serve` parses request bodies with
/// the tighter [`ParseLimits::network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input length in bytes.
    pub max_bytes: usize,
    /// Maximum nesting depth of arrays/objects (a scalar document has
    /// depth 0, `[{"a": 1}]` has depth 2).
    pub max_depth: usize,
}

impl Default for ParseLimits {
    /// 64 MiB, 128 levels.
    fn default() -> Self {
        ParseLimits {
            max_bytes: 64 << 20,
            max_depth: 128,
        }
    }
}

impl ParseLimits {
    /// The bounds for adversarial input: 8 MiB, 64 levels. Every document
    /// the `gdf serve` wire protocol defines fits with a wide margin.
    pub fn network() -> Self {
        ParseLimits {
            max_bytes: 8 << 20,
            max_depth: 64,
        }
    }
}

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What was expected.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected) under [`ParseLimits::default`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        Self::parse_with_limits(text, ParseLimits::default())
    }

    /// Parses under explicit [`ParseLimits`]; over-deep or over-long
    /// input returns an error instead of recursing without bound.
    pub fn parse_with_limits(text: &str, limits: ParseLimits) -> Result<Json, JsonError> {
        if text.len() > limits.max_bytes {
            return Err(JsonError {
                offset: 0,
                message: format!(
                    "input is {} bytes, limit is {}",
                    text.len(),
                    limits.max_bytes
                ),
            });
        }
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
            max_depth: limits.max_depth,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number inside, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number
    /// small enough for `f64` to represent exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The bool inside, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with 2-space indentation (stable field order — objects
    /// keep insertion order).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        out.push_str(&"  ".repeat(indent + 1));
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Bumps the nesting depth on entry to an array/object; the matching
    /// decrement happens in `close_nested`.
    fn enter_nested(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err(format!("nesting deeper than {} levels", self.max_depth)));
        }
        Ok(())
    }

    fn close_nested<T>(&mut self, value: T) -> Result<T, JsonError> {
        self.depth -= 1;
        Ok(value)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter_nested()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return self.close_nested(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return self.close_nested(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter_nested()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return self.close_nested(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return self.close_nested(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by our artifacts;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\nb\"c\u0041""#).unwrap(),
            Json::Str("a\nb\"cA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": ""}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some(""));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].get("b").unwrap().is_null());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let src = r#"{"s":"\\x\n","arr":[1,2.5,true,null,[]],"o":{},"n":-7}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::parse(r#""päper ↦ s27""#).unwrap();
        assert_eq!(v.as_str(), Some("päper ↦ s27"));
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn deeply_nested_input_errors_instead_of_recursing() {
        // A parser without a depth bound would blow the stack on this
        // long before finding the missing closers.
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(100_000);
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
        // Mixed nesting right at the boundary: depth max_depth parses,
        // depth max_depth + 1 does not.
        let limits = ParseLimits {
            max_bytes: 1 << 20,
            max_depth: 10,
        };
        let ok = format!("{}0{}", "[".repeat(10), "]".repeat(10));
        assert!(Json::parse_with_limits(&ok, limits).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(11), "]".repeat(11));
        assert!(Json::parse_with_limits(&too_deep, limits).is_err());
    }

    #[test]
    fn oversized_input_is_rejected_up_front() {
        let limits = ParseLimits {
            max_bytes: 64,
            max_depth: 16,
        };
        let big = format!("\"{}\"", "x".repeat(1000));
        let err = Json::parse_with_limits(&big, limits).unwrap_err();
        assert!(err.message.contains("limit"), "{err}");
        assert!(Json::parse_with_limits("\"small\"", limits).is_ok());
    }

    #[test]
    fn truncated_documents_error_cleanly() {
        // Every prefix of a valid document must parse or error — never
        // panic, never loop.
        let full = r#"{"a": [1, {"b": "x\u0041"}, -2.5e3], "c": null}"#;
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let _ = Json::parse(&full[..cut]);
        }
        assert!(Json::parse(r#"{"a": [1,"#).is_err());
        assert!(Json::parse(r#""ends with backslash \"#).is_err());
        assert!(Json::parse(r#""\u00"#).is_err());
        assert!(Json::parse("-").is_err());
        assert!(Json::parse("{\"k\"").is_err());
    }

    #[test]
    fn malformed_network_payloads_error() {
        for bad in [
            "\u{0}", "[1 2]", "{\"a\":}", "{1: 2}", "tru", "+1", "01x", "\"\\q\"", "[,]", "{,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
