//! The unified engine API: one builder, one trait, one outcome type for
//! all three ATPG backends.
//!
//! The paper's headline is the *combined* system, but a production test
//! flow runs several generators over the same netlist: the non-scan gate
//! delay ATPG (TDgen + SEMILET, Figure 4), the enhanced-scan baseline,
//! and SEMILET's standalone sequential stuck-at mode. This module gives
//! them one surface:
//!
//! * [`AtpgEngine`] — the object-safe trait every backend implements:
//!   `target` one fault, or `run` the whole universe;
//! * [`Atpg::builder`] — the single fluent constructor
//!   (`.backend(…)`, `.model(…)`, `.universe(…)`, `.limits(…)`,
//!   `.seed(…)`, `.observer(…)`, `.time_budget(…)`, `.parallelism(…)`);
//! * [`FaultOutcome`] / [`AtpgError`] — the shared per-fault result and
//!   error types replacing `TdGenOutcome` / `ScanOutcome` /
//!   `StuckAtOutcome` at the public boundary;
//! * [`Observer`] — streaming per-fault records, progress and
//!   cooperative cancellation, so callers no longer wait for the whole
//!   run to buffer; observers *stack* (every attached one streams every
//!   callback), and [`Observer::on_checkpoint`] hands consistent
//!   [`RunSnapshot`]s to checkpointing observers
//!   ([`crate::session::Checkpointer`], or `.checkpoint(path, every)` on
//!   the builder) — an interrupted run restarted with
//!   [`AtpgBuilder::resume_from`] finishes byte-identical to one that
//!   never stopped;
//! * fault-level parallel orchestration (`.parallelism(n)`) with a
//!   deterministic merge: results are **identical to a serial run for
//!   the same seed**, because workers only *speculate* on per-fault
//!   generation (a pure function of the fault) while classification,
//!   fault-simulation credit and the X-fill RNG stream stay on the
//!   merge thread in fault-list order.
//!
//! # Example
//!
//! ```
//! use gdf_core::engine::{Atpg, Backend};
//! use gdf_netlist::suite;
//!
//! let c = suite::s27();
//! let mut engine = Atpg::builder(&c).backend(Backend::NonScan).build();
//! let run = engine.run();
//! assert!(run.report.row.tested > 0);
//! ```

use crate::driver::{
    AtpgRun, DelayAtpg, DelayAtpgConfig, FaultClassification, FaultRecord, FsimScratch,
};
use crate::pattern::TestSequence;
use crate::phase;
use crate::report::{CircuitReport, Coverage, Table3Row};
use crate::scan::ScanDelayAtpg;
use gdf_netlist::{Circuit, DelayFault, Fault, FaultUniverse, ModelKind, NodeId};
use gdf_semilet::stuckat::{StuckAtAtpg, StuckAtConfig, StuckAtOutcome};
use gdf_tdgen::{Sensitization, TdGenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;
use std::time::{Duration, Instant};

/// Search budgets shared by every backend, with the paper's defaults.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`Limits::new`] / [`Limits::default`] and the `with_*` setters, so
/// future budget knobs are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Backtrack limit of the local (TDgen) search — the paper uses 100.
    pub local_backtrack_limit: u32,
    /// Backtrack limit of each sequential (SEMILET) frame — paper: 100.
    pub sequential_backtrack_limit: u32,
    /// Maximum slow-clock propagation frames.
    pub max_propagation_frames: usize,
    /// Maximum synchronizing-sequence length.
    pub max_sync_frames: usize,
    /// Alternative observation targets the inter-phase backtracking may
    /// try per fault (non-scan backend).
    pub max_observation_retries: usize,
    /// Maximum sequence length of the sequential stuck-at backend.
    pub max_stuckat_frames: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            local_backtrack_limit: 100,
            sequential_backtrack_limit: 100,
            max_propagation_frames: 32,
            max_sync_frames: 32,
            max_observation_retries: 4,
            max_stuckat_frames: 24,
        }
    }
}

impl Limits {
    /// The paper's default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the local (TDgen) backtrack limit.
    pub fn with_local_backtrack_limit(mut self, v: u32) -> Self {
        self.local_backtrack_limit = v;
        self
    }

    /// Sets the per-frame sequential (SEMILET) backtrack limit.
    pub fn with_sequential_backtrack_limit(mut self, v: u32) -> Self {
        self.sequential_backtrack_limit = v;
        self
    }

    /// Sets the maximum number of slow-clock propagation frames.
    pub fn with_max_propagation_frames(mut self, v: usize) -> Self {
        self.max_propagation_frames = v;
        self
    }

    /// Sets the maximum synchronizing-sequence length.
    pub fn with_max_sync_frames(mut self, v: usize) -> Self {
        self.max_sync_frames = v;
        self
    }

    /// Sets the observation-retry budget of the non-scan backend.
    pub fn with_max_observation_retries(mut self, v: usize) -> Self {
        self.max_observation_retries = v;
        self
    }

    /// Sets the maximum sequence length of the stuck-at backend.
    pub fn with_max_stuckat_frames(mut self, v: usize) -> Self {
        self.max_stuckat_frames = v;
        self
    }
}

/// Errors of the unified engine API.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtpgError {
    /// The fault's model does not match the engine (e.g. a stuck-at
    /// fault handed to a delay-fault backend).
    UnsupportedFault {
        /// Name of the rejecting engine.
        engine: &'static str,
        /// The offending fault.
        fault: Fault,
    },
    /// The configured fault model is not supported by the configured
    /// backend (e.g. transition faults on the stuck-at engine).
    UnsupportedModel {
        /// The configured backend.
        backend: Backend,
        /// The unsupported model.
        model: ModelKind,
    },
    /// An [`Observer`] requested cancellation; the run classified every
    /// remaining fault as aborted and returned early.
    Cancelled,
    /// The `time_budget` expired; the run classified every remaining
    /// fault as aborted and returned early.
    TimeBudgetExceeded,
    /// A delay-fault operation was handed an all-slow *static* sequence
    /// (no launch/capture pair), e.g. a stuck-at backend sequence passed
    /// to [`crate::driver::DelayAtpg::fault_simulate_sequence`].
    StaticSequence,
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::UnsupportedFault { engine, .. } => {
                write!(f, "fault model not supported by the {engine} engine")
            }
            AtpgError::UnsupportedModel { backend, model } => {
                write!(
                    f,
                    "the {backend} backend does not support the {model} fault model"
                )
            }
            AtpgError::Cancelled => f.write_str("run cancelled by observer"),
            AtpgError::TimeBudgetExceeded => f.write_str("time budget exceeded"),
            AtpgError::StaticSequence => f.write_str(
                "delay fault simulation needs an at-speed launch/capture pair, \
                 got an all-slow static sequence",
            ),
        }
    }
}

impl std::error::Error for AtpgError {}

/// A successful detection: the complete test plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The complete applied sequence. At-speed two-pattern for the delay
    /// backends ([`TestSequence::at_speed`] is `Some`), all-slow for the
    /// stuck-at backend. Vectors cover the circuit's primary inputs —
    /// except for the enhanced-scan backend, whose two vectors cover the
    /// PIs followed by the independently loadable scan-cell values (in
    /// [`Circuit::dffs`] order).
    pub sequence: TestSequence,
    /// The observing output, when the backend pins one down, always in
    /// **original-circuit** node ids (resolvable against
    /// [`AtpgEngine::circuit`]): the PO of the final frame for the
    /// stuck-at backend; for the enhanced-scan backend a real PO, or the
    /// PPO (D net) whose scan cell captures the effect; `None` for the
    /// non-scan delay driver (observation may move during propagation).
    pub observed_po: Option<NodeId>,
    /// PPO nets whose steady value the propagation phase relies on
    /// (non-scan backend; feeds the §5 invalidation check).
    pub relied_ppos: Vec<NodeId>,
}

/// Per-fault result of the unified API — the merge of the per-backend
/// `TdGenOutcome` / `ScanOutcome` / `StuckAtOutcome` shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// A complete test detects the fault.
    Detected(Box<Detection>),
    /// Proven untestable within the documented search bounds.
    Untestable,
    /// Abandoned at a backtrack / retry / frame limit.
    Aborted,
}

impl FaultOutcome {
    /// The detection, if the fault was tested.
    pub fn detection(&self) -> Option<&Detection> {
        match self {
            FaultOutcome::Detected(d) => Some(d),
            _ => None,
        }
    }

    /// Whether a test was found.
    pub fn is_detected(&self) -> bool {
        matches!(self, FaultOutcome::Detected(_))
    }
}

/// The full configuration a run was launched with, carried alongside the
/// run so checkpoints ([`RunSnapshot`]) are self-describing: a serialized
/// snapshot holds everything [`AtpgBuilder::resume_from`] needs to
/// reconstruct an identically-configured engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Which backend the run drives.
    pub backend: Backend,
    /// Which fault model the run targets (must be supported by the
    /// backend, see [`Backend::supports`]).
    pub model: ModelKind,
    /// Robust or non-robust sensitization of delay tests (ignored by the
    /// stuck-at backend; the transition model always grades
    /// non-robustly).
    pub sensitization: Sensitization,
    /// The enumerated fault universe.
    pub universe: FaultUniverse,
    /// Search budgets.
    pub limits: Limits,
    /// X-fill seed of the fault-simulation credit pass.
    pub seed: u64,
}

impl RunConfig {
    /// The default configuration for `backend`: its default fault model
    /// ([`Backend::default_model`]), robust sensitization, full universe,
    /// paper limits, default seed.
    pub fn new(backend: Backend) -> Self {
        RunConfig {
            backend,
            model: backend.default_model(),
            sensitization: Sensitization::Robust,
            universe: FaultUniverse::default(),
            limits: Limits::default(),
            seed: 0x1995_0308,
        }
    }

    /// Replaces the fault model.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Replaces the X-fill seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The sensitization the delay machinery actually runs with: the
    /// transition model is defined by non-robust (final-value)
    /// sensitization, so it overrides the configured criterion.
    pub fn effective_sensitization(&self) -> Sensitization {
        match self.model {
            ModelKind::Transition => Sensitization::NonRobust,
            _ => self.sensitization,
        }
    }

    /// Applies a user-supplied `--model`-style name: the fault-model
    /// names set [`RunConfig::model`]; the pre-PR-5 sensitization
    /// spellings (`robust`/`non-robust`), which used to live under the
    /// same flag, set [`RunConfig::sensitization`] instead. The one
    /// compat shim shared by the CLI and the serve submissions.
    pub fn apply_model_name(&mut self, name: &str) -> Result<(), String> {
        match name.parse::<ModelKind>() {
            Ok(model) => self.model = model,
            Err(model_err) => match name.parse::<Sensitization>() {
                Ok(s) => self.sensitization = s,
                Err(_) => return Err(model_err),
            },
        }
        Ok(())
    }

    /// Rejects backend/model pairings the backend cannot drive — the
    /// same check [`AtpgBuilder::try_build`] performs, available before
    /// a circuit is at hand (CLI flag validation, `POST /jobs`).
    pub fn validate(&self) -> Result<(), AtpgError> {
        if self.backend.supports(self.model) {
            Ok(())
        } else {
            Err(AtpgError::UnsupportedModel {
                backend: self.backend,
                model: self.model,
            })
        }
    }
}

/// A consistent mid-run state, handed to [`Observer::on_checkpoint`]
/// after every explicitly targeted fault is merged (including its
/// fault-simulation credit pass). Everything a resumable artifact needs:
/// the decided records, the emitted sequences, and the exact credit-RNG
/// state, so a run resumed from this point is byte-identical to one that
/// never stopped.
pub struct RunSnapshot<'a> {
    /// Backend name (`"non-scan"`, `"enhanced-scan"`, `"stuck-at"`).
    pub engine: &'static str,
    /// The circuit under test.
    pub circuit: &'a Circuit,
    /// The configuration of the run.
    pub config: &'a RunConfig,
    /// The full fault list, in deterministic order.
    pub faults: &'a [Fault],
    /// Per fault (index-aligned with `faults`): the record if decided,
    /// `None` while undecided.
    pub records: &'a [Option<FaultRecord>],
    /// Sequences emitted so far.
    pub sequences: &'a [TestSequence],
    /// Per sequence: relied PPO nets (see [`AtpgRun::relied_ppos`]).
    pub relied_ppos: &'a [Vec<NodeId>],
    /// Faults credited by fault simulation so far.
    pub dropped: u32,
    /// Number of decided faults.
    pub decided: usize,
    /// The credit-RNG state *after* the last merge.
    pub rng_state: [u64; 4],
}

/// Decoded partial-run state the orchestrator restarts from; produced by
/// [`crate::artifact::RunArtifact::resume_state`] and installed with
/// [`AtpgBuilder::resume_from`].
#[derive(Debug, Clone)]
pub struct ResumeState {
    pub(crate) records: Vec<Option<FaultRecord>>,
    pub(crate) sequences: Vec<TestSequence>,
    pub(crate) relied_ppos: Vec<Vec<NodeId>>,
    pub(crate) dropped: u32,
    pub(crate) rng_state: [u64; 4],
}

/// Streaming consumer of a run: per-fault records as they are decided,
/// progress, and cooperative cancellation.
///
/// All callbacks run on the merge thread in deterministic fault-list
/// order, for serial *and* parallel runs alike.
pub trait Observer {
    /// The run is starting; `total_faults` records will follow.
    fn on_run_start(&mut self, engine: &'static str, circuit: &Circuit, total_faults: usize) {
        let _ = (engine, circuit, total_faults);
    }

    /// One fault has been classified (explicitly targeted or credited by
    /// fault simulation).
    fn on_fault(&mut self, record: &FaultRecord) {
        let _ = record;
    }

    /// A new test sequence was emitted.
    fn on_sequence(&mut self, index: usize, sequence: &TestSequence) {
        let _ = (index, sequence);
    }

    /// Progress: `decided` of `total` faults classified so far.
    fn on_progress(&mut self, decided: usize, total: usize) {
        let _ = (decided, total);
    }

    /// The run finished (or stopped early); the final report.
    fn on_run_end(&mut self, report: &CircuitReport) {
        let _ = report;
    }

    /// A consistent snapshot after one targeted fault was merged (its
    /// credit pass included). Checkpointing observers
    /// ([`crate::session::Checkpointer`]) serialize this to disk every N
    /// outcomes; most observers ignore it.
    fn on_checkpoint(&mut self, snapshot: &RunSnapshot<'_>) {
        let _ = snapshot;
    }

    /// Polled between faults; returning `true` stops the run, classifying
    /// every remaining fault as aborted.
    fn cancelled(&mut self) -> bool {
        false
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_run_start(&mut self, engine: &'static str, circuit: &Circuit, total_faults: usize) {
        (**self).on_run_start(engine, circuit, total_faults);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        (**self).on_fault(record);
    }
    fn on_sequence(&mut self, index: usize, sequence: &TestSequence) {
        (**self).on_sequence(index, sequence);
    }
    fn on_progress(&mut self, decided: usize, total: usize) {
        (**self).on_progress(decided, total);
    }
    fn on_run_end(&mut self, report: &CircuitReport) {
        (**self).on_run_end(report);
    }
    fn on_checkpoint(&mut self, snapshot: &RunSnapshot<'_>) {
        (**self).on_checkpoint(snapshot);
    }
    fn cancelled(&mut self) -> bool {
        (**self).cancelled()
    }
}

/// The object-safe engine interface implemented by all three backends.
pub trait AtpgEngine {
    /// Stable backend name (`"non-scan"`, `"enhanced-scan"`,
    /// `"stuck-at"`).
    fn name(&self) -> &'static str;

    /// The circuit under test (the original netlist, not a rewritten
    /// view).
    fn circuit(&self) -> &Circuit;

    /// The fault universe this engine targets, in deterministic order.
    fn faults(&self) -> &[Fault];

    /// Generates for a single fault. Pure with respect to engine state:
    /// repeated calls with the same fault return the same outcome.
    fn target(&mut self, fault: Fault) -> Result<FaultOutcome, AtpgError>;

    /// Runs the whole fault universe: generation, (backend-specific)
    /// fault-simulation credit, streaming observation, optional
    /// parallelism and time budget.
    fn run(&mut self) -> AtpgRun;
}

/// Entry point of the unified API.
///
/// # Example
///
/// ```
/// use gdf_core::engine::{Atpg, Backend, Limits};
/// use gdf_netlist::suite;
///
/// let c = suite::s27();
/// let mut engine = Atpg::builder(&c)
///     .backend(Backend::StuckAt)
///     .limits(Limits::new().with_sequential_backtrack_limit(50))
///     .build();
/// let run = engine.run();
/// assert_eq!(run.report.row.total_faults() as usize, run.records.len());
/// ```
pub struct Atpg;

impl Atpg {
    /// Starts building an engine over `circuit`.
    pub fn builder(circuit: &Circuit) -> AtpgBuilder<'_> {
        AtpgBuilder {
            circuit,
            backend: Backend::NonScan,
            model: None,
            sensitization: Sensitization::Robust,
            universe: FaultUniverse::default(),
            limits: Limits::default(),
            seed: 0x1995_0308,
            parallelism: 1,
            time_budget: None,
            observers: Vec::new(),
            resume: None,
            speculation: None,
        }
    }
}

/// Which generator the builder constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The paper's combined TDgen + SEMILET non-scan delay ATPG.
    NonScan,
    /// The enhanced-scan combinational delay baseline.
    EnhancedScan,
    /// SEMILET's standalone sequential stuck-at ATPG.
    StuckAt,
}

impl Backend {
    /// The fault model a bare `backend` selection runs: delay faults for
    /// the two delay generators, stuck-at for the stuck-at engine.
    pub fn default_model(self) -> ModelKind {
        match self {
            Backend::NonScan | Backend::EnhancedScan => ModelKind::Delay,
            Backend::StuckAt => ModelKind::Stuck,
        }
    }

    /// Whether this backend can drive `model`. The delay generators run
    /// the delay and transition models (the latter by forcing non-robust
    /// sensitization); the stuck-at engine runs stuck-at faults only.
    pub fn supports(self, model: ModelKind) -> bool {
        match self {
            Backend::NonScan | Backend::EnhancedScan => {
                matches!(model, ModelKind::Delay | ModelKind::Transition)
            }
            Backend::StuckAt => model == ModelKind::Stuck,
        }
    }
}

impl fmt::Display for Backend {
    /// The stable backend name (`"non-scan"`, `"enhanced-scan"`,
    /// `"stuck-at"`) — the single string table artifacts and the CLI
    /// share; [`std::str::FromStr`] is its inverse.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::NonScan => NON_SCAN,
            Backend::EnhancedScan => ENHANCED_SCAN,
            Backend::StuckAt => STUCK_AT,
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    /// Accepts the canonical names plus the short aliases (`nonscan`,
    /// `scan`, `stuckat`) that the CLI and the serve submissions both
    /// document — one parser, so the two surfaces can never drift.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            NON_SCAN | "nonscan" => Ok(Backend::NonScan),
            ENHANCED_SCAN | "scan" => Ok(Backend::EnhancedScan),
            STUCK_AT | "stuckat" => Ok(Backend::StuckAt),
            other => Err(format!("unknown backend `{other}`")),
        }
    }
}

/// Fluent builder for every backend; see [`Atpg::builder`].
pub struct AtpgBuilder<'c> {
    circuit: &'c Circuit,
    backend: Backend,
    model: Option<ModelKind>,
    sensitization: Sensitization,
    universe: FaultUniverse,
    limits: Limits,
    seed: u64,
    parallelism: usize,
    time_budget: Option<Duration>,
    observers: Vec<Box<dyn Observer + 'c>>,
    resume: Option<ResumeState>,
    speculation: Option<Vec<Option<FaultOutcome>>>,
}

impl<'c> AtpgBuilder<'c> {
    /// Selects the backend (default: [`Backend::NonScan`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the fault model (default: the backend's
    /// [`Backend::default_model`]). The backend must support it —
    /// [`AtpgBuilder::try_build`] rejects unsupported pairings with
    /// [`AtpgError::UnsupportedModel`].
    ///
    /// Until PR 5 this setter took the robust/non-robust criterion; that
    /// moved to [`AtpgBuilder::sensitization`].
    pub fn model(mut self, model: ModelKind) -> Self {
        self.model = Some(model);
        self
    }

    /// Robust (default) or non-robust sensitization of delay tests.
    /// Ignored by the stuck-at backend; the transition model always
    /// runs non-robustly.
    pub fn sensitization(mut self, sensitization: Sensitization) -> Self {
        self.sensitization = sensitization;
        self
    }

    /// The fault universe to enumerate (default: every stem and branch).
    pub fn universe(mut self, universe: FaultUniverse) -> Self {
        self.universe = universe;
        self
    }

    /// Search budgets (default: the paper's limits).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Seed of the deterministic X-fill used by fault-simulation credit.
    ///
    /// Only the non-scan backend has a credit pass (and thus an RNG);
    /// the enhanced-scan and stuck-at backends are fully deterministic
    /// searches, so this setter has no effect on their results.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of speculative generation workers (default 1 = serial).
    ///
    /// Classification, credit and reporting are identical to a serial
    /// run for the same seed; only wall-clock changes. Values are
    /// clamped to at least 1.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Installs a table of pre-computed per-fault generation outcomes,
    /// index-aligned with the engine's fault list (`None` entries are
    /// generated locally as usual).
    ///
    /// This is the engine's speculative parallelism opened up to
    /// *external* speculators: per-fault generation is a pure function
    /// of the fault, so outcomes computed elsewhere — another process,
    /// another machine ([`gdf` fleet shards]) — slot into the
    /// deterministic merge exactly like the in-process wave workers'
    /// results do. Classification, fault-simulation credit and the
    /// X-fill RNG stream still run here, in fault-list order, so the
    /// completed run is **byte-identical to a run that generated
    /// everything locally** with the same config and seed.
    ///
    /// Table entries for faults an earlier merge step credits are simply
    /// never consumed (wasted speculation, same as a dropped wave slot);
    /// `None` holes — a shard that never came back — fall back to local
    /// generation, so the merge is robust to missing speculation.
    ///
    /// [`gdf` fleet shards]: crate::shard
    pub fn speculation(mut self, outcomes: Vec<Option<FaultOutcome>>) -> Self {
        self.speculation = Some(outcomes);
        self
    }

    /// Wall-clock budget for `run`; on expiry the remaining faults are
    /// classified aborted and [`AtpgRun::stopped`] reports
    /// [`AtpgError::TimeBudgetExceeded`].
    ///
    /// A budgeted run is *not* comparable across machines or
    /// parallelism levels — where the cut falls depends on timing.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Attaches a streaming [`Observer`]. May be called repeatedly: every
    /// attached observer receives every callback, in attachment order
    /// (and any one of them can cancel the run).
    pub fn observer(mut self, observer: impl Observer + 'c) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attaches a [`crate::session::Checkpointer`] that serializes a
    /// resumable [`crate::artifact::RunArtifact`] to `path` every
    /// `every` decided faults. Convenience for
    /// `.observer(Checkpointer::new(path, every))`.
    pub fn checkpoint(self, path: impl Into<std::path::PathBuf>, every: usize) -> Self {
        self.observer(crate::session::Checkpointer::new(path, every))
    }

    /// Restarts an interrupted run from a checkpoint artifact: the
    /// builder adopts the artifact's backend, model, universe, limits and
    /// seed, pre-loads the already-decided fault records, sequences and
    /// the exact credit-RNG state, and the subsequent [`AtpgEngine::run`]
    /// continues with the still-undecided faults only. The completed run
    /// is **byte-identical** (records, sequences, normalized report) to
    /// one that was never interrupted.
    ///
    /// # Errors
    ///
    /// Returns [`crate::artifact::ArtifactError`] when the artifact does
    /// not belong to this circuit (name or fault-universe mismatch) or is
    /// structurally invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use gdf_core::artifact::RunArtifact;
    /// use gdf_core::engine::{Atpg, Backend};
    /// use gdf_netlist::suite;
    ///
    /// let c = suite::s27();
    /// // A "checkpoint" with nothing decided yet: resuming it is simply
    /// // a full run with the artifact's recorded configuration.
    /// let empty = RunArtifact::checkpoint_stub(&c, Backend::StuckAt, 42);
    /// let run = Atpg::builder(&c).resume_from(&empty).unwrap().build().run();
    /// assert!(run.report.row.tested > 0);
    /// ```
    pub fn resume_from(
        mut self,
        artifact: &crate::artifact::RunArtifact,
    ) -> Result<Self, crate::artifact::ArtifactError> {
        let config = artifact.config();
        self.backend = config.backend;
        self.model = Some(config.model);
        self.sensitization = config.sensitization;
        self.universe = config.universe;
        self.limits = config.limits;
        self.seed = config.seed;
        let faults = faults_of(self.circuit, config.model, &config.universe);
        self.resume = Some(artifact.resume_state(self.circuit, &faults)?);
        Ok(self)
    }

    /// The full [`RunConfig`] this builder resolves to, with the model
    /// defaulted from the backend when unset.
    fn resolved_config(&self) -> RunConfig {
        RunConfig {
            backend: self.backend,
            model: self.model.unwrap_or_else(|| self.backend.default_model()),
            sensitization: self.sensitization,
            universe: self.universe,
            limits: self.limits,
            seed: self.seed,
        }
    }

    /// Builds the selected backend as a boxed [`AtpgEngine`].
    ///
    /// # Panics
    ///
    /// Panics when [`AtpgBuilder::try_build`] would error: the backend
    /// does not support the configured fault model, or a
    /// [`AtpgBuilder::resume_from`] state is installed but a later
    /// `.backend(…)` / `.model(…)` / `.universe(…)` call changed the
    /// fault list it was validated against — override only runtime
    /// options (`.parallelism`, `.time_budget`, `.observer`) after
    /// `resume_from`.
    pub fn build(self) -> Box<dyn AtpgEngine + 'c> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the selected backend, rejecting unsupported backend/model
    /// pairings with [`AtpgError::UnsupportedModel`] instead of
    /// panicking — the entry point for surfaces driven by user input
    /// (the CLI, `gdf serve` submissions).
    pub fn try_build(self) -> Result<Box<dyn AtpgEngine + 'c>, AtpgError> {
        let config = self.resolved_config();
        if !self.backend.supports(config.model) {
            return Err(AtpgError::UnsupportedModel {
                backend: self.backend,
                model: config.model,
            });
        }
        if let Some(resume) = &self.resume {
            let n = faults_of(self.circuit, config.model, &self.universe).len();
            assert_eq!(
                resume.records.len(),
                n,
                "resume state no longer matches the configured fault universe; do not \
                 change .backend()/.model()/.universe() after .resume_from()"
            );
        }
        if let Some(table) = &self.speculation {
            let n = faults_of(self.circuit, config.model, &self.universe).len();
            assert_eq!(
                table.len(),
                n,
                "speculation table must be index-aligned with the fault universe"
            );
        }
        let opts = RunOptions {
            config,
            parallelism: self.parallelism,
            time_budget: self.time_budget,
            observers: self.observers,
            resume: self.resume,
            speculation: self.speculation,
        };
        Ok(match self.backend {
            Backend::NonScan => {
                let driver_config = DelayAtpgConfig::new()
                    .with_model(config.model)
                    .with_sensitization(config.sensitization)
                    .with_universe(self.universe)
                    .with_xfill_seed(self.seed)
                    .with_limits(self.limits);
                Box::new(NonScanEngine::with_options(
                    self.circuit,
                    driver_config,
                    opts,
                ))
            }
            Backend::EnhancedScan => Box::new(EnhancedScanEngine::with_options(
                self.circuit,
                TdGenConfig {
                    backtrack_limit: self.limits.local_backtrack_limit,
                    sensitization: config.effective_sensitization(),
                },
                config.model,
                self.universe,
                opts,
            )),
            Backend::StuckAt => Box::new(StuckAtEngine::with_options(
                self.circuit,
                StuckAtConfig {
                    backtrack_limit: self.limits.sequential_backtrack_limit,
                    max_frames: self.limits.max_stuckat_frames,
                },
                self.universe,
                opts,
            )),
        })
    }
}

/// Runtime options shared by every engine.
struct RunOptions<'c> {
    config: RunConfig,
    parallelism: usize,
    time_budget: Option<Duration>,
    observers: Vec<Box<dyn Observer + 'c>>,
    resume: Option<ResumeState>,
    speculation: Option<Vec<Option<FaultOutcome>>>,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        RunOptions {
            config: RunConfig::new(Backend::NonScan),
            parallelism: 1,
            time_budget: None,
            observers: Vec::new(),
            resume: None,
            speculation: None,
        }
    }
}

/// The deterministic fault list an engine enumerates for a model and
/// universe — the [`gdf_netlist::model::FaultModel`] trait's lazy
/// [`gdf_netlist::FaultSet`], collected once per run (the orchestrator
/// needs index-aligned per-fault records). Shared by the engine
/// constructors and [`AtpgBuilder::resume_from`]'s alignment check.
pub(crate) fn faults_of(
    circuit: &Circuit,
    model: ModelKind,
    universe: &FaultUniverse,
) -> Vec<Fault> {
    model.model().enumerate(circuit, universe).collect()
}

/// Internal per-backend generation/credit hooks. `Sync` so speculative
/// generation can fan out across threads.
trait Worker: Sync {
    fn generate(&self, fault: Fault) -> Result<FaultOutcome, AtpgError>;

    /// Fault-simulation credit for one emitted detection: indexes into
    /// `candidates` of the additionally detected faults. `scratch` holds
    /// the merge thread's reusable simulation buffers. The default
    /// backend has no credit pass.
    fn credit(
        &self,
        detection: &Detection,
        candidates: &[Fault],
        rng: &mut StdRng,
        scratch: &mut FsimScratch,
    ) -> Vec<usize> {
        let _ = (detection, candidates, rng, scratch);
        Vec::new()
    }
}

/// The delay-machinery view of a fault under `model`: delay faults pass
/// through; transition faults map to the same-site/same-direction delay
/// fault the TDgen/SEMILET pipeline drives (with non-robust
/// sensitization forced by the caller); anything else is foreign.
fn delay_view(model: ModelKind, fault: Fault) -> Option<DelayFault> {
    match model {
        ModelKind::Delay => fault.as_delay(),
        ModelKind::Transition => fault.as_transition().map(|t| DelayFault {
            site: t.site,
            kind: t.kind,
        }),
        ModelKind::Stuck => None,
    }
}

impl Worker for DelayAtpg<'_> {
    fn generate(&self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        let f = delay_view(self.config().model, fault).ok_or(AtpgError::UnsupportedFault {
            engine: NON_SCAN,
            fault,
        })?;
        Ok(self.target_delay(f))
    }

    fn credit(
        &self,
        detection: &Detection,
        candidates: &[Fault],
        rng: &mut StdRng,
        scratch: &mut FsimScratch,
    ) -> Vec<usize> {
        match self.config().model {
            ModelKind::Transition => {
                let transition: Vec<_> = candidates
                    .iter()
                    .map(|f| {
                        f.as_transition()
                            .expect("transition universe is transition faults")
                    })
                    .collect();
                self.fault_simulate_sequence_transition(
                    &detection.sequence,
                    &detection.relied_ppos,
                    &transition,
                    rng,
                    scratch,
                )
            }
            _ => {
                let delay: Vec<_> = candidates
                    .iter()
                    .map(|f| f.as_delay().expect("non-scan universe is delay faults"))
                    .collect();
                self.fault_simulate_sequence(
                    &detection.sequence,
                    &detection.relied_ppos,
                    &delay,
                    rng,
                    scratch,
                )
            }
        }
        .expect("non-scan detections always carry an at-speed sequence")
    }
}

/// The enhanced-scan generator plus the model it runs — transition
/// faults map through [`delay_view`] onto the combinational TDgen (whose
/// sensitization the engine constructor already forced non-robust).
struct ScanWorker {
    scan: ScanDelayAtpg,
    model: ModelKind,
}

impl Worker for ScanWorker {
    fn generate(&self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        let f = delay_view(self.model, fault).ok_or(AtpgError::UnsupportedFault {
            engine: ENHANCED_SCAN,
            fault,
        })?;
        Ok(self.scan.generate(f))
    }
}

impl Worker for StuckAtAtpg<'_> {
    fn generate(&self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        let f = fault.as_stuck().ok_or(AtpgError::UnsupportedFault {
            engine: STUCK_AT,
            fault,
        })?;
        Ok(match self.generate(f) {
            StuckAtOutcome::Test { vectors, po } => FaultOutcome::Detected(Box::new(Detection {
                sequence: TestSequence::static_sequence(vectors),
                observed_po: Some(po),
                relied_ppos: Vec::new(),
            })),
            StuckAtOutcome::Untestable => FaultOutcome::Untestable,
            StuckAtOutcome::Aborted => FaultOutcome::Aborted,
        })
    }
}

const NON_SCAN: &str = "non-scan";
const ENHANCED_SCAN: &str = "enhanced-scan";
const STUCK_AT: &str = "stuck-at";

/// The paper's combined TDgen + SEMILET system behind the unified API.
pub struct NonScanEngine<'c> {
    driver: DelayAtpg<'c>,
    faults: Vec<Fault>,
    opts: RunOptions<'c>,
}

impl<'c> NonScanEngine<'c> {
    /// Default configuration (paper limits, robust delay model).
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_config(circuit, DelayAtpgConfig::default())
    }

    /// Explicit driver configuration.
    pub fn with_config(circuit: &'c Circuit, config: DelayAtpgConfig) -> Self {
        let opts = RunOptions {
            config: RunConfig {
                backend: Backend::NonScan,
                model: config.model,
                sensitization: config.sensitization,
                universe: config.universe,
                limits: config.limits(),
                seed: config.xfill_seed,
            },
            ..RunOptions::default()
        };
        Self::with_options(circuit, config, opts)
    }

    fn with_options(circuit: &'c Circuit, config: DelayAtpgConfig, opts: RunOptions<'c>) -> Self {
        let faults = faults_of(circuit, config.model, &config.universe);
        NonScanEngine {
            driver: DelayAtpg::with_config(circuit, config),
            faults,
            opts,
        }
    }
}

impl AtpgEngine for NonScanEngine<'_> {
    fn name(&self) -> &'static str {
        NON_SCAN
    }

    fn circuit(&self) -> &Circuit {
        self.driver.circuit()
    }

    fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn target(&mut self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        Worker::generate(&self.driver, fault)
    }

    fn run(&mut self) -> AtpgRun {
        orchestrate(
            NON_SCAN,
            self.driver.circuit(),
            &self.driver,
            &self.faults,
            &mut self.opts,
        )
    }
}

/// The enhanced-scan combinational baseline behind the unified API.
pub struct EnhancedScanEngine<'c> {
    circuit: &'c Circuit,
    worker: ScanWorker,
    faults: Vec<Fault>,
    opts: RunOptions<'c>,
}

impl<'c> EnhancedScanEngine<'c> {
    /// Default TDgen limits over the scan view.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_options(
            circuit,
            TdGenConfig::default(),
            ModelKind::Delay,
            FaultUniverse::default(),
            RunOptions::default(),
        )
    }

    fn with_options(
        circuit: &'c Circuit,
        config: TdGenConfig,
        model: ModelKind,
        universe: FaultUniverse,
        mut opts: RunOptions<'c>,
    ) -> Self {
        opts.config.backend = Backend::EnhancedScan;
        opts.config.model = model;
        opts.config.universe = universe;
        opts.config.limits.local_backtrack_limit = config.backtrack_limit;
        let faults = faults_of(circuit, model, &universe);
        EnhancedScanEngine {
            circuit,
            worker: ScanWorker {
                scan: ScanDelayAtpg::with_config(circuit, config),
                model,
            },
            faults,
            opts,
        }
    }
}

impl AtpgEngine for EnhancedScanEngine<'_> {
    fn name(&self) -> &'static str {
        ENHANCED_SCAN
    }

    fn circuit(&self) -> &Circuit {
        self.circuit
    }

    fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn target(&mut self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        Worker::generate(&self.worker, fault)
    }

    fn run(&mut self) -> AtpgRun {
        orchestrate(
            ENHANCED_SCAN,
            self.circuit,
            &self.worker,
            &self.faults,
            &mut self.opts,
        )
    }
}

/// SEMILET's sequential stuck-at ATPG behind the unified API.
pub struct StuckAtEngine<'c> {
    atpg: StuckAtAtpg<'c>,
    faults: Vec<Fault>,
    opts: RunOptions<'c>,
}

impl<'c> StuckAtEngine<'c> {
    /// Default limits over the full stuck-at universe.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self::with_options(
            circuit,
            StuckAtConfig::default(),
            FaultUniverse::default(),
            RunOptions::default(),
        )
    }

    fn with_options(
        circuit: &'c Circuit,
        config: StuckAtConfig,
        universe: FaultUniverse,
        mut opts: RunOptions<'c>,
    ) -> Self {
        opts.config.backend = Backend::StuckAt;
        opts.config.model = ModelKind::Stuck;
        opts.config.universe = universe;
        opts.config.limits.sequential_backtrack_limit = config.backtrack_limit;
        opts.config.limits.max_stuckat_frames = config.max_frames;
        let faults = faults_of(circuit, ModelKind::Stuck, &universe);
        StuckAtEngine {
            atpg: StuckAtAtpg::with_config(circuit, config),
            faults,
            opts,
        }
    }
}

impl AtpgEngine for StuckAtEngine<'_> {
    fn name(&self) -> &'static str {
        STUCK_AT
    }

    fn circuit(&self) -> &Circuit {
        self.atpg.circuit()
    }

    fn faults(&self) -> &[Fault] {
        &self.faults
    }

    fn target(&mut self, fault: Fault) -> Result<FaultOutcome, AtpgError> {
        Worker::generate(&self.atpg, fault)
    }

    fn run(&mut self) -> AtpgRun {
        orchestrate(
            STUCK_AT,
            self.atpg.circuit(),
            &self.atpg,
            &self.faults,
            &mut self.opts,
        )
    }
}

/// How many speculative generations each wave schedules per worker. A
/// wave is the unit between deterministic merges; a small factor keeps
/// wasted speculation (results for faults an earlier merge drops) low
/// while still amortizing thread startup.
const WAVE_FACTOR: usize = 4;

/// The shared run loop: deterministic classification + credit + streaming
/// on the merge thread, with optional speculative parallel generation.
///
/// Invariant: for a fixed seed, the returned [`AtpgRun`] (records,
/// sequences and normalized report) is identical for every
/// `parallelism` level, because per-fault generation is pure and every
/// state mutation (records, credit RNG, sequence numbering, observer
/// callbacks) happens here in fault-list order.
fn orchestrate(
    name: &'static str,
    circuit: &Circuit,
    worker: &dyn Worker,
    faults: &[Fault],
    opts: &mut RunOptions<'_>,
) -> AtpgRun {
    let start = Instant::now();
    let total = faults.len();
    // A resumed run restarts from the checkpointed records, sequences and
    // credit-RNG state; the loop below then only sees the undecided
    // faults, so the completed run is byte-identical to an uninterrupted
    // one (generation is pure per fault, and every stateful step replays
    // from exactly where the checkpoint left it).
    let (mut records, mut sequences, mut relied, mut rng, mut dropped) = match opts.resume.take() {
        Some(res) => {
            debug_assert_eq!(res.records.len(), total);
            let rng = StdRng::from_state(res.rng_state);
            (
                res.records,
                res.sequences,
                res.relied_ppos,
                rng,
                res.dropped,
            )
        }
        None => (
            vec![None; total],
            Vec::new(),
            Vec::new(),
            StdRng::seed_from_u64(opts.config.seed),
            0u32,
        ),
    };
    let mut scratch = FsimScratch::default();
    let mut decided = records.iter().filter(|r| r.is_some()).count();
    let mut stopped: Option<AtpgError> = None;
    let parallelism = opts.parallelism.max(1);
    let config = opts.config;
    // Externally speculated outcomes (fleet shards): consumed by the
    // merge below exactly like in-process wave results; covered faults
    // are excluded from local wave speculation so no work is repeated.
    let mut table = opts.speculation.take();
    if let Some(t) = &table {
        debug_assert_eq!(t.len(), total);
    }
    let observers = &mut opts.observers;

    for o in observers.iter_mut() {
        o.on_run_start(name, circuit, total);
    }

    let mut pos = 0usize;
    'run: while pos < total {
        // Collect the next wave of undecided fault indexes.
        let mut wave: Vec<usize> = Vec::with_capacity(parallelism * WAVE_FACTOR);
        while pos < total && wave.len() < parallelism * WAVE_FACTOR {
            if records[pos].is_none() {
                wave.push(pos);
            }
            pos += 1;
        }
        if wave.is_empty() {
            break;
        }

        // Speculative generation: pure per-fault work, safe to fan out.
        //
        // Workers are scoped per wave rather than pooled for the whole
        // run: the scope is what lets them borrow `worker`/`faults`
        // without `Arc`, and joining before the merge is what bounds
        // wasted speculation to one wave of faults that the merge's
        // credit pass may drop. The spawn cost (~tens of µs per thread)
        // is noise against per-fault generation on the backends where
        // parallelism pays; overlapping generation with the merge would
        // save the join idle time at the price of a watermark protocol —
        // worth revisiting if profiles ever show the merge dominating.
        let mut speculative: Vec<Option<Result<FaultOutcome, AtpgError>>> =
            if parallelism > 1 && wave.len() > 1 {
                let slots: Vec<OnceLock<Result<FaultOutcome, AtpgError>>> =
                    (0..wave.len()).map(|_| OnceLock::new()).collect();
                let next = AtomicUsize::new(0);
                let table_ref = table.as_deref();
                thread::scope(|s| {
                    for _ in 0..parallelism.min(wave.len()) {
                        let next = &next;
                        let wave = &wave;
                        let slots = &slots;
                        s.spawn(move || loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= wave.len() {
                                break;
                            }
                            if table_ref.is_some_and(|t| t[wave[k]].is_some()) {
                                continue; // already speculated externally
                            }
                            let _span = phase::start("generate");
                            let out = worker.generate(faults[wave[k]]);
                            slots[k].set(out).expect("each slot claimed once");
                        });
                    }
                });
                slots.into_iter().map(OnceLock::into_inner).collect()
            } else {
                Vec::new()
            };

        // Deterministic merge, in fault-list order.
        for (slot, &idx) in wave.iter().enumerate() {
            if stopped.is_none() {
                if observers.iter_mut().any(|o| o.cancelled()) {
                    stopped = Some(AtpgError::Cancelled);
                } else if opts
                    .time_budget
                    .is_some_and(|budget| start.elapsed() > budget)
                {
                    stopped = Some(AtpgError::TimeBudgetExceeded);
                }
            }
            if stopped.is_some() {
                break 'run;
            }
            if records[idx].is_some() {
                continue; // dropped by an earlier merge in this wave
            }
            let outcome = match speculative.get_mut(slot).and_then(Option::take) {
                Some(out) => out,
                None => match table.as_mut().and_then(|t| t[idx].take()) {
                    Some(out) => Ok(out),
                    None => {
                        let _span = phase::start("generate");
                        worker.generate(faults[idx])
                    }
                },
            };
            let classification = match outcome {
                Ok(FaultOutcome::Detected(detection)) => {
                    let seq_index = sequences.len();
                    records[idx] = Some(FaultRecord {
                        fault: faults[idx],
                        classification: FaultClassification::Tested,
                        by_simulation: false,
                        sequence_index: Some(seq_index),
                    });
                    decided += 1;
                    for o in observers.iter_mut() {
                        o.on_fault(records[idx].as_ref().expect("just set"));
                    }
                    // Fault-simulation credit over the still-undecided
                    // faults, exactly as the serial driver does it.
                    let undecided: Vec<usize> =
                        (0..total).filter(|&i| records[i].is_none()).collect();
                    let candidates: Vec<Fault> = undecided.iter().map(|&i| faults[i]).collect();
                    let hits = {
                        let _span = phase::start("credit");
                        worker.credit(&detection, &candidates, &mut rng, &mut scratch)
                    };
                    for hit in hits {
                        let i = undecided[hit];
                        if records[i].is_none() {
                            dropped += 1;
                            decided += 1;
                            records[i] = Some(FaultRecord {
                                fault: faults[i],
                                classification: FaultClassification::Tested,
                                by_simulation: true,
                                sequence_index: Some(seq_index),
                            });
                            for o in observers.iter_mut() {
                                o.on_fault(records[i].as_ref().expect("just set"));
                            }
                        }
                    }
                    let Detection {
                        sequence,
                        relied_ppos,
                        ..
                    } = *detection;
                    sequences.push(sequence);
                    relied.push(relied_ppos);
                    for o in observers.iter_mut() {
                        o.on_sequence(seq_index, &sequences[seq_index]);
                        o.on_progress(decided, total);
                    }
                    emit_checkpoint(
                        observers, name, circuit, &config, faults, &records, &sequences, &relied,
                        dropped, decided, &rng,
                    );
                    continue;
                }
                Ok(FaultOutcome::Untestable) => FaultClassification::Untestable,
                Ok(FaultOutcome::Aborted) | Err(_) => FaultClassification::Aborted,
            };
            records[idx] = Some(FaultRecord {
                fault: faults[idx],
                classification,
                by_simulation: false,
                sequence_index: None,
            });
            decided += 1;
            for o in observers.iter_mut() {
                o.on_fault(records[idx].as_ref().expect("just set"));
                o.on_progress(decided, total);
            }
            emit_checkpoint(
                observers, name, circuit, &config, faults, &records, &sequences, &relied, dropped,
                decided, &rng,
            );
        }
    }

    // Early stop: everything still undecided is abandoned.
    if stopped.is_some() {
        for (i, rec) in records.iter_mut().enumerate() {
            if rec.is_none() {
                *rec = Some(FaultRecord {
                    fault: faults[i],
                    classification: FaultClassification::Aborted,
                    by_simulation: false,
                    sequence_index: None,
                });
                decided += 1;
                for o in observers.iter_mut() {
                    o.on_fault(rec.as_ref().expect("just set"));
                }
            }
        }
        for o in observers.iter_mut() {
            o.on_progress(decided, total);
        }
    }

    let records: Vec<FaultRecord> = records.into_iter().map(|r| r.expect("decided")).collect();
    let count =
        |c: FaultClassification| records.iter().filter(|r| r.classification == c).count() as u32;
    // First-class coverage: the model's collapse classes give the
    // collapsed denominator; the record stream gives the rest.
    let classes = config.model.model().collapse(circuit, faults);
    let coverage = Coverage::from_records(&records, Some(&classes.class_of));
    let report = CircuitReport {
        row: Table3Row {
            circuit: circuit.name().to_string(),
            tested: count(FaultClassification::Tested),
            untestable: count(FaultClassification::Untestable),
            aborted: count(FaultClassification::Aborted),
            patterns: sequences.iter().map(|s| s.len() as u32).sum(),
            elapsed: start.elapsed(),
        },
        dropped_by_simulation: dropped,
        sequences: sequences.len() as u32,
        coverage,
    };
    for o in observers.iter_mut() {
        o.on_run_end(&report);
    }
    AtpgRun {
        records,
        sequences,
        relied_ppos: relied,
        report,
        stopped,
    }
}

/// Builds a [`RunSnapshot`] view of the merge thread's state and hands it
/// to every observer. Free function (rather than a closure) because the
/// snapshot borrows half the orchestrator's locals.
#[allow(clippy::too_many_arguments)]
fn emit_checkpoint(
    observers: &mut [Box<dyn Observer + '_>],
    engine: &'static str,
    circuit: &Circuit,
    config: &RunConfig,
    faults: &[Fault],
    records: &[Option<FaultRecord>],
    sequences: &[TestSequence],
    relied_ppos: &[Vec<NodeId>],
    dropped: u32,
    decided: usize,
    rng: &StdRng,
) {
    if observers.is_empty() {
        return;
    }
    let _span = phase::start("checkpoint");
    let snapshot = RunSnapshot {
        engine,
        circuit,
        config,
        faults,
        records,
        sequences,
        relied_ppos,
        dropped,
        decided,
        rng_state: rng.state(),
    };
    for o in observers.iter_mut() {
        o.on_checkpoint(&snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::suite;
    use std::sync::{Arc, Mutex};

    #[test]
    fn builder_constructs_all_backends() {
        let c = suite::s27();
        for (backend, name) in [
            (Backend::NonScan, NON_SCAN),
            (Backend::EnhancedScan, ENHANCED_SCAN),
            (Backend::StuckAt, STUCK_AT),
        ] {
            let mut engine = Atpg::builder(&c).backend(backend).build();
            assert_eq!(engine.name(), name);
            assert_eq!(engine.circuit().name(), "s27");
            let faults = engine.faults().to_vec();
            assert!(!faults.is_empty());
            let run = engine.run();
            assert_eq!(run.records.len(), faults.len());
            assert_eq!(run.report.row.total_faults() as usize, faults.len());
            assert!(run.stopped.is_none());
            assert!(run.report.row.tested > 0, "{name} finds tests on s27");
        }
    }

    #[test]
    fn target_rejects_wrong_fault_model() {
        let c = suite::s27();
        let stuck = FaultUniverse::default().stuck_faults(&c)[0];
        let delay = FaultUniverse::default().delay_faults(&c)[0];
        let mut nonscan = Atpg::builder(&c).backend(Backend::NonScan).build();
        assert!(matches!(
            nonscan.target(Fault::Stuck(stuck)),
            Err(AtpgError::UnsupportedFault { .. })
        ));
        let mut stuckat = Atpg::builder(&c).backend(Backend::StuckAt).build();
        assert!(matches!(
            stuckat.target(Fault::Delay(delay)),
            Err(AtpgError::UnsupportedFault { .. })
        ));
    }

    #[derive(Default)]
    struct Recorder {
        events: Arc<Mutex<Vec<String>>>,
        cancel_after: Option<usize>,
        seen: usize,
    }

    impl Observer for Recorder {
        fn on_run_start(&mut self, engine: &'static str, _c: &Circuit, total: usize) {
            self.events
                .lock()
                .unwrap()
                .push(format!("start {engine} {total}"));
        }
        fn on_fault(&mut self, record: &FaultRecord) {
            self.seen += 1;
            self.events
                .lock()
                .unwrap()
                .push(format!("fault {:?}", record.classification));
        }
        fn on_run_end(&mut self, report: &CircuitReport) {
            self.events
                .lock()
                .unwrap()
                .push(format!("end {}", report.row.total_faults()));
        }
        fn cancelled(&mut self) -> bool {
            self.cancel_after.is_some_and(|n| self.seen >= n)
        }
    }

    #[test]
    fn observer_streams_every_record() {
        let c = suite::s27();
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut engine = Atpg::builder(&c)
            .backend(Backend::NonScan)
            .observer(Recorder {
                events: Arc::clone(&events),
                ..Recorder::default()
            })
            .build();
        let run = engine.run();
        let events = events.lock().unwrap();
        assert!(events[0].starts_with("start non-scan"));
        let fault_events = events.iter().filter(|e| e.starts_with("fault")).count();
        assert_eq!(fault_events, run.records.len());
        assert!(events.last().unwrap().starts_with("end"));
    }

    #[test]
    fn cancellation_stops_early_and_aborts_rest() {
        let c = suite::s27();
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut engine = Atpg::builder(&c)
            .backend(Backend::NonScan)
            .observer(Recorder {
                events: Arc::clone(&events),
                cancel_after: Some(3),
                ..Recorder::default()
            })
            .build();
        let run = engine.run();
        assert_eq!(run.stopped, Some(AtpgError::Cancelled));
        assert_eq!(run.records.len(), run.report.row.total_faults() as usize);
        assert!(run.report.row.aborted > 0, "remaining faults aborted");
        // Every fault still classified exactly once.
        let fault_events = events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.starts_with("fault"))
            .count();
        assert_eq!(fault_events, run.records.len());
    }

    #[test]
    fn zero_time_budget_aborts_everything() {
        let c = suite::s27();
        let mut engine = Atpg::builder(&c)
            .backend(Backend::StuckAt)
            .time_budget(Duration::ZERO)
            .build();
        let run = engine.run();
        assert_eq!(run.stopped, Some(AtpgError::TimeBudgetExceeded));
        assert_eq!(
            run.report.row.aborted as usize,
            run.records.len(),
            "nothing decided under a zero budget"
        );
    }

    #[test]
    fn parallel_is_byte_identical_to_serial() {
        let c = suite::s27();
        let serial = Atpg::builder(&c)
            .backend(Backend::NonScan)
            .seed(7)
            .build()
            .run();
        for n in [2, 4, 7] {
            let parallel = Atpg::builder(&c)
                .backend(Backend::NonScan)
                .seed(7)
                .parallelism(n)
                .build()
                .run();
            assert_eq!(serial.records, parallel.records, "parallelism {n}");
            assert_eq!(serial.sequences, parallel.sequences, "parallelism {n}");
            assert_eq!(
                serial.report.row.normalized(),
                parallel.report.row.normalized(),
                "parallelism {n}"
            );
            assert_eq!(
                serial.report.dropped_by_simulation,
                parallel.report.dropped_by_simulation
            );
        }
    }
}
