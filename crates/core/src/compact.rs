//! Static test-set compaction.
//!
//! The paper's `#pat` column counts every applied vector, and sequential
//! delay tests are long (initialization + pair + propagation), so test-set
//! size matters on the tester. This module implements classic *reverse-
//! order greedy* static compaction: re-fault-simulate the sequences from
//! last to first against the tested-fault set and keep a sequence only if
//! it detects at least one fault no retained sequence covers. Later
//! sequences tend to cover earlier ones because fault dropping already
//! removed their targets from the later runs' fault lists — the same
//! observation behind reverse-order compaction for stuck-at tests.
//!
//! Compaction preserves coverage by construction (asserted here and in the
//! integration tests): the kept set detects every fault the full set
//! detected, under the same §5 fault-simulation semantics.

use crate::driver::{AtpgRun, DelayAtpg, FaultClassification, FsimScratch};
use crate::pattern::TestSequence;
use gdf_netlist::DelayFault;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of compacting a run's test set.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// Indexes (into the run's sequence list) of the retained sequences,
    /// in application order.
    pub kept: Vec<usize>,
    /// Total vectors before compaction.
    pub patterns_before: u32,
    /// Total vectors after compaction.
    pub patterns_after: u32,
    /// Number of tested faults the retained set provably covers.
    pub covered: usize,
}

impl CompactionResult {
    /// Pattern-count reduction, `0.0..1.0`.
    pub fn reduction(&self) -> f64 {
        if self.patterns_before == 0 {
            0.0
        } else {
            1.0 - self.patterns_after as f64 / self.patterns_before as f64
        }
    }
}

/// Greedy reverse-order compaction of `run`'s sequences.
///
/// `atpg` must be the driver that produced `run` (same circuit and
/// configuration), so the fault simulation semantics match.
///
/// # Panics
///
/// Panics if `run` was produced by a different backend than the non-scan
/// delay driver (a stuck-at run's records carry [`gdf_netlist::Fault::Stuck`]
/// faults and its sequences have no launch/capture pair to fault-simulate).
///
/// # Example
///
/// ```
/// use gdf_core::compact::compact_sequences;
/// use gdf_core::DelayAtpg;
/// use gdf_netlist::suite;
///
/// let c = suite::s27();
/// let atpg = DelayAtpg::new(&c);
/// let run = atpg.run();
/// let compact = compact_sequences(&atpg, &run);
/// assert!(compact.patterns_after <= compact.patterns_before);
/// ```
pub fn compact_sequences(atpg: &DelayAtpg<'_>, run: &AtpgRun) -> CompactionResult {
    let tested: Vec<DelayFault> = run
        .records
        .iter()
        .filter(|r| r.classification == FaultClassification::Tested)
        .map(|r| {
            r.fault
                .as_delay()
                .expect("non-scan run records delay faults")
        })
        .collect();
    let patterns_before: u32 = run.sequences.iter().map(|s| s.len() as u32).sum();

    // Per-sequence detection sets over the tested faults, with each
    // sequence's own relied-PPO list (retained in `AtpgRun::relied_ppos`
    // since 0.3) so the §5 invalidation check matches the generating run
    // and `session::grade_patterns` exactly. Coverage is judged under the
    // same rule for "before" and "after".
    let mut scratch = FsimScratch::default();
    let mut detect = |(i, seq): (usize, &TestSequence)| -> Vec<bool> {
        let relied: &[gdf_netlist::NodeId] = run.relied_ppos.get(i).map_or(&[], |r| r);
        let mut rng = StdRng::seed_from_u64(atpg.config().xfill_seed);
        let hits = atpg
            .fault_simulate_sequence(seq, relied, &tested, &mut rng, &mut scratch)
            .expect("compaction input is a non-scan run with at-speed sequences");
        let mut set = vec![false; tested.len()];
        for h in hits {
            set[h] = true;
        }
        set
    };
    let detect = &mut detect;
    let detection: Vec<Vec<bool>> = run.sequences.iter().enumerate().map(detect).collect();
    let baseline: Vec<bool> = (0..tested.len())
        .map(|i| detection.iter().any(|d| d[i]))
        .collect();

    let mut covered = vec![false; tested.len()];
    let mut kept_rev: Vec<usize> = Vec::new();
    for idx in (0..run.sequences.len()).rev() {
        let contributes = detection[idx].iter().zip(&covered).any(|(&d, &c)| d && !c);
        if contributes {
            kept_rev.push(idx);
            for (c, &d) in covered.iter_mut().zip(&detection[idx]) {
                *c |= d;
            }
        }
    }
    kept_rev.reverse();

    // Coverage preservation under the uniform rule.
    debug_assert_eq!(
        covered.iter().filter(|&&c| c).count(),
        baseline.iter().filter(|&&c| c).count(),
        "compaction must not lose simulated coverage"
    );

    let patterns_after = kept_rev
        .iter()
        .map(|&i| run.sequences[i].len() as u32)
        .sum();
    CompactionResult {
        kept: kept_rev,
        patterns_before,
        patterns_after,
        covered: covered.iter().filter(|&&c| c).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdf_netlist::suite;

    #[test]
    fn compaction_preserves_simulated_coverage_on_s27() {
        let c = suite::s27();
        let atpg = DelayAtpg::new(&c);
        let run = atpg.run();
        let compact = compact_sequences(&atpg, &run);
        assert!(compact.patterns_after <= compact.patterns_before);
        assert!(!compact.kept.is_empty());
        // Re-check coverage of the kept set explicitly.
        let tested: Vec<_> = run
            .records
            .iter()
            .filter(|r| r.classification == FaultClassification::Tested)
            .filter_map(|r| r.fault.as_delay())
            .collect();
        let mut covered = vec![false; tested.len()];
        let mut scratch = FsimScratch::default();
        for &k in &compact.kept {
            let mut rng = StdRng::seed_from_u64(atpg.config().xfill_seed);
            let hits = atpg
                .fault_simulate_sequence(
                    &run.sequences[k],
                    &run.relied_ppos[k],
                    &tested,
                    &mut rng,
                    &mut scratch,
                )
                .expect("at-speed sequence");
            for h in hits {
                covered[h] = true;
            }
        }
        assert_eq!(covered.iter().filter(|&&c| c).count(), compact.covered);
    }

    #[test]
    fn kept_indexes_are_ordered_and_unique() {
        let c = suite::table3_circuit("s298").expect("suite circuit");
        let atpg = DelayAtpg::new(&c);
        let run = atpg.run();
        let compact = compact_sequences(&atpg, &run);
        assert!(compact.kept.windows(2).all(|w| w[0] < w[1]));
        assert!(compact.kept.len() <= run.sequences.len());
        assert!(compact.reduction() >= 0.0);
    }
}
