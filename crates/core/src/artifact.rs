//! Persistent run artifacts: hand-rolled JSON encode/decode for
//! [`AtpgRun`], [`Fault`]/[`FaultOutcome`], [`TestSequence`] and
//! [`PatternSet`].
//!
//! A run is no longer an in-memory value that dies with the process:
//! [`RunArtifact`] serializes a complete run *or* a mid-run checkpoint
//! ([`crate::engine::RunSnapshot`]) to a self-contained JSON document —
//! configuration, circuit provenance, decided fault records, emitted
//! sequences and the exact credit-RNG state — and
//! [`crate::engine::AtpgBuilder::resume_from`] restarts an interrupted
//! run from it byte-identically. [`PatternSet`] exports the emitted test
//! sequences alone, for re-grading ([`crate::session::grade_patterns`])
//! and tester hand-off.
//!
//! Faults and nets are encoded by **signal name**, never by node index,
//! so an artifact stays valid across circuit re-parses. The JSON layer is
//! [`crate::json`] (crates.io is unreachable, so no serde); `u64`
//! quantities (seed, RNG state) are encoded as hex strings because JSON
//! numbers are `f64`.
//!
//! # Example
//!
//! ```
//! use gdf_core::artifact::{PatternSet, RunArtifact};
//! use gdf_core::engine::{Atpg, Backend, RunConfig};
//! use gdf_netlist::suite;
//!
//! let c = suite::s27();
//! let run = Atpg::builder(&c).backend(Backend::StuckAt).build().run();
//!
//! // A completed run round-trips losslessly through JSON.
//! let artifact = RunArtifact::from_run(&c, &run, RunConfig::new(Backend::StuckAt), None);
//! let text = artifact.encode();
//! let back = RunArtifact::decode(&text).unwrap();
//! let restored = back.to_run(&c).unwrap();
//! assert_eq!(restored.records, run.records);
//! assert_eq!(restored.sequences, run.sequences);
//!
//! // So does a pattern set exported from it.
//! let set = PatternSet::from_run(&c, &run, "stuck-at", 0x1995_0308, None);
//! let set2 = PatternSet::decode(&set.encode()).unwrap();
//! assert_eq!(set2.patterns.len(), run.sequences.len());
//! ```

use crate::driver::{AtpgRun, FaultClassification, FaultRecord};
use crate::engine::{
    AtpgError, Backend, Detection, FaultOutcome, Limits, ResumeState, RunConfig, RunSnapshot,
};
use crate::json::{Json, JsonError};
use crate::pattern::TestSequence;
use crate::report::{CircuitReport, ClassCounts, Coverage, Table3Row};
use gdf_algebra::logic3::Logic3;
use gdf_netlist::{
    to_bench, Circuit, DelayFault, DelayFaultKind, Fault, FaultSite, FaultUniverse, ModelKind,
    NodeId, StuckAtKind, StuckFault, TransitionFault,
};
use gdf_tdgen::Sensitization;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// Current artifact schema version.
///
/// * **v2** (PR 5): the config carries a `model` (fault model:
///   `delay`/`stuck`/`transition`) *and* a `sensitization`
///   (`robust`/`non-robust`); reports embed a `coverage` object;
///   transition faults encode with model tag `"transition"`.
/// * **v1** (PR 3/4): `model` held the sensitization name and the fault
///   model was implied by the backend. v1 documents still load —
///   [`RunArtifact::decode`] maps the old fields and reconstructs the
///   coverage tally from the records (without collapsed denominators,
///   which v1 never recorded).
pub const ARTIFACT_VERSION: u64 = 2;

/// Oldest artifact version [`RunArtifact::decode`] still reads.
pub const ARTIFACT_VERSION_MIN: u64 = 1;

/// Errors of the artifact layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but not a valid artifact.
    Schema(String),
    /// The artifact does not belong to the circuit / engine it was
    /// applied to (name, fault list or universe mismatch).
    Mismatch(String),
    /// Filesystem trouble (message includes the path).
    Io(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "invalid JSON: {e}"),
            ArtifactError::Schema(m) => write!(f, "invalid artifact: {m}"),
            ArtifactError::Mismatch(m) => write!(f, "artifact mismatch: {m}"),
            ArtifactError::Io(m) => write!(f, "artifact I/O: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

pub(crate) fn schema(m: impl Into<String>) -> ArtifactError {
    ArtifactError::Schema(m.into())
}

/// Where the artifact's circuit comes from, so a loader can rebuild the
/// *identical* circuit (same node order, hence same fault order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSource {
    /// Circuit name.
    pub name: String,
    /// `Some("suite:s27")` when the circuit is reproducible from the
    /// built-in suite; loaders prefer this over re-parsing `bench`.
    pub reference: Option<String>,
    /// The `.bench` source. When the circuit was parsed from a file this
    /// is the *original* file text (parse order defines node order);
    /// otherwise a [`to_bench`] rendering.
    pub bench: String,
}

impl CircuitSource {
    /// Source for an in-memory circuit: no reference, [`to_bench`] text.
    pub fn of(circuit: &Circuit) -> Self {
        CircuitSource {
            name: circuit.name().to_string(),
            reference: None,
            bench: to_bench(circuit),
        }
    }

    /// Source for a suite circuit (`reference = "suite:<name>"`).
    pub fn suite(circuit: &Circuit, suite_name: &str) -> Self {
        CircuitSource {
            reference: Some(format!("suite:{suite_name}")),
            ..Self::of(circuit)
        }
    }

    /// Source for a circuit parsed from `.bench` text: keeps the exact
    /// original text so a re-parse reproduces the identical node order.
    pub fn bench(circuit: &Circuit, source_text: impl Into<String>) -> Self {
        CircuitSource {
            name: circuit.name().to_string(),
            reference: None,
            bench: source_text.into(),
        }
    }

    /// Rebuilds the circuit: from the suite when referenced, else by
    /// parsing the embedded `.bench` text.
    pub fn resolve(&self) -> Result<Circuit, ArtifactError> {
        if let Some(reference) = &self.reference {
            if let Some(name) = reference.strip_prefix("suite:") {
                return gdf_netlist::suite::by_name(name).ok_or_else(|| {
                    ArtifactError::Mismatch(format!("unknown suite circuit `{name}`"))
                });
            }
            return Err(schema(format!("unknown circuit reference `{reference}`")));
        }
        gdf_netlist::parse_bench(&self.name, &self.bench)
            .map_err(|e| schema(format!("embedded bench source: {e}")))
    }

    /// Encodes to the artifact/wire object (`name` + `ref` + `bench`).
    pub fn encode(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "ref".into(),
                match &self.reference {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            ("bench".into(), Json::Str(self.bench.clone())),
        ])
    }

    /// Decodes the object produced by [`CircuitSource::encode`].
    pub fn decode(j: &Json) -> Result<Self, ArtifactError> {
        Ok(CircuitSource {
            name: str_field(j, "name")?.to_string(),
            reference: match j.get("ref") {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            },
            bench: str_field(j, "bench")?.to_string(),
        })
    }

    /// Content digest of the canonical encoding — the circuit half of a
    /// result-cache key. Two sources digest equal iff they encode equal,
    /// so a suite reference and a pasted copy of the same netlist are
    /// distinct keys (their generated artifacts embed distinct sources
    /// and would not be byte-identical anyway).
    pub fn digest(&self) -> crate::digest::Digest {
        crate::digest::Digest::of_text(&self.encode().pretty())
    }
}

// ---------------------------------------------------------------------
// Scalar encoders
// ---------------------------------------------------------------------

fn hex_u64(v: u64) -> Json {
    Json::Str(format!("{v:#x}"))
}

fn parse_hex_u64(j: &Json, what: &str) -> Result<u64, ArtifactError> {
    let s = j
        .as_str()
        .ok_or_else(|| schema(format!("{what}: expected a hex string")))?;
    let digits = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(digits, 16).map_err(|_| schema(format!("{what}: bad hex `{s}`")))
}

pub(crate) fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, ArtifactError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema(format!("missing string field `{key}`")))
}

pub(crate) fn usize_field(j: &Json, key: &str) -> Result<usize, ArtifactError> {
    j.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| schema(format!("missing integer field `{key}`")))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, ArtifactError> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| schema(format!("missing bool field `{key}`")))
}

fn node_name(circuit: &Circuit, id: NodeId) -> Json {
    Json::Str(circuit.node(id).name().to_string())
}

fn resolve_node(circuit: &Circuit, name: &str) -> Result<NodeId, ArtifactError> {
    circuit
        .node_by_name(name)
        .ok_or_else(|| ArtifactError::Mismatch(format!("signal `{name}` not in circuit")))
}

// ---------------------------------------------------------------------
// Fault / outcome / sequence codecs
// ---------------------------------------------------------------------

/// Encodes a [`Fault`] by signal names (stable across re-parses).
pub fn encode_fault(fault: Fault, circuit: &Circuit) -> Json {
    let (model, kind, site) = match fault {
        Fault::Delay(f) => ("delay", f.kind.short_name().to_string(), f.site),
        Fault::Stuck(f) => ("stuck", f.kind.to_string(), f.site),
        Fault::Transition(f) => ("transition", f.short_name().to_string(), f.site),
    };
    let mut fields = vec![
        ("model".into(), Json::Str(model.into())),
        ("kind".into(), Json::Str(kind)),
        ("stem".into(), node_name(circuit, site.stem)),
    ];
    if let Some((sink, pin)) = site.branch {
        fields.push((
            "branch".into(),
            Json::Obj(vec![
                ("sink".into(), node_name(circuit, sink)),
                ("pin".into(), Json::Num(pin as f64)),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// Decodes a [`Fault`] encoded by [`encode_fault`], resolving names
/// against `circuit`.
pub fn decode_fault(j: &Json, circuit: &Circuit) -> Result<Fault, ArtifactError> {
    let stem = resolve_node(circuit, str_field(j, "stem")?)?;
    let site = match j.get("branch") {
        None | Some(Json::Null) => FaultSite::on_stem(stem),
        Some(b) => {
            let sink = resolve_node(circuit, str_field(b, "sink")?)?;
            let pin = usize_field(b, "pin")?;
            FaultSite::on_branch(stem, sink, pin as u8)
        }
    };
    let kind = str_field(j, "kind")?;
    match str_field(j, "model")? {
        "delay" => {
            let kind = match kind {
                "StR" => DelayFaultKind::SlowToRise,
                "StF" => DelayFaultKind::SlowToFall,
                other => return Err(schema(format!("unknown delay fault kind `{other}`"))),
            };
            Ok(Fault::Delay(DelayFault { site, kind }))
        }
        "stuck" => {
            let kind = match kind {
                "sa0" => StuckAtKind::StuckAt0,
                "sa1" => StuckAtKind::StuckAt1,
                other => return Err(schema(format!("unknown stuck-at kind `{other}`"))),
            };
            Ok(Fault::Stuck(StuckFault { site, kind }))
        }
        "transition" => {
            let kind = match kind {
                "str" => DelayFaultKind::SlowToRise,
                "stf" => DelayFaultKind::SlowToFall,
                other => return Err(schema(format!("unknown transition fault kind `{other}`"))),
            };
            Ok(Fault::Transition(TransitionFault { site, kind }))
        }
        other => Err(schema(format!("unknown fault model `{other}`"))),
    }
}

fn encode_frame(frame: &[Logic3]) -> Json {
    Json::Str(
        frame
            .iter()
            .map(|l| match l {
                Logic3::Zero => '0',
                Logic3::One => '1',
                Logic3::X => 'X',
            })
            .collect(),
    )
}

fn decode_frame(j: &Json) -> Result<Vec<Logic3>, ArtifactError> {
    j.as_str()
        .ok_or_else(|| schema("frame: expected a string of 0/1/X"))?
        .chars()
        .map(|c| match c {
            '0' => Ok(Logic3::Zero),
            '1' => Ok(Logic3::One),
            'X' | 'x' => Ok(Logic3::X),
            other => Err(schema(format!("frame: invalid symbol `{other}`"))),
        })
        .collect()
}

/// Encodes a [`TestSequence`]: the applied frames as `0/1/X` strings plus
/// the fast-frame index (`null` for all-slow static sequences) — the
/// clock schedule is implied, so the round trip is lossless.
pub fn encode_sequence(seq: &TestSequence) -> Json {
    Json::Obj(vec![
        (
            "frames".into(),
            Json::Arr(
                seq.vectors()
                    .iter()
                    .map(|tv| encode_frame(&tv.pi))
                    .collect(),
            ),
        ),
        (
            "fast".into(),
            match seq.at_speed() {
                Some(i) => Json::Num(i as f64),
                None => Json::Null,
            },
        ),
    ])
}

/// Decodes a [`TestSequence`] encoded by [`encode_sequence`].
pub fn decode_sequence(j: &Json) -> Result<TestSequence, ArtifactError> {
    let frames: Vec<Vec<Logic3>> = j
        .get("frames")
        .and_then(Json::as_array)
        .ok_or_else(|| schema("sequence: missing `frames`"))?
        .iter()
        .map(decode_frame)
        .collect::<Result<_, _>>()?;
    match j.get("fast") {
        None | Some(Json::Null) => Ok(TestSequence::static_sequence(frames)),
        Some(fast) => {
            let fast = fast
                .as_usize()
                .ok_or_else(|| schema("sequence: `fast` must be an index"))?;
            if fast == 0 || fast >= frames.len() {
                return Err(schema(format!(
                    "sequence: fast index {fast} out of range for {} frames",
                    frames.len()
                )));
            }
            let mut it = frames.into_iter();
            let init: Vec<Vec<Logic3>> = (&mut it).take(fast - 1).collect();
            let v1 = it.next().expect("bounds checked");
            let v2 = it.next().expect("bounds checked");
            let prop: Vec<Vec<Logic3>> = it.collect();
            Ok(TestSequence::new(init, v1, v2, prop))
        }
    }
}

/// Encodes a [`FaultOutcome`] (with the full [`Detection`] payload).
pub fn encode_outcome(outcome: &FaultOutcome, circuit: &Circuit) -> Json {
    match outcome {
        FaultOutcome::Untestable => {
            Json::Obj(vec![("outcome".into(), Json::Str("untestable".into()))])
        }
        FaultOutcome::Aborted => Json::Obj(vec![("outcome".into(), Json::Str("aborted".into()))]),
        FaultOutcome::Detected(d) => Json::Obj(vec![
            ("outcome".into(), Json::Str("detected".into())),
            ("sequence".into(), encode_sequence(&d.sequence)),
            (
                "observed_po".into(),
                match d.observed_po {
                    Some(po) => node_name(circuit, po),
                    None => Json::Null,
                },
            ),
            (
                "relied_ppos".into(),
                Json::Arr(
                    d.relied_ppos
                        .iter()
                        .map(|&p| node_name(circuit, p))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Decodes a [`FaultOutcome`] encoded by [`encode_outcome`].
pub fn decode_outcome(j: &Json, circuit: &Circuit) -> Result<FaultOutcome, ArtifactError> {
    match str_field(j, "outcome")? {
        "untestable" => Ok(FaultOutcome::Untestable),
        "aborted" => Ok(FaultOutcome::Aborted),
        "detected" => {
            let sequence = decode_sequence(
                j.get("sequence")
                    .ok_or_else(|| schema("detected outcome: missing `sequence`"))?,
            )?;
            let observed_po = match j.get("observed_po") {
                None | Some(Json::Null) => None,
                Some(po) => Some(resolve_node(
                    circuit,
                    po.as_str()
                        .ok_or_else(|| schema("observed_po: expected name"))?,
                )?),
            };
            let relied_ppos = decode_node_list(j.get("relied_ppos"), circuit)?;
            Ok(FaultOutcome::Detected(Box::new(Detection {
                sequence,
                observed_po,
                relied_ppos,
            })))
        }
        other => Err(schema(format!("unknown outcome `{other}`"))),
    }
}

fn decode_node_list(j: Option<&Json>, circuit: &Circuit) -> Result<Vec<NodeId>, ArtifactError> {
    match j {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(arr) => arr
            .as_array()
            .ok_or_else(|| schema("expected an array of signal names"))?
            .iter()
            .map(|n| {
                resolve_node(
                    circuit,
                    n.as_str().ok_or_else(|| schema("expected a signal name"))?,
                )
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Config codec
// ---------------------------------------------------------------------

/// The wire name of a sensitization criterion ([`decode_sensitization`]
/// is the inverse).
fn encode_sensitization(s: Sensitization) -> &'static str {
    match s {
        Sensitization::Robust => "robust",
        Sensitization::NonRobust => "non-robust",
    }
}

fn decode_sensitization(name: &str) -> Result<Sensitization, ArtifactError> {
    name.parse().map_err(schema)
}

/// Encodes a [`RunConfig`] as the flat field list artifacts embed at
/// their top level (`backend`, `model`, `sensitization`, `universe`,
/// `limits`, `seed`); [`decode_config`] is the inverse. Public because
/// the wire formats of `gdf serve` (job records, submissions) reuse the
/// exact same fields.
pub fn encode_config(c: &RunConfig) -> Vec<(String, Json)> {
    vec![
        ("backend".into(), Json::Str(c.backend.to_string())),
        ("model".into(), Json::Str(c.model.name().into())),
        (
            "sensitization".into(),
            Json::Str(encode_sensitization(c.sensitization).into()),
        ),
        (
            "universe".into(),
            Json::Obj(vec![
                ("pi_stems".into(), Json::Bool(c.universe.include_pi_stems)),
                ("ppi_stems".into(), Json::Bool(c.universe.include_ppi_stems)),
                ("branches".into(), Json::Bool(c.universe.include_branches)),
            ]),
        ),
        (
            "limits".into(),
            Json::Obj(vec![
                (
                    "local_backtrack_limit".into(),
                    Json::Num(c.limits.local_backtrack_limit as f64),
                ),
                (
                    "sequential_backtrack_limit".into(),
                    Json::Num(c.limits.sequential_backtrack_limit as f64),
                ),
                (
                    "max_propagation_frames".into(),
                    Json::Num(c.limits.max_propagation_frames as f64),
                ),
                (
                    "max_sync_frames".into(),
                    Json::Num(c.limits.max_sync_frames as f64),
                ),
                (
                    "max_observation_retries".into(),
                    Json::Num(c.limits.max_observation_retries as f64),
                ),
                (
                    "max_stuckat_frames".into(),
                    Json::Num(c.limits.max_stuckat_frames as f64),
                ),
            ]),
        ),
        ("seed".into(), hex_u64(c.seed)),
    ]
}

/// Decodes the [`encode_config`] fields (current layout) from an object
/// that embeds them. For version-1 documents use [`decode_config_v1`].
pub fn decode_config(j: &Json) -> Result<RunConfig, ArtifactError> {
    let backend: Backend = str_field(j, "backend")?.parse().map_err(schema)?;
    let model: ModelKind = str_field(j, "model")?.parse().map_err(schema)?;
    let sensitization = decode_sensitization(str_field(j, "sensitization")?)?;
    decode_config_rest(j, backend, model, sensitization)
}

/// Decodes the **version-1** config layout (PR 3/4 artifacts and job
/// records): `model` held the sensitization name (`robust`/`non-robust`)
/// and the fault model was implied by the backend.
pub fn decode_config_v1(j: &Json) -> Result<RunConfig, ArtifactError> {
    let backend: Backend = str_field(j, "backend")?.parse().map_err(schema)?;
    let sensitization = decode_sensitization(str_field(j, "model")?)?;
    decode_config_rest(j, backend, backend.default_model(), sensitization)
}

fn decode_config_rest(
    j: &Json,
    backend: Backend,
    model: ModelKind,
    sensitization: Sensitization,
) -> Result<RunConfig, ArtifactError> {
    let u = j
        .get("universe")
        .ok_or_else(|| schema("missing `universe`"))?;
    let universe = FaultUniverse {
        include_pi_stems: bool_field(u, "pi_stems")?,
        include_ppi_stems: bool_field(u, "ppi_stems")?,
        include_branches: bool_field(u, "branches")?,
    };
    let l = j.get("limits").ok_or_else(|| schema("missing `limits`"))?;
    let limits = Limits::new()
        .with_local_backtrack_limit(usize_field(l, "local_backtrack_limit")? as u32)
        .with_sequential_backtrack_limit(usize_field(l, "sequential_backtrack_limit")? as u32)
        .with_max_propagation_frames(usize_field(l, "max_propagation_frames")?)
        .with_max_sync_frames(usize_field(l, "max_sync_frames")?)
        .with_max_observation_retries(usize_field(l, "max_observation_retries")?)
        .with_max_stuckat_frames(usize_field(l, "max_stuckat_frames")?);
    let seed = parse_hex_u64(
        j.get("seed").ok_or_else(|| schema("missing `seed`"))?,
        "seed",
    )?;
    Ok(RunConfig {
        backend,
        model,
        sensitization,
        universe,
        limits,
        seed,
    })
}

// ---------------------------------------------------------------------
// RunArtifact
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct RecordEntry {
    fault: Json, // encoded fault (kept as JSON until a circuit is at hand)
    classification: FaultClassification,
    by_simulation: bool,
    sequence_index: Option<usize>,
}

/// A serialized ATPG run: either a **complete** run (with its report) or
/// a **partial** checkpoint an interrupted run can resume from. See the
/// [module docs](self) for the schema and guarantees.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    config: RunConfig,
    /// Circuit provenance (name, optional suite reference, bench text).
    pub circuit: CircuitSource,
    /// `true` for a mid-run checkpoint, `false` for a completed run.
    pub partial: bool,
    records: Vec<Option<RecordEntry>>,
    sequences: Vec<TestSequence>,
    relied: Vec<Vec<String>>,
    dropped: u32,
    rng_state: [u64; 4],
    stopped: Option<AtpgError>,
    report: Option<CircuitReport>,
}

impl RunArtifact {
    /// The run configuration recorded in the artifact.
    pub fn config(&self) -> RunConfig {
        self.config
    }

    /// Number of decided faults.
    pub fn decided(&self) -> usize {
        self.records.iter().filter(|r| r.is_some()).count()
    }

    /// Total faults in the run's universe.
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// Number of emitted sequences.
    pub fn sequences(&self) -> usize {
        self.sequences.len()
    }

    /// The recorded final report, for complete artifacts.
    pub fn report(&self) -> Option<&CircuitReport> {
        self.report.as_ref()
    }

    /// Builds a checkpoint artifact from a mid-run snapshot.
    ///
    /// `source` overrides the circuit provenance (pass it when the
    /// circuit came from a file or the suite, so resume can rebuild the
    /// identical circuit); defaults to [`CircuitSource::of`].
    pub fn from_snapshot(snapshot: &RunSnapshot<'_>, source: Option<CircuitSource>) -> Self {
        let circuit = snapshot.circuit;
        RunArtifact {
            config: *snapshot.config,
            circuit: source.unwrap_or_else(|| CircuitSource::of(circuit)),
            partial: true,
            records: snapshot
                .records
                .iter()
                .map(|r| r.as_ref().map(|rec| encode_record(rec, circuit)))
                .collect(),
            sequences: snapshot.sequences.to_vec(),
            relied: snapshot
                .relied_ppos
                .iter()
                .map(|ppos| {
                    ppos.iter()
                        .map(|&p| circuit.node(p).name().to_string())
                        .collect()
                })
                .collect(),
            dropped: snapshot.dropped,
            rng_state: snapshot.rng_state,
            stopped: None,
            report: None,
        }
    }

    /// Builds a complete artifact from a finished [`AtpgRun`].
    ///
    /// `config` must be the configuration the run was actually launched
    /// with — it is recorded verbatim, and a later
    /// [`crate::engine::AtpgBuilder::resume_from`] or `gdf report` trusts
    /// it. [`crate::engine::RunConfig::new`] gives the defaults when the
    /// run used them.
    pub fn from_run(
        circuit: &Circuit,
        run: &AtpgRun,
        config: RunConfig,
        source: Option<CircuitSource>,
    ) -> Self {
        RunArtifact {
            config,
            circuit: source.unwrap_or_else(|| CircuitSource::of(circuit)),
            partial: false,
            records: run
                .records
                .iter()
                .map(|rec| Some(encode_record(rec, circuit)))
                .collect(),
            sequences: run.sequences.clone(),
            relied: run
                .relied_ppos
                .iter()
                .map(|ppos| {
                    ppos.iter()
                        .map(|&p| circuit.node(p).name().to_string())
                        .collect()
                })
                .collect(),
            dropped: run.report.dropped_by_simulation,
            // A complete run needs no RNG continuation; record the seed
            // state so the field is always a valid generator state.
            rng_state: StdRng::seed_from_u64(config.seed).state(),
            stopped: run.stopped,
            report: Some(run.report.clone()),
        }
    }

    /// An empty checkpoint (nothing decided) for `circuit` under the
    /// default universe and limits: resuming it is simply a full run.
    /// Mostly useful in tests and examples.
    pub fn checkpoint_stub(circuit: &Circuit, backend: Backend, seed: u64) -> Self {
        let config = RunConfig::new(backend).with_seed(seed);
        let total = crate::engine::faults_of(circuit, config.model, &config.universe).len();
        RunArtifact {
            config,
            circuit: CircuitSource::of(circuit),
            partial: true,
            records: vec![None; total],
            sequences: Vec::new(),
            relied: Vec::new(),
            dropped: 0,
            rng_state: StdRng::seed_from_u64(seed).state(),
            stopped: None,
            report: None,
        }
    }

    /// Decodes the artifact into the orchestrator's resume payload,
    /// validating it against `circuit` and the engine's fault list.
    pub fn resume_state(
        &self,
        circuit: &Circuit,
        faults: &[Fault],
    ) -> Result<ResumeState, ArtifactError> {
        if circuit.name() != self.circuit.name {
            return Err(ArtifactError::Mismatch(format!(
                "artifact is for circuit `{}`, engine runs `{}`",
                self.circuit.name,
                circuit.name()
            )));
        }
        if faults.len() != self.records.len() {
            return Err(ArtifactError::Mismatch(format!(
                "artifact has {} faults, engine enumerates {}",
                self.records.len(),
                faults.len()
            )));
        }
        let mut records: Vec<Option<FaultRecord>> = Vec::with_capacity(faults.len());
        for (i, entry) in self.records.iter().enumerate() {
            match entry {
                None => records.push(None),
                Some(e) => {
                    let fault = decode_fault(&e.fault, circuit)?;
                    if fault != faults[i] {
                        return Err(ArtifactError::Mismatch(format!(
                            "fault {} is `{}` in the artifact but `{}` in the engine list",
                            i,
                            fault.describe(circuit),
                            faults[i].describe(circuit)
                        )));
                    }
                    if let Some(s) = e.sequence_index {
                        if s >= self.sequences.len() {
                            return Err(schema(format!(
                                "record {i}: sequence index {s} out of range"
                            )));
                        }
                    }
                    records.push(Some(FaultRecord {
                        fault,
                        classification: e.classification,
                        by_simulation: e.by_simulation,
                        sequence_index: e.sequence_index,
                    }));
                }
            }
        }
        let relied_ppos = self
            .relied
            .iter()
            .map(|names| names.iter().map(|n| resolve_node(circuit, n)).collect())
            .collect::<Result<Vec<Vec<NodeId>>, _>>()?;
        if relied_ppos.len() != self.sequences.len() {
            return Err(schema("relied/sequence length mismatch"));
        }
        Ok(ResumeState {
            records,
            sequences: self.sequences.clone(),
            relied_ppos,
            dropped: self.dropped,
            rng_state: self.rng_state,
        })
    }

    /// Reconstructs the [`AtpgRun`] of a **complete** artifact.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Mismatch`] for partial artifacts (resume those
    /// instead) or when the artifact does not belong to `circuit`.
    pub fn to_run(&self, circuit: &Circuit) -> Result<AtpgRun, ArtifactError> {
        if self.partial {
            return Err(ArtifactError::Mismatch(
                "cannot reconstruct a run from a partial checkpoint; resume it".into(),
            ));
        }
        let report = self
            .report
            .clone()
            .ok_or_else(|| schema("complete artifact without a report"))?;
        let mut records = Vec::with_capacity(self.records.len());
        for (i, entry) in self.records.iter().enumerate() {
            let e = entry
                .as_ref()
                .ok_or_else(|| schema(format!("complete artifact with undecided fault {i}")))?;
            records.push(FaultRecord {
                fault: decode_fault(&e.fault, circuit)?,
                classification: e.classification,
                by_simulation: e.by_simulation,
                sequence_index: e.sequence_index,
            });
        }
        let relied_ppos = self
            .relied
            .iter()
            .map(|names| names.iter().map(|n| resolve_node(circuit, n)).collect())
            .collect::<Result<Vec<Vec<NodeId>>, _>>()?;
        Ok(AtpgRun {
            records,
            sequences: self.sequences.clone(),
            relied_ppos,
            report,
            stopped: self.stopped,
        })
    }

    /// Serializes to pretty-printed JSON.
    pub fn encode(&self) -> String {
        let mut fields = vec![
            ("format".into(), Json::Str("gdf-run".into())),
            ("version".into(), Json::Num(ARTIFACT_VERSION as f64)),
        ];
        fields.extend(encode_config(&self.config));
        fields.push(("circuit".into(), self.circuit.encode()));
        fields.push(("partial".into(), Json::Bool(self.partial)));
        fields.push(("total".into(), Json::Num(self.records.len() as f64)));
        fields.push(("decided".into(), Json::Num(self.decided() as f64)));
        fields.push(("dropped".into(), Json::Num(self.dropped as f64)));
        fields.push((
            "rng_state".into(),
            Json::Arr(self.rng_state.iter().map(|&w| hex_u64(w)).collect()),
        ));
        fields.push((
            "records".into(),
            Json::Arr(
                self.records
                    .iter()
                    .map(|r| match r {
                        None => Json::Null,
                        Some(e) => {
                            let mut f = vec![
                                ("fault".into(), e.fault.clone()),
                                (
                                    "class".into(),
                                    Json::Str(
                                        match e.classification {
                                            FaultClassification::Tested => "tested",
                                            FaultClassification::Untestable => "untestable",
                                            FaultClassification::Aborted => "aborted",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("by_sim".into(), Json::Bool(e.by_simulation)),
                            ];
                            if let Some(s) = e.sequence_index {
                                f.push(("seq".into(), Json::Num(s as f64)));
                            }
                            Json::Obj(f)
                        }
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "sequences".into(),
            Json::Arr(
                self.sequences
                    .iter()
                    .zip(&self.relied)
                    .map(|(seq, relied)| {
                        let mut obj = match encode_sequence(seq) {
                            Json::Obj(f) => f,
                            _ => unreachable!("encode_sequence returns an object"),
                        };
                        obj.push((
                            "relied".into(),
                            Json::Arr(relied.iter().map(|n| Json::Str(n.clone())).collect()),
                        ));
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "stopped".into(),
            match self.stopped {
                None => Json::Null,
                Some(AtpgError::Cancelled) => Json::Str("cancelled".into()),
                Some(AtpgError::TimeBudgetExceeded) => Json::Str("time-budget".into()),
                Some(e) => Json::Str(format!("{e}")),
            },
        ));
        fields.push((
            "report".into(),
            match &self.report {
                None => Json::Null,
                Some(r) => encode_report(r),
            },
        ));
        Json::Obj(fields).pretty()
    }

    /// Serializes like [`RunArtifact::encode`] but with the report's
    /// wall-clock zeroed — the **byte-comparable** form. Two runs of the
    /// same deterministic configuration produce equal `canonical_encode`
    /// strings even though their `elapsed` times differ; the serve layer
    /// uses this as the wire form of fetched artifacts so concurrent
    /// same-seed submissions are byte-identical to each other and to a
    /// local run.
    pub fn canonical_encode(&self) -> String {
        let mut normalized = self.clone();
        if let Some(report) = &mut normalized.report {
            report.row.elapsed = Duration::ZERO;
        }
        normalized.encode()
    }

    /// Content digest of [`RunArtifact::canonical_encode`] — the store
    /// address a published run lands under.
    pub fn canonical_digest(&self) -> crate::digest::Digest {
        crate::digest::Digest::of_text(&self.canonical_encode())
    }

    /// Parses an artifact from JSON text.
    pub fn decode(text: &str) -> Result<Self, ArtifactError> {
        let j = Json::parse(text)?;
        if str_field(&j, "format")? != "gdf-run" {
            return Err(schema("not a gdf-run artifact"));
        }
        let version = usize_field(&j, "version")? as u64;
        if !(ARTIFACT_VERSION_MIN..=ARTIFACT_VERSION).contains(&version) {
            return Err(schema(format!(
                "unsupported artifact version {version} (this build reads \
                 v{ARTIFACT_VERSION_MIN} through v{ARTIFACT_VERSION})"
            )));
        }
        let config = if version == 1 {
            decode_config_v1(&j)?
        } else {
            decode_config(&j)?
        };
        let circuit = CircuitSource::decode(
            j.get("circuit")
                .ok_or_else(|| schema("missing `circuit`"))?,
        )?;
        let partial = bool_field(&j, "partial")?;
        let dropped = usize_field(&j, "dropped")? as u32;
        let rng_arr = j
            .get("rng_state")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `rng_state`"))?;
        if rng_arr.len() != 4 {
            return Err(schema("rng_state must have 4 words"));
        }
        let mut rng_state = [0u64; 4];
        for (i, w) in rng_arr.iter().enumerate() {
            rng_state[i] = parse_hex_u64(w, "rng_state")?;
        }
        if rng_state == [0u64; 4] {
            // Not a reachable xoshiro256** state; a resume would panic
            // inside the generator instead of failing cleanly here.
            return Err(schema("rng_state is all zero (corrupt artifact)"));
        }
        let records = j
            .get("records")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `records`"))?
            .iter()
            .map(|r| -> Result<Option<RecordEntry>, ArtifactError> {
                if r.is_null() {
                    return Ok(None);
                }
                let classification = match str_field(r, "class")? {
                    "tested" => FaultClassification::Tested,
                    "untestable" => FaultClassification::Untestable,
                    "aborted" => FaultClassification::Aborted,
                    other => return Err(schema(format!("unknown classification `{other}`"))),
                };
                Ok(Some(RecordEntry {
                    fault: r
                        .get("fault")
                        .ok_or_else(|| schema("record without `fault`"))?
                        .clone(),
                    classification,
                    by_simulation: bool_field(r, "by_sim")?,
                    sequence_index: r.get("seq").and_then(Json::as_usize),
                }))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut sequences = Vec::new();
        let mut relied = Vec::new();
        for s in j
            .get("sequences")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `sequences`"))?
        {
            sequences.push(decode_sequence(s)?);
            relied.push(match s.get("relied").and_then(Json::as_array) {
                None => Vec::new(),
                Some(names) => names
                    .iter()
                    .map(|n| {
                        n.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| schema("relied: expected signal names"))
                    })
                    .collect::<Result<_, _>>()?,
            });
        }
        let stopped = match j.get("stopped") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) if s == "cancelled" => Some(AtpgError::Cancelled),
            Some(Json::Str(s)) if s == "time-budget" => Some(AtpgError::TimeBudgetExceeded),
            Some(Json::Str(s)) => return Err(schema(format!("unknown stop reason `{s}`"))),
            Some(_) => return Err(schema("stopped must be a string or null")),
        };
        let report = match j.get("report") {
            None | Some(Json::Null) => None,
            // A v1 report has no coverage object; the tally is
            // reconstructed from the decoded records (collapsed
            // denominators stay unknown — v1 never recorded them).
            Some(r) => Some(decode_report(r, &circuit.name, || {
                coverage_from_entries(&records)
            })?),
        };
        Ok(RunArtifact {
            config,
            circuit,
            partial,
            records,
            sequences,
            relied,
            dropped,
            rng_state,
            stopped,
            report,
        })
    }

    /// Writes the artifact atomically (`path.tmp` + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        write_atomic(path.as_ref(), &self.encode())
    }

    /// Reads and decodes an artifact file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let path = path.as_ref();
        let text = crate::io::read_to_string(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&text)
    }
}

fn encode_record(rec: &FaultRecord, circuit: &Circuit) -> RecordEntry {
    RecordEntry {
        fault: encode_fault(rec.fault, circuit),
        classification: rec.classification,
        by_simulation: rec.by_simulation,
        sequence_index: rec.sequence_index,
    }
}

fn encode_report(r: &CircuitReport) -> Json {
    Json::Obj(vec![
        ("circuit".into(), Json::Str(r.row.circuit.clone())),
        ("tested".into(), Json::Num(r.row.tested as f64)),
        ("untestable".into(), Json::Num(r.row.untestable as f64)),
        ("aborted".into(), Json::Num(r.row.aborted as f64)),
        ("patterns".into(), Json::Num(r.row.patterns as f64)),
        (
            "elapsed_ns".into(),
            hex_u64(r.row.elapsed.as_nanos() as u64),
        ),
        (
            "dropped_by_simulation".into(),
            Json::Num(r.dropped_by_simulation as f64),
        ),
        ("sequences".into(), Json::Num(r.sequences as f64)),
        ("coverage".into(), encode_coverage(&r.coverage)),
    ])
}

/// Encodes a [`Coverage`] tally as the nested object reports embed —
/// shared with the `gdf serve` job summaries.
pub fn encode_coverage(c: &Coverage) -> Json {
    let mut fields = vec![
        ("detected".into(), Json::Num(c.detected as f64)),
        (
            "possibly_detected".into(),
            Json::Num(c.possibly_detected as f64),
        ),
        ("untestable".into(), Json::Num(c.untestable as f64)),
        ("aborted".into(), Json::Num(c.aborted as f64)),
        ("total".into(), Json::Num(c.total as f64)),
    ];
    if let Some(classes) = c.collapsed {
        fields.push(("classes".into(), Json::Num(classes.classes as f64)));
        fields.push((
            "classes_detected".into(),
            Json::Num(classes.detected as f64),
        ));
    }
    Json::Obj(fields)
}

/// Decodes the object produced by [`encode_coverage`].
pub fn decode_coverage(j: &Json) -> Result<Coverage, ArtifactError> {
    let count = |name: &str| -> Result<u32, ArtifactError> { Ok(usize_field(j, name)? as u32) };
    let collapsed = match (
        j.get("classes").and_then(Json::as_usize),
        j.get("classes_detected").and_then(Json::as_usize),
    ) {
        (Some(classes), Some(detected)) => Some(ClassCounts {
            classes: classes as u32,
            detected: detected as u32,
        }),
        _ => None,
    };
    Ok(Coverage {
        detected: count("detected")?,
        possibly_detected: count("possibly_detected")?,
        untestable: count("untestable")?,
        aborted: count("aborted")?,
        total: count("total")?,
        collapsed,
    })
}

/// Reconstructs the (uncollapsed) coverage tally from decided record
/// entries — the fallback for version-1 reports, which predate the
/// embedded coverage object.
fn coverage_from_entries(records: &[Option<RecordEntry>]) -> Coverage {
    let mut coverage = Coverage::zero(records.len() as u32);
    for entry in records.iter().flatten() {
        coverage.count(entry.classification, entry.by_simulation);
    }
    coverage
}

fn decode_report(
    j: &Json,
    default_circuit: &str,
    fallback_coverage: impl FnOnce() -> Coverage,
) -> Result<CircuitReport, ArtifactError> {
    let coverage = match j.get("coverage") {
        None | Some(Json::Null) => fallback_coverage(),
        Some(c) => decode_coverage(c)?,
    };
    Ok(CircuitReport {
        row: Table3Row {
            circuit: j
                .get("circuit")
                .and_then(Json::as_str)
                .unwrap_or(default_circuit)
                .to_string(),
            tested: usize_field(j, "tested")? as u32,
            untestable: usize_field(j, "untestable")? as u32,
            aborted: usize_field(j, "aborted")? as u32,
            patterns: usize_field(j, "patterns")? as u32,
            elapsed: Duration::from_nanos(parse_hex_u64(
                j.get("elapsed_ns")
                    .ok_or_else(|| schema("missing `elapsed_ns`"))?,
                "elapsed_ns",
            )?),
        },
        dropped_by_simulation: usize_field(j, "dropped_by_simulation")? as u32,
        sequences: usize_field(j, "sequences")? as u32,
        coverage,
    })
}

pub(crate) fn write_atomic(path: &Path, text: &str) -> Result<(), ArtifactError> {
    crate::io::write_atomic(path, text)
        .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------
// PatternSet
// ---------------------------------------------------------------------

/// One exported pattern: the applied sequence plus the PPO nets (by
/// name) its propagation phase relies on, so re-grading can replay the
/// §5 invalidation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEntry {
    /// The applied test sequence.
    pub sequence: TestSequence,
    /// Relied PPO signal names (empty when nothing is relied on).
    pub relied_ppos: Vec<String>,
}

/// A saved set of test sequences, decoupled from the run that produced
/// them: the exchange format between generation ([`AtpgRun`]), re-grading
/// ([`crate::session::grade_patterns`]) and testers.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSet {
    /// Circuit provenance.
    pub circuit: CircuitSource,
    /// Backend that generated the patterns (informational).
    pub backend: String,
    /// X-fill seed of the generating run (informational).
    pub seed: u64,
    /// The patterns, in emission order.
    pub patterns: Vec<PatternEntry>,
}

impl PatternSet {
    /// Exports every sequence of a run.
    pub fn from_run(
        circuit: &Circuit,
        run: &AtpgRun,
        backend: &str,
        seed: u64,
        source: Option<CircuitSource>,
    ) -> Self {
        let relied = |i: usize| -> Vec<String> {
            run.relied_ppos
                .get(i)
                .map(|ppos| {
                    ppos.iter()
                        .map(|&p| circuit.node(p).name().to_string())
                        .collect()
                })
                .unwrap_or_default()
        };
        PatternSet {
            circuit: source.unwrap_or_else(|| CircuitSource::of(circuit)),
            backend: backend.to_string(),
            seed,
            patterns: run
                .sequences
                .iter()
                .enumerate()
                .map(|(i, seq)| PatternEntry {
                    sequence: seq.clone(),
                    relied_ppos: relied(i),
                })
                .collect(),
        }
    }

    /// Total applied vectors over all patterns (the paper's `#pat`).
    pub fn total_vectors(&self) -> usize {
        self.patterns.iter().map(|p| p.sequence.len()).sum()
    }

    /// Serializes to pretty-printed JSON.
    pub fn encode(&self) -> String {
        Json::Obj(vec![
            ("format".into(), Json::Str("gdf-patterns".into())),
            ("version".into(), Json::Num(ARTIFACT_VERSION as f64)),
            ("circuit".into(), self.circuit.encode()),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("seed".into(), hex_u64(self.seed)),
            (
                "patterns".into(),
                Json::Arr(
                    self.patterns
                        .iter()
                        .map(|p| {
                            let mut obj = match encode_sequence(&p.sequence) {
                                Json::Obj(f) => f,
                                _ => unreachable!("encode_sequence returns an object"),
                            };
                            obj.push((
                                "relied".into(),
                                Json::Arr(
                                    p.relied_ppos.iter().map(|n| Json::Str(n.clone())).collect(),
                                ),
                            ));
                            Json::Obj(obj)
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    /// Parses a pattern set from JSON text.
    pub fn decode(text: &str) -> Result<Self, ArtifactError> {
        let j = Json::parse(text)?;
        if str_field(&j, "format")? != "gdf-patterns" {
            return Err(schema("not a gdf-patterns artifact"));
        }
        let circuit = CircuitSource::decode(
            j.get("circuit")
                .ok_or_else(|| schema("missing `circuit`"))?,
        )?;
        let mut patterns = Vec::new();
        for p in j
            .get("patterns")
            .and_then(Json::as_array)
            .ok_or_else(|| schema("missing `patterns`"))?
        {
            patterns.push(PatternEntry {
                sequence: decode_sequence(p)?,
                relied_ppos: match p.get("relied").and_then(Json::as_array) {
                    None => Vec::new(),
                    Some(names) => names
                        .iter()
                        .map(|n| {
                            n.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| schema("relied: expected signal names"))
                        })
                        .collect::<Result<_, _>>()?,
                },
            });
        }
        Ok(PatternSet {
            circuit,
            backend: str_field(&j, "backend")?.to_string(),
            seed: parse_hex_u64(
                j.get("seed").ok_or_else(|| schema("missing `seed`"))?,
                "seed",
            )?,
            patterns,
        })
    }

    /// Writes the pattern set atomically.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        write_atomic(path.as_ref(), &self.encode())
    }

    /// Reads and decodes a pattern-set file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let path = path.as_ref();
        let text = crate::io::read_to_string(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&text)
    }

    /// Resolves one pattern's relied PPO names against `circuit`.
    pub fn relied_nodes(
        &self,
        circuit: &Circuit,
        index: usize,
    ) -> Result<Vec<NodeId>, ArtifactError> {
        self.patterns[index]
            .relied_ppos
            .iter()
            .map(|n| resolve_node(circuit, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Atpg;
    use gdf_netlist::suite;

    #[test]
    fn fault_round_trip_by_name() {
        let c = suite::s27();
        for fault in crate::engine::faults_of(&c, ModelKind::Delay, &FaultUniverse::default())
            .into_iter()
            .chain(crate::engine::faults_of(
                &c,
                ModelKind::Stuck,
                &FaultUniverse::default(),
            ))
            .chain(crate::engine::faults_of(
                &c,
                ModelKind::Transition,
                &FaultUniverse::default(),
            ))
        {
            let j = encode_fault(fault, &c);
            let back = decode_fault(&j, &c).unwrap();
            assert_eq!(back, fault, "{}", fault.describe(&c));
        }
    }

    #[test]
    fn sequence_round_trip_preserves_roles_and_x() {
        use Logic3::{One, Zero, X};
        let seq = TestSequence::new(
            vec![vec![Zero, X], vec![One, One]],
            vec![X, Zero],
            vec![One, X],
            vec![vec![X, X]],
        );
        let back = decode_sequence(&encode_sequence(&seq)).unwrap();
        assert_eq!(back, seq);
        assert_eq!(back.init_len(), 2);
        assert_eq!(back.propagation_len(), 1);

        let stat = TestSequence::static_sequence(vec![vec![One, Zero], vec![X, One]]);
        let back = decode_sequence(&encode_sequence(&stat)).unwrap();
        assert_eq!(back, stat);
        assert_eq!(back.at_speed(), None);
    }

    #[test]
    fn outcome_round_trip() {
        let c = suite::s27();
        let po = c.outputs()[0];
        let ppo = c.ppos()[0];
        let outcomes = [
            FaultOutcome::Untestable,
            FaultOutcome::Aborted,
            FaultOutcome::Detected(Box::new(Detection {
                sequence: TestSequence::new(
                    vec![],
                    vec![Logic3::Zero; 4],
                    vec![Logic3::One; 4],
                    vec![vec![Logic3::X; 4]],
                ),
                observed_po: Some(po),
                relied_ppos: vec![ppo],
            })),
        ];
        for o in &outcomes {
            let back = decode_outcome(&encode_outcome(o, &c), &c).unwrap();
            assert_eq!(&back, o);
        }
    }

    #[test]
    fn run_artifact_round_trip_is_lossless() {
        let c = suite::s27();
        let run = Atpg::builder(&c).seed(11).build().run();
        let config = RunConfig::new(Backend::NonScan).with_seed(11);
        let artifact = RunArtifact::from_run(&c, &run, config, None);
        let text = artifact.encode();
        let back = RunArtifact::decode(&text).unwrap();
        assert_eq!(back.config(), config);
        assert!(!back.partial);
        let restored = back.to_run(&c).unwrap();
        assert_eq!(restored.records, run.records);
        assert_eq!(restored.sequences, run.sequences);
        assert_eq!(restored.relied_ppos, run.relied_ppos);
        assert_eq!(restored.report.row, run.report.row);
        assert_eq!(
            restored.report.dropped_by_simulation,
            run.report.dropped_by_simulation
        );
        assert_eq!(restored.stopped, run.stopped);
        // Encoding is deterministic.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn pattern_set_round_trip() {
        let c = suite::s27();
        let run = Atpg::builder(&c).seed(5).build().run();
        let set = PatternSet::from_run(&c, &run, "non-scan", 5, None);
        assert_eq!(set.patterns.len(), run.sequences.len());
        let back = PatternSet::decode(&set.encode()).unwrap();
        assert_eq!(back, set);
        // The embedded circuit re-parses.
        let c2 = back.circuit.resolve().unwrap();
        assert_eq!(c2.num_gates(), c.num_gates());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            RunArtifact::decode("{}"),
            Err(ArtifactError::Schema(_))
        ));
        assert!(matches!(
            RunArtifact::decode("not json"),
            Err(ArtifactError::Json(_))
        ));
        assert!(matches!(
            PatternSet::decode(r#"{"format":"gdf-run"}"#),
            Err(ArtifactError::Schema(_))
        ));
    }

    #[test]
    fn resume_state_rejects_foreign_circuit() {
        let c = suite::s27();
        let other = suite::table3_circuit("s208").unwrap();
        let artifact = RunArtifact::checkpoint_stub(&c, Backend::StuckAt, 1);
        let faults = crate::engine::faults_of(&other, ModelKind::Stuck, &FaultUniverse::default());
        assert!(matches!(
            artifact.resume_state(&other, &faults),
            Err(ArtifactError::Mismatch(_))
        ));
    }
}
